#!/usr/bin/env bash
# Reproduce the full study: build, test, and run every figure bench.
# Usage: scripts/reproduce_all.sh [outdir]   (REPRO_FAST=1 for quick runs)
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee "$OUT/test_output.txt"

for b in build/bench/*; do
  name="$(basename "$b")"
  echo "=== $name ==="
  "$b" | tee "$OUT/$name.txt"
done
echo "All outputs in $OUT/"
