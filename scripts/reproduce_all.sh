#!/usr/bin/env bash
# Reproduce the full study: build, test, and run every figure bench.
# Usage: scripts/reproduce_all.sh [outdir]   (REPRO_FAST=1 for quick runs)
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee "$OUT/test_output.txt"

for b in build/bench/*; do
  name="$(basename "$b")"
  echo "=== $name ==="
  case "$name" in
    micro_*|*.json)
      # Micro benches have their own output files; skip stray artifacts.
      [ -x "$b" ] && "$b" | tee "$OUT/$name.txt"
      ;;
    *)
      "$b" --report="$OUT/REPORT_$name.json" | tee "$OUT/$name.txt"
      ;;
  esac
done
python3 scripts/check_report.py "$OUT"/REPORT_*.json
echo "All outputs in $OUT/"
