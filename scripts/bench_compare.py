#!/usr/bin/env python3
"""Compare a freshly generated benchmark JSON against a baseline.

Accepts two input shapes behind one comparison loop:
  - flat BENCH_*.json key/value files from the micro benches, and
  - dclue.run_report.v1 REPORT_*.json files from the figure benches (each
    sweep point's report block is flattened to "p<i>.<field>" keys, so two
    runs of the same sweep compare point by point).

Exit non-zero if any compared metric regresses by more than the tolerance
(default 10%). Direction is inferred from the key name:

  *_per_sec, *_per_sec_after, *speedup, *tpmc     higher is better
  *allocs_per_segment_after, *events_per_segment,
  *allocs_per_op_after                            lower is better

Config keys (workload sizes, event counts) and the *_before baselines baked
into the binary are ignored: they describe the measurement, not the result.

Throughput keys are machine-dependent, so CI gates on the deterministic
metrics by default (--keys); a full comparison is available for same-machine
before/after runs.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.10]
                   [--keys key1 key2 ...]
"""

import argparse
import json
import sys

HIGHER_SUFFIXES = ("_per_sec", "_per_sec_after", "speedup", "tpmc")
LOWER_SUFFIXES = ("allocs_per_segment_after", "events_per_segment",
                  "allocs_per_op_after")


def flatten(doc):
    """Flatten a dclue.run_report.v1 document into comparable flat keys;
    pass flat BENCH_*.json documents through unchanged."""
    if not (isinstance(doc, dict) and doc.get("schema") == "dclue.run_report.v1"):
        return doc
    flat = {}
    for i, point in enumerate(doc.get("points", [])):
        for key, value in point.get("report", {}).items():
            flat[f"p{i}.{key}"] = value
    return flat


def direction(key):
    """Return +1 (higher is better), -1 (lower is better) or None (ignore)."""
    if key.endswith("_before"):
        return None
    for suffix in LOWER_SUFFIXES:
        if key.endswith(suffix):
            return -1
    for suffix in HIGHER_SUFFIXES:
        if key.endswith(suffix):
            return +1
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional regression (default 0.10)")
    ap.add_argument("--keys", nargs="*", default=None,
                    help="restrict the comparison to these keys")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = flatten(json.load(f))
    with open(args.current) as f:
        cur = flatten(json.load(f))

    compared = 0
    failures = []
    for key, base_val in sorted(base.items()):
        if not isinstance(base_val, (int, float)) or isinstance(base_val, bool):
            continue
        sign = direction(key)
        if sign is None:
            continue
        if args.keys is not None and key not in args.keys:
            continue
        if key not in cur:
            failures.append(f"{key}: present in baseline, missing from current")
            continue
        cur_val = cur[key]
        compared += 1
        if sign > 0:
            floor = base_val * (1.0 - args.tolerance)
            ok = cur_val >= floor
            bound = f">= {floor:.4g}"
        else:
            ceiling = base_val * (1.0 + args.tolerance)
            ok = cur_val <= ceiling
            bound = f"<= {ceiling:.4g}"
        status = "ok  " if ok else "FAIL"
        print(f"  {status} {key}: baseline {base_val:.4g}, "
              f"current {cur_val:.4g} (required {bound})")
        if not ok:
            failures.append(f"{key}: {base_val:.4g} -> {cur_val:.4g}")

    if args.keys is not None:
        missing = [k for k in args.keys if k not in base]
        for k in missing:
            failures.append(f"{k}: requested key absent from baseline")

    if compared == 0 and not failures:
        print("error: no comparable metric keys found", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"all {compared} compared metric(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
