#!/usr/bin/env python3
"""Validate a RunReport JSON file against the dclue.run_report.v1 schema.

Every figure bench emits one of these (--report, on by default); CI runs this
checker against a short sweep so a schema drift — a renamed field, a missing
registry section, a NaN that json.load would still accept — fails the build
instead of silently breaking downstream tooling.

Checks:
  - top level: schema tag, bench/title/sweep_axis strings, non-empty points
  - per point: numeric axis_value, config object, report object with the
    canonical scalar fields, registry array
  - per registry metric: name, known kind, finite numeric value; distribution
    kinds (tally, histogram) carry the stats block; histograms carry quantiles
  - all finite: no NaN/Inf anywhere in report or registry values

Usage:
  check_report.py REPORT.json [more.json ...] [--min-points N]
  check_report.py REPORT.json --expect-metric node0.txn.committed
"""

import argparse
import json
import math
import sys

# Scalar fields every point's report block must carry (core/report.hpp's
# for_each_field order; a rename there must be reflected here and in readers).
REPORT_FIELDS = [
    "nodes", "affinity", "measure_seconds", "tpmc", "txn_rate", "txns",
    "ipc_control_per_txn", "ipc_data_per_txn", "control_msg_delay_ms",
    "lock_waits_per_txn", "lock_wait_time_ms", "lock_failures_per_txn",
    "buffer_hit_ratio", "disk_reads_per_txn", "remote_fetch_per_txn",
    "avg_active_threads", "avg_context_switch_cycles", "avg_cpi",
    "cpu_utilization", "inter_lata_mbps", "fabric_drops", "abort_rate",
    "txn_ms", "txn_phase1_ms", "txn_lock_ms", "txn_log_ms", "txn_apply_ms",
    "ftp_carried_mbps", "business_txns", "admission_drops",
    "client_conn_failures",
]

METRIC_KINDS = {
    "counter", "gauge", "accum", "tally", "time_weighted", "histogram",
}

DISTRIBUTION_KINDS = {"tally", "histogram"}
STATS_FIELDS = ["count", "sum", "mean", "min", "max", "stddev"]
QUANTILE_FIELDS = ["p50", "p95", "p99"]


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_number(value, where):
    require(isinstance(value, (int, float)) and not isinstance(value, bool),
            f"{where}: expected a number, got {type(value).__name__}")
    require(math.isfinite(value), f"{where}: non-finite value {value!r}")


def check_metric(metric, where):
    require(isinstance(metric, dict), f"{where}: metric is not an object")
    require(isinstance(metric.get("name"), str) and metric["name"],
            f"{where}: missing metric name")
    name = metric["name"]
    kind = metric.get("kind")
    require(kind in METRIC_KINDS,
            f"{where}/{name}: unknown metric kind {kind!r}")
    check_number(metric.get("value"), f"{where}/{name}/value")
    if kind in DISTRIBUTION_KINDS:
        for field in STATS_FIELDS:
            require(field in metric, f"{where}/{name}: missing stats field "
                    f"{field!r} for kind {kind!r}")
            check_number(metric[field], f"{where}/{name}/{field}")
    if kind == "histogram":
        for field in QUANTILE_FIELDS:
            require(field in metric,
                    f"{where}/{name}: histogram missing {field!r}")
            check_number(metric[field], f"{where}/{name}/{field}")


def check_point(point, idx):
    where = f"points[{idx}]"
    require(isinstance(point, dict), f"{where}: not an object")
    check_number(point.get("axis_value"), f"{where}/axis_value")
    require(isinstance(point.get("config"), dict), f"{where}: missing config")
    report = point.get("report")
    require(isinstance(report, dict), f"{where}: missing report")
    for field in REPORT_FIELDS:
        require(field in report, f"{where}/report: missing field {field!r}")
        check_number(report[field], f"{where}/report/{field}")
    registry = point.get("registry")
    require(isinstance(registry, list), f"{where}: missing registry array")
    names = set()
    for m, metric in enumerate(registry):
        check_metric(metric, f"{where}/registry[{m}]")
        name = metric["name"]
        require(name not in names, f"{where}/registry: duplicate metric "
                f"name {name!r}")
        names.add(name)
    return names


def check_file(path, min_points, expect_metrics):
    with open(path) as f:
        doc = json.load(f)
    require(isinstance(doc, dict), "top level is not an object")
    require(doc.get("schema") == "dclue.run_report.v1",
            f"bad schema tag {doc.get('schema')!r}")
    for key in ("bench", "title", "sweep_axis"):
        require(isinstance(doc.get(key), str) and doc[key],
                f"missing or empty {key!r}")
    points = doc.get("points")
    require(isinstance(points, list), "missing points array")
    require(len(points) >= min_points,
            f"expected >= {min_points} points, found {len(points)}")
    for idx, point in enumerate(points):
        names = check_point(point, idx)
        for wanted in expect_metrics:
            require(wanted in names,
                    f"points[{idx}]/registry: expected metric {wanted!r} absent")
    return len(points)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("reports", nargs="+", help="RunReport JSON file(s)")
    ap.add_argument("--min-points", type=int, default=1,
                    help="minimum sweep points per file (default 1)")
    ap.add_argument("--expect-metric", action="append", default=[],
                    metavar="NAME",
                    help="registry metric that must exist in every point "
                         "(repeatable)")
    args = ap.parse_args()

    failed = False
    for path in args.reports:
        try:
            n = check_file(path, args.min_points, args.expect_metric)
        except (SchemaError, json.JSONDecodeError, OSError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            failed = True
        else:
            print(f"ok   {path}: {n} point(s), schema dclue.run_report.v1")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
