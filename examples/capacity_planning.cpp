/// Capacity planning: "how many nodes do I need for a target tpm-C, given
/// how well my workload partitions?" — the question the paper's scaling
/// study answers. This example sweeps cluster sizes for a user-supplied
/// affinity and target, reporting the marginal value of each added node and
/// where scaling stops paying.
///
///   ./capacity_planning [affinity] [target_ktpmc]
///   e.g. ./capacity_planning 0.8 250

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dclue;
  const double affinity = argc > 1 ? std::atof(argv[1]) : 0.8;
  const double target_ktpmc = argc > 2 ? std::atof(argv[2]) : 200.0;

  std::printf("Capacity plan: affinity %.2f, target %.0fK tpm-C\n\n", affinity,
              target_ktpmc);
  std::printf("%6s %12s %14s %16s %12s\n", "nodes", "tpm-C (K)", "added (K)",
              "efficiency", "ctrl-IPC/txn");

  double prev = 0.0;
  double per_node_base = 0.0;
  int chosen = -1;
  for (int nodes : {1, 2, 4, 6, 8, 12, 16}) {
    core::ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.affinity = affinity;
    cfg.seed = 11;
    core::RunReport r = core::run_experiment(cfg);
    const double k = r.tpmc / 1000.0;
    if (nodes == 1) per_node_base = k;
    const double efficiency = k / (per_node_base * nodes);
    std::printf("%6d %12.1f %14.1f %15.0f%% %12.1f\n", nodes, k, k - prev,
                efficiency * 100.0, r.ipc_control_per_txn);
    if (chosen < 0 && k >= target_ktpmc) chosen = nodes;
    prev = k;
  }
  if (chosen > 0) {
    std::printf("\n=> target of %.0fK tpm-C is first reached at %d nodes.\n",
                target_ktpmc, chosen);
  } else {
    std::printf("\n=> target of %.0fK tpm-C is NOT reachable by 16 nodes at "
                "affinity %.2f; improve partitioning (higher affinity) "
                "instead of adding nodes.\n",
                target_ktpmc, affinity);
  }
  return 0;
}
