/// dclue_cli: run one cluster configuration from the command line and print
/// the full report — the general-purpose front end for ad-hoc sensitivity
/// studies that do not warrant a bench binary.
///
///   ./dclue_cli [--nodes N] [--affinity A] [--terminals T] [--sw-tcp]
///               [--sw-iscsi] [--central-log] [--low-comp] [--ftp MBPS]
///               [--ftp-priority] [--latency MS] [--router-pps P]
///               [--wfq] [--wred] [--police MBPS] [--seed S]
///               [--warmup S] [--measure S] [--open-loop RATE]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/experiment.hpp"

namespace {

void usage() {
  std::puts(
      "dclue_cli — clustered DBMS / unified Ethernet fabric simulator\n"
      "  --nodes N        server nodes (default 4)\n"
      "  --affinity A     query affinity 0..1 (default 0.8)\n"
      "  --terminals T    closed-loop terminals per node (default 36)\n"
      "  --open-loop R    open-loop business txns/s per node (default off)\n"
      "  --sw-tcp         kernel TCP instead of offloaded\n"
      "  --sw-iscsi       software iSCSI (CRC in software)\n"
      "  --central-log    all logging on node 0 (Fig 9)\n"
      "  --low-comp       computational path lengths / 4 (Fig 13/15)\n"
      "  --ftp MBPS       FTP cross traffic offered load, unscaled Mb/s\n"
      "  --ftp-priority   promote FTP to AF21 strict priority\n"
      "  --latency MS     extra one-way inter-LATA latency, unscaled ms\n"
      "  --router-pps P   router forwarding rate at scale 100 (default 10000)\n"
      "  --wfq            weighted-fair queueing 4:1 instead of priority\n"
      "  --wred           WRED early dropping at all queues\n"
      "  --police MBPS    leaky-bucket police the AF class\n"
      "  --seed S / --warmup S / --measure S (scaled seconds)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dclue;
  core::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.affinity = 0.8;

  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    auto value = [&]() -> double {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg("--nodes")) {
      cfg.nodes = static_cast<int>(value());
    } else if (arg("--affinity")) {
      cfg.affinity = value();
    } else if (arg("--terminals")) {
      cfg.terminals_per_node = static_cast<int>(value());
    } else if (arg("--open-loop")) {
      cfg.open_loop_bt_rate_per_node = value();
    } else if (arg("--sw-tcp")) {
      cfg.hw_tcp = false;
    } else if (arg("--sw-iscsi")) {
      cfg.hw_iscsi = false;
    } else if (arg("--central-log")) {
      cfg.central_logging = true;
    } else if (arg("--low-comp")) {
      cfg.computation_factor = 0.25;
    } else if (arg("--ftp")) {
      cfg.ftp.offered_load_mbps = value();
    } else if (arg("--ftp-priority")) {
      cfg.ftp.high_priority = true;
    } else if (arg("--latency")) {
      cfg.extra_inter_lata_latency = value() * 1e-3;
    } else if (arg("--router-pps")) {
      cfg.router_pps_at_scale100 = value();
    } else if (arg("--wfq")) {
      cfg.qos.scheduler = net::QueueScheduler::kWfq;
    } else if (arg("--wred")) {
      cfg.qos.wred = true;
      cfg.ecn_marking = true;
    } else if (arg("--police")) {
      cfg.qos.af_police_mbps = value();
    } else if (arg("--seed")) {
      cfg.seed = static_cast<std::uint64_t>(value());
    } else if (arg("--warmup")) {
      cfg.warmup = value();
    } else if (arg("--measure")) {
      cfg.measure = value();
    } else {
      usage();
      return arg("--help") || arg("-h") ? 0 : 2;
    }
  }

  std::fprintf(stderr,
               "running: %d nodes (%d LATA%s), affinity %.2f, %lld warehouses\n",
               cfg.nodes, cfg.latas(), cfg.latas() > 1 ? "s" : "", cfg.affinity,
               static_cast<long long>(cfg.warehouses()));
  core::RunReport r = core::run_experiment(cfg);

  std::printf("tpmc              %12.0f\n", r.tpmc);
  std::printf("txn_rate_scaled   %12.2f\n", r.txn_rate);
  std::printf("abort_rate        %12.4f\n", r.abort_rate);
  std::printf("ipc_ctrl_per_txn  %12.2f\n", r.ipc_control_per_txn);
  std::printf("ipc_data_per_txn  %12.2f\n", r.ipc_data_per_txn);
  std::printf("ctrl_delay_ms     %12.3f\n", r.control_msg_delay_ms);
  std::printf("lock_waits_txn    %12.4f\n", r.lock_waits_per_txn);
  std::printf("lock_fail_txn     %12.4f\n", r.lock_failures_per_txn);
  std::printf("lock_wait_ms      %12.3f\n", r.lock_wait_time_ms);
  std::printf("buffer_hit        %12.4f\n", r.buffer_hit_ratio);
  std::printf("disk_reads_txn    %12.3f\n", r.disk_reads_per_txn);
  std::printf("remote_fetch_txn  %12.3f\n", r.remote_fetch_per_txn);
  std::printf("threads           %12.2f\n", r.avg_active_threads);
  std::printf("csw_cycles        %12.0f\n", r.avg_context_switch_cycles);
  std::printf("cpi               %12.3f\n", r.avg_cpi);
  std::printf("cpu_util          %12.3f\n", r.cpu_utilization);
  std::printf("interlata_mbps    %12.1f\n", r.inter_lata_mbps);
  std::printf("ftp_carried_mbps  %12.1f\n", r.ftp_carried_mbps);
  std::printf("fabric_drops      %12llu\n",
              static_cast<unsigned long long>(r.fabric_drops));
  return 0;
}
