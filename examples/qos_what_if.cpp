/// QoS what-if: should the storage/IPC fabric be shared with other
/// applications, and what happens when those applications get priority?
/// This example runs the paper's §3.4 scenario interactively: a 2-LATA
/// cluster with FTP-like cross traffic at a chosen load, under both QoS
/// arrangements, and explains the observed mechanism.
///
///   ./qos_what_if [ftp_mbps]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dclue;
  const double mbps = argc > 1 ? std::atof(argv[1]) : 100.0;

  core::ClusterConfig base;
  base.nodes = 8;
  base.max_servers_per_lata = 4;  // 2 LATAs x 4 nodes (the paper's setup)
  base.affinity = 0.8;
  base.seed = 23;

  std::printf("Baseline (no cross traffic)...\n");
  core::RunReport clean = core::run_experiment(base);

  base.ftp.offered_load_mbps = mbps;
  base.ftp.high_priority = false;
  std::printf("With %.0f Mb/s FTP as best-effort...\n", mbps);
  core::RunReport be = core::run_experiment(base);

  base.ftp.high_priority = true;
  std::printf("With %.0f Mb/s FTP promoted to AF21 priority...\n\n", mbps);
  core::RunReport af = core::run_experiment(base);

  auto drop = [&](const core::RunReport& r) {
    return (1.0 - r.tpmc / clean.tpmc) * 100.0;
  };
  std::printf("%-28s %12s %12s %12s\n", "", "no FTP", "best-effort", "FTP@AF21");
  std::printf("%-28s %12.0f %12.0f %12.0f\n", "tpm-C", clean.tpmc, be.tpmc, af.tpmc);
  std::printf("%-28s %12s %11.1f%% %11.1f%%\n", "throughput drop", "-", drop(be),
              drop(af));
  std::printf("%-28s %12.2f %12.2f %12.2f\n", "ctrl msg delay (ms)",
              clean.control_msg_delay_ms, be.control_msg_delay_ms,
              af.control_msg_delay_ms);
  std::printf("%-28s %12.2f %12.2f %12.2f\n", "lock wait (ms)",
              clean.lock_wait_time_ms, be.lock_wait_time_ms, af.lock_wait_time_ms);
  std::printf("%-28s %12.1f %12.1f %12.1f\n", "active threads/node",
              clean.avg_active_threads, be.avg_active_threads,
              af.avg_active_threads);
  std::printf("%-28s %12.0f %12.0f %12.0f\n", "context switch (cycles)",
              clean.avg_context_switch_cycles, be.avg_context_switch_cycles,
              af.avg_context_switch_cycles);
  std::printf("%-28s %12.2f %12.2f %12.2f\n", "effective CPI", clean.avg_cpi,
              be.avg_cpi, af.avg_cpi);
  std::printf("%-28s %12llu %12llu %12llu\n", "fabric drops",
              (unsigned long long)clean.fabric_drops,
              (unsigned long long)be.fabric_drops,
              (unsigned long long)af.fabric_drops);

  std::printf(
      "\nMechanism (paper §3.4): priority cross traffic delays critical IPC\n"
      "control messages (lock acquire/release); the DBMS compensates with\n"
      "more concurrent threads, which thrash the processor cache, inflate\n"
      "context-switch costs and CPI, and throughput falls much further than\n"
      "under best-effort sharing, where both traffics back off together.\n");
  return 0;
}
