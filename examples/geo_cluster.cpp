/// Geographically separated sub-clusters: the paper's §3.3 conclusion is
/// that TPC-C-like workloads tolerate MAN-scale latency between LATAs ("if
/// we have two subclusters with one of them located 50 miles away, the
/// additional 1 ms RTT increase will lower the performance by only a few
/// percent"). This example sweeps the separation distance and shows the
/// sensitivity, including for a computation-light workload where it bites
/// harder.
///
///   ./geo_cluster [affinity]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dclue;
  const double affinity = argc > 1 ? std::atof(argv[1]) : 0.8;

  // ~100 miles of fiber is roughly 1 ms one-way.
  const double miles_per_ms = 100.0;
  std::printf("2 LATAs x 4 nodes, affinity %.2f; separating the LATAs...\n\n",
              affinity);
  std::printf("%10s %12s | %14s %8s | %14s %8s\n", "distance", "latency",
              "tpm-C (normal)", "drop", "tpm-C (light)", "drop");

  double base_normal = 0.0, base_light = 0.0;
  for (double ms : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    double tpmc[2];
    int i = 0;
    for (double comp : {1.0, 0.25}) {
      core::ClusterConfig cfg;
      cfg.nodes = 8;
      cfg.max_servers_per_lata = 4;
      cfg.affinity = affinity;
      cfg.computation_factor = comp;
      cfg.extra_inter_lata_latency = ms * 1e-3;
      cfg.seed = 31;
      tpmc[i++] = core::run_experiment(cfg).tpmc;
    }
    if (ms == 0.0) {
      base_normal = tpmc[0];
      base_light = tpmc[1];
    }
    std::printf("%7.0f mi %9.1f ms | %14.0f %7.1f%% | %14.0f %7.1f%%\n",
                ms * miles_per_ms, ms, tpmc[0],
                (1.0 - tpmc[0] / base_normal) * 100.0, tpmc[1],
                (1.0 - tpmc[1] / base_light) * 100.0);
  }
  std::printf(
      "\nTransactional latency hiding: extra threads absorb fabric latency\n"
      "until thread/cache pressure catches up — computation-heavy workloads\n"
      "barely notice MAN distances; light ones pay several times more.\n");
  return 0;
}
