/// Quickstart: simulate a 4-node clustered DBMS over a unified Ethernet
/// fabric and print the headline metrics. This is the smallest useful
/// program against the public API:
///
///   1. Fill in a core::ClusterConfig (everything has sensible defaults
///      matching the paper's baseline platform).
///   2. Run it with core::run_experiment (or build a core::Cluster yourself
///      if you want to poke at nodes mid-run).
///   3. Read the core::RunReport.

#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace dclue;

  core::ClusterConfig cfg;
  cfg.nodes = 4;       // four dual-processor P4 server nodes
  cfg.affinity = 0.8;  // 80% of queries routed to their warehouse's node
  cfg.seed = 2026;

  std::printf("Simulating a %d-node clustered TPC-C DBMS (affinity %.1f, "
              "%lld warehouses)...\n",
              cfg.nodes, cfg.affinity, static_cast<long long>(cfg.warehouses()));
  core::RunReport r = core::run_experiment(cfg);

  std::printf("\n-- throughput --------------------------------------\n");
  std::printf("tpm-C (unscaled equivalent):     %10.0f\n", r.tpmc);
  std::printf("transactions measured:           %10.0f\n", r.txns);
  std::printf("abort rate:                      %10.3f\n", r.abort_rate);
  std::printf("-- fabric ------------------------------------------\n");
  std::printf("IPC control msgs / txn:          %10.2f\n", r.ipc_control_per_txn);
  std::printf("IPC data msgs / txn:             %10.2f\n", r.ipc_data_per_txn);
  std::printf("control msg delay (ms):          %10.3f\n", r.control_msg_delay_ms);
  std::printf("inter-LATA traffic (Mb/s):       %10.1f\n", r.inter_lata_mbps);
  std::printf("-- storage & memory --------------------------------\n");
  std::printf("buffer hit ratio:                %10.3f\n", r.buffer_hit_ratio);
  std::printf("disk reads / txn:                %10.2f\n", r.disk_reads_per_txn);
  std::printf("remote cache fetches / txn:      %10.2f\n", r.remote_fetch_per_txn);
  std::printf("-- concurrency -------------------------------------\n");
  std::printf("lock waits / txn:                %10.3f\n", r.lock_waits_per_txn);
  std::printf("lock wait time (ms):             %10.3f\n", r.lock_wait_time_ms);
  std::printf("avg active threads / node:       %10.1f\n", r.avg_active_threads);
  std::printf("avg context switch (cycles):     %10.0f\n", r.avg_context_switch_cycles);
  std::printf("effective CPI:                   %10.2f\n", r.avg_cpi);
  std::printf("CPU utilization:                 %10.3f\n", r.cpu_utilization);
  std::printf("-- latency budget (avg txn, ms) --------------------\n");
  std::printf("total:                           %10.2f\n", r.txn_ms);
  std::printf("  phase 1 (reads+fetches):       %10.2f\n", r.txn_phase1_ms);
  std::printf("  phase 2 (global locks):        %10.2f\n", r.txn_lock_ms);
  std::printf("  WAL flush:                     %10.2f\n", r.txn_log_ms);
  std::printf("  apply+commit:                  %10.2f\n", r.txn_apply_ms);
  return 0;
}
