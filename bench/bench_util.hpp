#pragma once

/// Shared helpers for the figure-reproduction benches.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"

namespace dclue::bench {

inline bool fast_mode() {
  const char* v = std::getenv("REPRO_FAST");
  return v && v[0] == '1';
}

/// Node counts used for cluster-size sweeps (the paper plots 1..24).
inline std::vector<int> node_sweep() {
  if (fast_mode()) return {1, 2, 4, 8};
  return {1, 2, 3, 4, 6, 8, 10, 12, 16, 24};
}

inline core::ClusterConfig base_config() {
  core::ClusterConfig cfg = core::default_config();
  cfg.seed = 7;
  return cfg;
}

inline void banner(const char* fig, const char* what) {
  std::printf("=====================================================\n");
  std::printf("%s: %s\n", fig, what);
  std::printf("(paper: Kant & Sahoo, \"Clustered DBMS Scalability under\n");
  std::printf(" Unified Ethernet Fabric\"; shapes, not absolutes)\n");
  std::printf("=====================================================\n");
  std::fflush(stdout);
}

}  // namespace dclue::bench
