#pragma once

/// Shared helpers for the figure-reproduction benches.
///
/// Every figure bench builds a bench::Scenario: it owns the banner, the
/// sweep-point list, the run (parallel via REPRO_JOBS, or serial with a
/// per-point tracer when --trace is given), and the RunReport JSON emission
/// that scripts/check_report.py and scripts/bench_compare.py consume.
///
/// Command line (every fig/ablation/ext bench):
///   --report[=PATH]   RunReport JSON path (default REPORT_<id>.json)
///   --no-report       skip the RunReport file
///   --trace[=PATH]    enable event tracing; Chrome trace JSON to PATH
///                     (default TRACE_<id>.json). Points run serially so
///                     each gets its own pid in the merged trace.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/obs/trace.hpp"
#include "sim/sweep.hpp"

namespace dclue::bench {

inline bool fast_mode() {
  const char* v = std::getenv("REPRO_FAST");
  return v && v[0] == '1';
}

/// Node counts used for cluster-size sweeps (the paper plots 1..24).
inline std::vector<int> node_sweep() {
  if (fast_mode()) return {1, 2, 4, 8};
  return {1, 2, 3, 4, 6, 8, 10, 12, 16, 24};
}

inline core::ClusterConfig base_config() {
  core::ClusterConfig cfg = core::default_config();
  cfg.seed = 7;
  return cfg;
}

inline void banner(const char* fig, const char* what) {
  std::printf("=====================================================\n");
  std::printf("%s: %s\n", fig, what);
  std::printf("(paper: Kant & Sahoo, \"Clustered DBMS Scalability under\n");
  std::printf(" Unified Ethernet Fabric\"; shapes, not absolutes)\n");
  std::printf("=====================================================\n");
  std::fflush(stdout);
}

/// Internal deferred sweep for capacity-probe pre-passes (the open-loop
/// benches measure closed-loop capacity first, then sweep at a fraction of
/// it). Probe points do not belong in the figure's RunReport and are never
/// traced — use Scenario for the reported sweep.
class Sweep {
 public:
  std::size_t add(const core::ClusterConfig& cfg) {
    cfgs_.push_back(cfg);
    return cfgs_.size() - 1;
  }
  void run() { reports_ = core::run_experiments(cfgs_); }
  void run_avg(int replications) {
    reports_ = core::run_experiments_avg(cfgs_, replications);
  }
  const core::RunReport& operator[](std::size_t i) const {
    return reports_.at(i);
  }
  [[nodiscard]] std::size_t size() const { return cfgs_.size(); }

 private:
  std::vector<core::ClusterConfig> cfgs_;
  std::vector<core::RunReport> reports_;
};

/// One figure bench: banner + deferred sweep + observability wiring.
///
/// Benches enqueue every (axis value, configuration) point up front, run
/// them all at once, then read the reports back by the index add() returned.
/// Each point is an independent deterministic simulation, so the tables
/// printed are identical whatever the worker count. After run()/run_avg()
/// the Scenario writes the RunReport JSON (unless --no-report) and, when
/// tracing, the merged Chrome trace.
class Scenario {
 public:
  /// \p id names the output files (REPORT_<id>.json); \p fig / \p what feed
  /// the banner; \p sweep_axis labels the report's axis column.
  Scenario(std::string id, const char* fig, const char* what,
           std::string sweep_axis, int argc = 0, char** argv = nullptr)
      : id_(std::move(id)),
        title_(std::string(fig) + ": " + what),
        sweep_axis_(std::move(sweep_axis)),
        report_path_("REPORT_" + id_ + ".json") {
    banner(fig, what);
    for (int i = 1; i < argc; ++i) parse_arg(argv[i]);
  }

  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }

  /// Queue a point; returns its index into the report vector.
  std::size_t add(double axis_value, const core::ClusterConfig& cfg) {
    axis_values_.push_back(axis_value);
    cfgs_.push_back(cfg);
    return cfgs_.size() - 1;
  }

  /// Run all queued points (honors REPRO_JOBS; serial when tracing) and
  /// emit the report/trace files.
  void run() {
    run_with([](const core::ClusterConfig& cfg, std::size_t) {
      return core::run_experiment(cfg);
    });
  }

  /// Like run(), but each point averages \p replications seeds exactly as
  /// run_experiment_avg does (which reseeds even when replications == 1).
  void run_avg(int replications) {
    run_with([replications](const core::ClusterConfig& cfg, std::size_t) {
      return core::run_experiment_avg(cfg, replications);
    });
  }

  /// Run every queued point through a custom runner — for benches that drive
  /// a Cluster by hand (e.g. crash/recovery). \p run_one takes
  /// (const core::ClusterConfig&, std::size_t point_index) and returns the
  /// point's RunReport; side outputs can be stored by index. Points run
  /// through the sweep pool normally, serially (with a per-point tracer
  /// installed) under --trace.
  template <typename RunFn>
  void run_with(RunFn&& run_one) {
    if (tracing()) {
      obs::Tracer merged;
      std::size_t total_events = 0;
      reports_.reserve(cfgs_.size());
      for (std::size_t i = 0; i < cfgs_.size(); ++i) {
        obs::Tracer point_tracer(static_cast<std::uint32_t>(i));
        obs::TracerScope scope(&point_tracer);
        reports_.push_back(run_one(cfgs_[i], i));
        total_events += point_tracer.size();
        merged.append(point_tracer);
      }
      if (!merged.write_json(trace_path_)) {
        std::fprintf(stderr, "%s: failed to write %s\n", id_.c_str(),
                     trace_path_.c_str());
        std::exit(1);
      }
      std::printf("wrote %s (%zu events)\n", trace_path_.c_str(),
                  total_events);
    } else {
      reports_ = sim::sweep_map<core::RunReport>(
          cfgs_.size(), sim::sweep_jobs(),
          [&](std::size_t i) { return run_one(cfgs_[i], i); });
    }
    emit();
  }

  const core::RunReport& operator[](std::size_t i) const {
    return reports_.at(i);
  }
  [[nodiscard]] std::size_t size() const { return cfgs_.size(); }

 private:
  void parse_arg(const char* arg) {
    if (std::strcmp(arg, "--no-report") == 0) {
      report_path_.clear();
    } else if (std::strcmp(arg, "--report") == 0) {
      report_path_ = "REPORT_" + id_ + ".json";
    } else if (std::strncmp(arg, "--report=", 9) == 0) {
      report_path_ = arg + 9;
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace_path_ = "TRACE_" + id_ + ".json";
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path_ = arg + 8;
    } else {
      std::fprintf(stderr,
                   "%s: unknown option '%s' "
                   "(expected --report[=PATH] | --no-report | --trace[=PATH])\n",
                   id_.c_str(), arg);
      std::exit(2);
    }
  }

  void emit() {
    if (report_path_.empty()) return;
    std::vector<core::ReportPoint> points;
    points.reserve(reports_.size());
    for (std::size_t i = 0; i < reports_.size(); ++i) {
      points.push_back(core::ReportPoint{axis_values_[i], cfgs_[i], reports_[i]});
    }
    if (!core::write_run_report(report_path_, id_, title_, sweep_axis_,
                                points)) {
      std::fprintf(stderr, "%s: failed to write %s\n", id_.c_str(),
                   report_path_.c_str());
      std::exit(1);
    }
    std::printf("wrote %s (%zu points)\n", report_path_.c_str(), points.size());
    std::fflush(stdout);
  }

  std::string id_;
  std::string title_;
  std::string sweep_axis_;
  std::string report_path_;  ///< empty = --no-report
  std::string trace_path_;   ///< empty = tracing off
  std::vector<double> axis_values_;
  std::vector<core::ClusterConfig> cfgs_;
  std::vector<core::RunReport> reports_;
};

}  // namespace dclue::bench
