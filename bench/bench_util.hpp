#pragma once

/// Shared helpers for the figure-reproduction benches.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"

namespace dclue::bench {

inline bool fast_mode() {
  const char* v = std::getenv("REPRO_FAST");
  return v && v[0] == '1';
}

/// Node counts used for cluster-size sweeps (the paper plots 1..24).
inline std::vector<int> node_sweep() {
  if (fast_mode()) return {1, 2, 4, 8};
  return {1, 2, 3, 4, 6, 8, 10, 12, 16, 24};
}

inline core::ClusterConfig base_config() {
  core::ClusterConfig cfg = core::default_config();
  cfg.seed = 7;
  return cfg;
}

/// Deferred sweep: benches enqueue every configuration point up front, run
/// them all at once (concurrently when REPRO_JOBS > 1), then read the
/// reports back by the index add() returned. Because each point is an
/// independent deterministic simulation, the tables printed are identical
/// whatever the worker count.
class Sweep {
 public:
  /// Queue a point; returns its index into the report vector.
  std::size_t add(const core::ClusterConfig& cfg) {
    cfgs_.push_back(cfg);
    return cfgs_.size() - 1;
  }

  /// Run all queued points (honors REPRO_JOBS).
  void run() { reports_ = core::run_experiments(cfgs_); }

  /// Like run(), but each point averages \p replications seeds exactly as
  /// run_experiment_avg does (which reseeds even when replications == 1).
  void run_avg(int replications) {
    reports_ = core::run_experiments_avg(cfgs_, replications);
  }

  const core::RunReport& operator[](std::size_t i) const { return reports_.at(i); }
  [[nodiscard]] std::size_t size() const { return cfgs_.size(); }

 private:
  std::vector<core::ClusterConfig> cfgs_;
  std::vector<core::RunReport> reports_;
};

inline void banner(const char* fig, const char* what) {
  std::printf("=====================================================\n");
  std::printf("%s: %s\n", fig, what);
  std::printf("(paper: Kant & Sahoo, \"Clustered DBMS Scalability under\n");
  std::printf(" Unified Ethernet Fabric\"; shapes, not absolutes)\n");
  std::printf("=====================================================\n");
  std::fflush(stdout);
}

}  // namespace dclue::bench
