/// Ablation: thread count vs latency hiding vs cache thrash. The paper
/// (§2.3/§3.3): "latency can be hidden by simply having more concurrent
/// threads. However ... with larger number of threads, the context switch
/// penalty rises very sharply and the cache begins to thrash." This sweep
/// varies the closed-loop terminal population per node and reports the
/// resulting operating point.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario points("ablation_threads", "Ablation",
                         "terminals/node: latency hiding vs cache thrash",
                         "terminals_per_node", argc, argv);
  core::SeriesTable table("terminals vs throughput / threads / csw / CPI");
  table.add_column("terminals");
  table.add_column("tpmC_k");
  table.add_column("threads");
  table.add_column("csw_kcyc");
  table.add_column("cpi");
  table.add_column("cpu_util");
  const std::vector<double> sweep = bench::fast_mode()
                                        ? std::vector<double>{16, 48}
                                        : std::vector<double>{8, 16, 24, 36, 48, 72, 96};
  for (double terminals : sweep) {
    core::ClusterConfig cfg = bench::base_config();
    cfg.nodes = 2;
    cfg.affinity = 0.8;
    cfg.terminals_per_node = static_cast<int>(terminals);
    points.add(terminals, cfg);
  }
  points.run();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const core::RunReport& r = points[i];
    table.add_row({sweep[i], r.tpmc / 1000.0, r.avg_active_threads,
                   r.avg_context_switch_cycles / 1000.0, r.avg_cpi,
                   r.cpu_utilization});
  }
  table.print();
  return 0;
}
