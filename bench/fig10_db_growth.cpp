/// Figure 10: impact of slower database growth. TPC-C sizes the database
/// linearly with throughput; here, beyond 90 K tpm-C the warehouse count
/// grows only with the square root of the additional throughput, so data
/// contention rises with cluster size and scaling bends over.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("fig10_db_growth", "Fig 10",
                        "sub-linear DB growth vs TPC-C linear sizing", "nodes",
                        argc, argv);
  core::SeriesTable table("Fig 10: tpm-C (thousands) vs nodes");
  table.add_column("nodes");
  table.add_column("linear DB");
  table.add_column("sqrt>90K DB");
  table.add_column("wh(sqrt)");
  const std::vector<int> sweep_nodes = bench::fast_mode()
                                           ? std::vector<int>{2, 4, 8}
                                           : std::vector<int>{2, 4, 8, 12, 16, 24};

  std::vector<std::int64_t> sqrt_wh;
  for (int nodes : sweep_nodes) {
    for (auto growth : {core::DbGrowth::kLinear, core::DbGrowth::kSqrtBeyond90k}) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = nodes;
      cfg.affinity = 0.8;
      cfg.growth = growth;
      if (growth == core::DbGrowth::kSqrtBeyond90k) sqrt_wh.push_back(cfg.warehouses());
      sweep.add(nodes, cfg);
    }
  }
  sweep.run();

  std::size_t k = 0;
  std::size_t w = 0;
  for (int nodes : sweep_nodes) {
    std::vector<double> row{static_cast<double>(nodes)};
    row.push_back(sweep[k++].tpmc / 1000.0);
    row.push_back(sweep[k++].tpmc / 1000.0);
    row.push_back(static_cast<double>(sqrt_wh[w++]));
    table.add_row(row);
  }
  table.print();
  return 0;
}
