/// Figure 10: impact of slower database growth. TPC-C sizes the database
/// linearly with throughput; here, beyond 90 K tpm-C the warehouse count
/// grows only with the square root of the additional throughput, so data
/// contention rises with cluster size and scaling bends over.

#include "bench/bench_util.hpp"

using namespace dclue;

int main() {
  bench::banner("Fig 10", "sub-linear DB growth vs TPC-C linear sizing");
  core::SeriesTable table("Fig 10: tpm-C (thousands) vs nodes");
  table.add_column("nodes");
  table.add_column("linear DB");
  table.add_column("sqrt>90K DB");
  table.add_column("wh(sqrt)");
  const std::vector<int> sweep = bench::fast_mode()
                                     ? std::vector<int>{2, 4, 8}
                                     : std::vector<int>{2, 4, 8, 12, 16, 24};
  for (int nodes : sweep) {
    std::vector<double> row{static_cast<double>(nodes)};
    std::int64_t sqrt_wh = 0;
    for (auto growth : {core::DbGrowth::kLinear, core::DbGrowth::kSqrtBeyond90k}) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = nodes;
      cfg.affinity = 0.8;
      cfg.growth = growth;
      if (growth == core::DbGrowth::kSqrtBeyond90k) sqrt_wh = cfg.warehouses();
      core::RunReport r = core::run_experiment(cfg);
      row.push_back(r.tpmc / 1000.0);
    }
    row.push_back(static_cast<double>(sqrt_wh));
    table.add_row(row);
  }
  table.print();
  return 0;
}
