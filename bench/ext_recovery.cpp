/// Extension: the recovery trade-off behind Fig 9, quantified. The paper
/// argues local per-node logging performs better during normal operation
/// (Fig 9 shows it) but "may make rollback very complex since the recovery
/// procedure would have to obtain logs from all nodes, sort them by
/// timestamp and then do the rollback", while centralized logging "makes
/// recovery easier but at the cost of potential bottleneck". DCLUE dropped
/// recovery entirely; this bench closes the loop: for each logging scheme it
/// reports BOTH sides — steady-state tpm-C (with a running checkpointer)
/// and the simulated time to recover a crashed node.

#include "bench/bench_util.hpp"
#include "core/recovery.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("ext_recovery", "Extension",
                        "recovery time vs logging scheme (Fig 9's flip side)",
                        "nodes", argc, argv);
  core::SeriesTable table("nodes x logging: throughput AND recovery time");
  table.add_column("nodes");
  table.add_column("scheme");  // 0 = local, 1 = central
  table.add_column("tpmC_k");
  table.add_column("recover_s");
  table.add_column("gather_s");
  table.add_column("merge_s");
  table.add_column("redo_s");
  table.add_column("log_KB");

  const std::vector<int> sweep_nodes =
      bench::fast_mode() ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 8};
  for (int nodes : sweep_nodes) {
    for (bool central : {false, true}) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = nodes;
      cfg.affinity = 0.8;
      cfg.central_logging = central;
      sweep.add(nodes, cfg);
    }
  }

  // Each point: steady-state run with a checkpointer, then crash a non-log
  // node and recover it on the live fabric.
  std::vector<core::RecoveryReport> recoveries(sweep.size());
  sweep.run_with([&recoveries](const core::ClusterConfig& cfg, std::size_t i) {
    core::Cluster cluster(cfg);
    core::CheckpointManager ckpt(cluster, /*interval=*/8.0);
    ckpt.start();
    core::RunReport r = cluster.run();

    core::RecoveryReport rec;
    bool done = false;
    sim::spawn([](core::Cluster& c, core::RecoveryReport& out,
                  bool& done) -> sim::Task<void> {
      out = co_await core::run_recovery(c, /*failed_node=*/1);
      done = true;
    }(cluster, rec, done));
    // Advance in small steps; the rest of the cluster keeps running.
    for (int step = 0; step < 40 && !done; ++step) {
      cluster.engine().run_until(cluster.engine().now() + 25.0);
    }
    if (!done) std::fprintf(stderr, "warning: recovery did not converge\n");
    recoveries[i] = rec;

    // Ride the recovery outcome along in the point's registry snapshot, so
    // REPORT_ext_recovery.json carries both sides of the trade-off and CI
    // can assert the metrics exist (check_report.py --expect-metric).
    auto gauge = [&r](const char* name, double value) {
      obs::MetricValue m;
      m.name = name;
      m.kind = obs::MetricKind::kGauge;
      m.value = value;
      r.registry.metrics.push_back(std::move(m));
    };
    gauge("recovery.total_seconds", rec.total_seconds);
    gauge("recovery.gather_seconds", rec.gather_seconds);
    gauge("recovery.merge_seconds", rec.merge_seconds);
    gauge("recovery.redo_seconds", rec.redo_seconds);
    gauge("recovery.log_bytes", static_cast<double>(rec.log_bytes));
    gauge("recovery.records", static_cast<double>(rec.records));
    gauge("recovery.checkpoints_taken", static_cast<double>(ckpt.checkpoints_taken()));
    return r;
  });

  std::size_t k = 0;
  for (int nodes : sweep_nodes) {
    for (bool central : {false, true}) {
      const core::RunReport& r = sweep[k];
      const core::RecoveryReport& rec = recoveries[k];
      ++k;
      // Report recovery durations in unscaled seconds.
      const double s = bench::base_config().scale;
      table.add_row({static_cast<double>(nodes), central ? 1.0 : 0.0,
                     r.tpmc / 1000.0, rec.total_seconds / s, rec.gather_seconds / s,
                     rec.merge_seconds / s, rec.redo_seconds / s,
                     static_cast<double>(rec.log_bytes) / 1024.0});
    }
  }
  table.print();
  std::printf(
      "\nReading: local logging wins on throughput (scheme 0 rows) but pays\n"
      "at recovery time — gathering from every node plus the timestamp\n"
      "merge; central logging (scheme 1) recovers from one sequential scan\n"
      "but throttles normal operation, exactly the paper's stated trade-off.\n");
  return 0;
}
