/// Figures 6 & 7: throughput scaling. Fig 6 plots tpm-C vs cluster size with
/// affinity as the parameter (1.0 = perfect-scaling reference; near-linear
/// 2-10 nodes; slope change at 12 when the topology moves to 2 LATAs; low
/// affinities flatten). Fig 7 plots scaling vs affinity with node count as
/// the parameter — sensitivity is highest near high affinity.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("fig06_07_scaling", "Fig 6 / Fig 7",
                        "throughput scaling vs nodes and affinity", "nodes",
                        argc, argv);

  const std::vector<double> fig6_affinities = {1.0, 0.8, 0.5, 0.0};
  const std::vector<int> fig7_nodes = bench::fast_mode()
                                          ? std::vector<int>{4, 8}
                                          : std::vector<int>{4, 8, 16};
  const std::vector<double> fig7_affinities =
      bench::fast_mode() ? std::vector<double>{1.0, 0.8, 0.5, 0.0}
                         : std::vector<double>{1.0, 0.9, 0.8, 0.65, 0.5, 0.25, 0.0};

  for (int nodes : bench::node_sweep()) {
    for (double a : fig6_affinities) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = nodes;
      cfg.affinity = a;
      sweep.add(nodes, cfg);
    }
  }
  for (double a : fig7_affinities) {
    for (int n : fig7_nodes) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = n;
      cfg.affinity = a;
      sweep.add(n, cfg);
    }
  }
  sweep.run();

  std::size_t k = 0;
  core::SeriesTable fig6("Fig 6: tpm-C (thousands) vs nodes");
  fig6.add_column("nodes");
  for (double a : fig6_affinities) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "alpha=%.1f", a);
    fig6.add_column(buf);
  }
  for (int nodes : bench::node_sweep()) {
    std::vector<double> row{static_cast<double>(nodes)};
    for (double a : fig6_affinities) {
      (void)a;
      row.push_back(sweep[k++].tpmc / 1000.0);
    }
    fig6.add_row(row);
  }
  fig6.print();

  core::SeriesTable fig7("Fig 7: tpm-C (thousands) vs affinity");
  fig7.add_column("affinity");
  for (int n : fig7_nodes) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%d nodes", n);
    fig7.add_column(buf);
  }
  for (double a : fig7_affinities) {
    std::vector<double> row{a};
    for (int n : fig7_nodes) {
      (void)n;
      row.push_back(sweep[k++].tpmc / 1000.0);
    }
    fig7.add_row(row);
  }
  fig7.print();
  return 0;
}
