/// Extension: throughput degradation under a misbehaving unified fabric.
/// The paper assumes a clean Ethernet fabric; this matrix measures what the
/// cluster loses when the fabric is not clean — a loss-rate sweep crossed
/// with link-flap episodes, both injected by the deterministic fault
/// subsystem (sim/fault). TCP's fast-retransmit/RTO machinery absorbs the
/// damage at the transport layer; what survives to the DBMS shows up as
/// longer control-message delays, lock waits and lost tpm-C. Every point's
/// registry snapshot carries the fault.* counters, so the report records
/// exactly how much damage each point actually took.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"

using namespace dclue;

namespace {

core::ClusterConfig faulted(double drop, int flaps) {
  core::ClusterConfig cfg = bench::base_config();
  cfg.nodes = 4;
  cfg.affinity = 0.8;
  cfg.warmup = 4.0;
  cfg.measure = 16.0;
  char spec[128];
  std::snprintf(spec, sizeof(spec),
                "flaps=%d,flap_down=0.25,drop=%g,corrupt=%g,"
                "latency=0.005,jitter=0.002",
                flaps, drop, drop / 4.0);
  cfg.fault_spec = spec;
  return cfg;
}

double metric(const core::RunReport& r, const char* name) {
  const obs::MetricValue* m = r.registry.find(name);
  return m ? m->value : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Scenario sweep("ext_fault_matrix", "Extension",
                        "tpm-C degradation: loss rate x link-flap frequency",
                        "drop_rate", argc, argv);
  const std::vector<double> drops =
      bench::fast_mode() ? std::vector<double>{0.0, 0.02}
                         : std::vector<double>{0.0, 0.01, 0.03, 0.06};
  const std::vector<int> flap_counts =
      bench::fast_mode() ? std::vector<int>{0, 2} : std::vector<int>{0, 2, 4};

  for (int flaps : flap_counts) {
    for (double drop : drops) {
      sweep.add(drop, faulted(drop, flaps));
    }
  }
  // One seed's flap placement is worth ~1% of tpm-C — average a few plans
  // per point in the full run so the loss-rate signal clears that noise.
  // The fast smoke keeps the single-seed run (its coarse grid is clean).
  if (bench::fast_mode()) {
    sweep.run();
  } else {
    sweep.run_avg(3);
  }

  core::SeriesTable table("4 nodes, affinity 0.8: drop rate x flaps");
  table.add_column("drop");
  table.add_column("flaps");
  table.add_column("tpmC_k");
  table.add_column("ctl_ms");
  table.add_column("lockw_ms");
  table.add_column("abort%");
  table.add_column("drops");
  table.add_column("corrupt");
  std::size_t k = 0;
  bool monotone = true;
  for (int flaps : flap_counts) {
    double prev_tpmc = -1.0;
    for (double drop : drops) {
      const core::RunReport& r = sweep[k];
      ++k;
      table.add_row({drop, static_cast<double>(flaps), r.tpmc / 1000.0,
                     r.control_msg_delay_ms, r.lock_wait_time_ms,
                     100.0 * r.abort_rate, metric(r, "fault.link_drops"),
                     metric(r, "fault.link_corrupts")});
      if (prev_tpmc >= 0.0 && r.tpmc > prev_tpmc) monotone = false;
      prev_tpmc = r.tpmc;
    }
  }
  table.print();
  std::printf(
      "\nReading: each flap row degrades monotonically with loss rate%s —\n"
      "TCP recovers every byte (streams stay exact), but retransmit delay\n"
      "inflates the control-message RTT that lock grants and cache-fusion\n"
      "transfers ride on, so throughput erodes long before anything fails.\n",
      monotone ? "" : " (VIOLATED at this scale!)");
  return 0;
}
