/// Engine hot-path microbenchmark: schedule → fire → cancel throughput of
/// the arena engine vs the seed implementation (std::function +
/// shared_ptr<bool> cancellation flag + std::priority_queue of fat events),
/// reproduced here verbatim as `LegacyEngine`. Emits BENCH_engine.json with
/// events/sec for both and the speedup.
///
/// The workload mirrors what the model does per simulated packet/transaction:
///   - a self-rescheduling event chain (timer wheel churn),
///   - a cancel-and-rearm timer per firing (the TCP RTO/delayed-ACK pattern),
///   - a fraction of large-capture callbacks (the link-transmit pattern
///     that carries an 80-byte Packet by value).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/engine.hpp"

namespace {

// ---------------------------------------------------------------------------
// The seed engine, kept as the measurement baseline.
// ---------------------------------------------------------------------------

class LegacyHandle {
 public:
  LegacyHandle() = default;
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool pending() const { return cancelled_ && !*cancelled_; }
  explicit LegacyHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}

 private:
  std::shared_ptr<bool> cancelled_;
};

class LegacyEngine {
 public:
  using Time = dclue::sim::Time;
  [[nodiscard]] Time now() const { return now_; }

  LegacyHandle at(Time t, std::function<void()> fn) {
    auto flag = std::make_shared<bool>(false);
    queue_.push(Event{t, next_seq_++, std::move(fn), flag});
    return LegacyHandle{std::move(flag)};
  }
  LegacyHandle after(Time delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }
  std::uint64_t run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (*ev.cancelled) continue;
      now_ = ev.time;
      ev.fn();
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// Deterministic per-chain jitter source (no libc rand; reproducible).
struct Lcg {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  double next() {  // in [0, 1)
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(s >> 11) * (1.0 / 9007199254740992.0);
  }
};

struct BigCapture {
  unsigned char payload[80] = {};  // stands in for a by-value net::Packet
};

/// Runs kChains self-rescheduling chains until `fired` reaches target; every
/// firing rearms a cancel-heavy timer, and every 8th firing carries a large
/// capture. Works with either engine via duck typing.
template <typename EngineT, typename HandleT>
struct Churn {
  EngineT& engine;
  std::uint64_t target_fires;
  std::uint64_t fired = 0;
  Lcg jitter;
  std::vector<HandleT> timers;

  Churn(EngineT& e, std::uint64_t target) : engine(e), target_fires(target) {
    timers.resize(kChains);
  }

  static constexpr int kChains = 64;

  void step(int c, int hop) {
    ++fired;
    if (fired >= target_fires) return;
    // Timer rearm: cancel the previous pending timer, schedule a fresh one
    // far in the future (it usually never fires — the RTO pattern).
    timers[static_cast<std::size_t>(c)].cancel();
    timers[static_cast<std::size_t>(c)] = engine.after(1e6 + jitter.next(), [] {});
    if (hop % 8 == 0) {
      BigCapture big;
      big.payload[0] = static_cast<unsigned char>(hop);
      engine.after(0.5 + jitter.next(), [this, c, big, hop](/*large*/) {
        (void)big;
        step(c, hop + 1);
      });
    } else {
      engine.after(0.5 + jitter.next(), [this, c, hop] { step(c, hop + 1); });
    }
  }

  std::uint64_t run() {
    for (int c = 0; c < kChains; ++c) {
      engine.after(jitter.next(), [this, c] { step(c, 1); });
    }
    engine.run();
    return fired;
  }
};

template <typename EngineT, typename HandleT>
std::uint64_t churn(EngineT& engine, std::uint64_t target_fires) {
  Churn<EngineT, HandleT> c(engine, target_fires);
  return c.run();
}

template <typename EngineT, typename HandleT>
double measure_events_per_sec(std::uint64_t target_fires) {
  // Warmup pass to fault in allocators/arena, then the timed pass.
  {
    EngineT warm;
    churn<EngineT, HandleT>(warm, target_fires / 10);
  }
  EngineT engine;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t fired = churn<EngineT, HandleT>(engine, target_fires);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(fired) / secs;
}

}  // namespace

int main() {
  const char* fast = std::getenv("REPRO_FAST");
  const std::uint64_t fires = (fast && fast[0] == '1') ? 400'000 : 4'000'000;

  std::printf("engine microbenchmark: schedule/fire/cancel churn, %llu events\n",
              static_cast<unsigned long long>(fires));

  const double legacy =
      measure_events_per_sec<LegacyEngine, LegacyHandle>(fires);
  std::printf("  legacy (shared_ptr + std::function + priority_queue): %.3g events/sec\n",
              legacy);

  const double arena =
      measure_events_per_sec<dclue::sim::Engine, dclue::sim::EventHandle>(fires);
  std::printf("  arena  (generation slots + inline callbacks + 4-ary heap): %.3g events/sec\n",
              arena);

  const double speedup = arena / legacy;
  std::printf("  speedup: %.2fx\n", speedup);

  FILE* f = std::fopen("BENCH_engine.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"engine_schedule_fire_cancel\",\n"
                 "  \"events\": %llu,\n"
                 "  \"legacy_events_per_sec\": %.1f,\n"
                 "  \"arena_events_per_sec\": %.1f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 static_cast<unsigned long long>(fires), legacy, arena, speedup);
    std::fclose(f);
    std::printf("  wrote BENCH_engine.json\n");
  }
  return 0;
}
