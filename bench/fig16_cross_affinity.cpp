/// Figure 16: cross-traffic sensitivity vs affinity (low computation). The
/// paper's counter-intuitive result: lower affinity is *less* sensitive to
/// interfering traffic, because low-affinity workloads already run many
/// threads (more communication to hide) and the cache is already near
/// thrashing — further delays cannot degrade it much more.
///
/// Same open-loop protocol as Figs 14-15, per affinity.

#include "bench/bench_util.hpp"

using namespace dclue;

namespace {
constexpr double kTxnsPerBt = 2.0 + (0.05 + 0.05 + 0.04) / 0.43;
}

int main() {
  bench::banner("Fig 16", "cross traffic impact vs affinity (low comp)");
  core::SeriesTable table("Fig 16: tpm-C(k) and drop% vs affinity, FTP@AF21 100Mb/s");
  table.add_column("affinity");
  table.add_column("no FTP");
  table.add_column("FTP 100");
  table.add_column("drop %");
  table.add_column("thr base");
  table.add_column("thr FTP");
  const std::vector<double> affinities =
      bench::fast_mode() ? std::vector<double>{0.8, 0.0}
                         : std::vector<double>{1.0, 0.8, 0.5, 0.0};
  for (double a : affinities) {
    core::ClusterConfig base = bench::base_config();
    base.nodes = 8;
    base.max_servers_per_lata = 4;
    base.affinity = a;
    base.computation_factor = 0.25;  // low computation
    core::RunReport cap = core::run_experiment(base);
    const double rate = 0.92 * (cap.txn_rate / 8.0) / kTxnsPerBt;

    std::vector<double> row{a};
    double baseline = 0.0, thr0 = 0.0, thr1 = 0.0;
    for (double mbps : {0.0, 100.0}) {
      core::ClusterConfig cfg = base;
      cfg.open_loop_bt_rate_per_node = rate;
      cfg.ftp.offered_load_mbps = mbps;
      cfg.ftp.high_priority = true;
      core::RunReport r = core::run_experiment(cfg);
      if (mbps == 0.0) {
        baseline = r.tpmc;
        thr0 = r.avg_active_threads;
      } else {
        thr1 = r.avg_active_threads;
      }
      row.push_back(r.tpmc / 1000.0);
    }
    row.push_back(baseline > 0 ? (1.0 - row[2] * 1000.0 / baseline) * 100.0 : 0.0);
    row.push_back(thr0);
    row.push_back(thr1);
    table.add_row(row);
  }
  table.print();
  return 0;
}
