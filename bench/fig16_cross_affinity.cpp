/// Figure 16: cross-traffic sensitivity vs affinity (low computation). The
/// paper's counter-intuitive result: lower affinity is *less* sensitive to
/// interfering traffic, because low-affinity workloads already run many
/// threads (more communication to hide) and the cache is already near
/// thrashing — further delays cannot degrade it much more.
///
/// Same open-loop protocol as Figs 14-15, per affinity.

#include "bench/bench_util.hpp"

using namespace dclue;

namespace {
constexpr double kTxnsPerBt = 2.0 + (0.05 + 0.05 + 0.04) / 0.43;

core::ClusterConfig base_for(double affinity) {
  core::ClusterConfig cfg = bench::base_config();
  cfg.nodes = 8;
  cfg.max_servers_per_lata = 4;
  cfg.affinity = affinity;
  cfg.computation_factor = 0.25;  // low computation
  return cfg;
}
}  // namespace

int main(int argc, char** argv) {
  bench::Scenario sweep("fig16_cross_affinity", "Fig 16",
                        "cross traffic impact vs affinity (low comp)",
                        "affinity", argc, argv);
  core::SeriesTable table("Fig 16: tpm-C(k) and drop% vs affinity, FTP@AF21 100Mb/s");
  table.add_column("affinity");
  table.add_column("no FTP");
  table.add_column("FTP 100");
  table.add_column("drop %");
  table.add_column("thr base");
  table.add_column("thr FTP");
  const std::vector<double> affinities =
      bench::fast_mode() ? std::vector<double>{0.8, 0.0}
                         : std::vector<double>{1.0, 0.8, 0.5, 0.0};

  bench::Sweep probes;
  for (double a : affinities) probes.add(base_for(a));
  probes.run();

  for (std::size_t ai = 0; ai < affinities.size(); ++ai) {
    const double rate = 0.92 * (probes[ai].txn_rate / 8.0) / kTxnsPerBt;
    for (double mbps : {0.0, 100.0}) {
      core::ClusterConfig cfg = base_for(affinities[ai]);
      cfg.open_loop_bt_rate_per_node = rate;
      cfg.ftp.offered_load_mbps = mbps;
      cfg.ftp.high_priority = true;
      sweep.add(affinities[ai], cfg);
    }
  }
  sweep.run();

  std::size_t k = 0;
  for (double a : affinities) {
    const core::RunReport& clean = sweep[k++];
    const core::RunReport& loaded = sweep[k++];
    std::vector<double> row{a};
    row.push_back(clean.tpmc / 1000.0);
    row.push_back(loaded.tpmc / 1000.0);
    row.push_back(clean.tpmc > 0 ? (1.0 - loaded.tpmc / clean.tpmc) * 100.0 : 0.0);
    row.push_back(clean.avg_active_threads);
    row.push_back(loaded.avg_active_threads);
    table.add_row(row);
  }
  table.print();
  return 0;
}
