/// Ablation: where does a transaction's time go? The paper reasons about
/// latency hiding, IPC delay, lock waits and commit costs qualitatively;
/// this bench prints the measured per-phase latency budget of an average
/// committed transaction as affinity degrades — phase 1 (reads + page
/// fetches), phase 2 (global lock conversion), WAL flush, and apply.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("ablation_txn_breakdown", "Ablation",
                        "transaction latency budget vs affinity (8 nodes)",
                        "affinity", argc, argv);
  core::SeriesTable table("per-phase latency of an average transaction (ms)");
  table.add_column("affinity");
  table.add_column("total_ms");
  table.add_column("phase1_ms");
  table.add_column("locks_ms");
  table.add_column("log_ms");
  table.add_column("apply_ms");
  table.add_column("ipc/txn");
  const std::vector<double> affinities =
      bench::fast_mode() ? std::vector<double>{1.0, 0.5}
                         : std::vector<double>{1.0, 0.8, 0.5, 0.25, 0.0};
  for (double a : affinities) {
    core::ClusterConfig cfg = bench::base_config();
    cfg.nodes = 8;
    cfg.affinity = a;
    sweep.add(a, cfg);
  }
  sweep.run();
  for (std::size_t i = 0; i < affinities.size(); ++i) {
    const core::RunReport& r = sweep[i];
    table.add_row({affinities[i], r.txn_ms, r.txn_phase1_ms, r.txn_lock_ms,
                   r.txn_log_ms, r.txn_apply_ms, r.ipc_control_per_txn});
  }
  table.print();
  std::printf(
      "\nReading: phase 1 (data access incl. remote fetches) grows as\n"
      "affinity falls — the cache-fusion traffic the paper studies — while\n"
      "log and apply costs stay flat; lock conversion grows with remote\n"
      "lock mastering.\n");
  return 0;
}
