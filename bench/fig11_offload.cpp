/// Figure 11: protocol overhead — TCP and iSCSI offload. Three stacks are
/// compared across affinities: (1) both TCP fast path and iSCSI in HW,
/// (2) HW TCP with SW iSCSI, (3) both in SW. The paper: no appreciable
/// difference at affinity 1.0 (almost no IPC, local disks); at 0.8 HW TCP
/// gives ~2x over SW TCP while iSCSI offload is marginal; at 0.5 the gap
/// widens "but not by much" because lock failures dominate.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("fig11_offload", "Fig 11",
                        "TCP and iSCSI offload vs affinity (8 nodes)",
                        "affinity", argc, argv);
  core::SeriesTable table("Fig 11: tpm-C (thousands) by stack and affinity");
  table.add_column("affinity");
  table.add_column("HW TCP+iSCSI");
  table.add_column("HW TCP/SW iSCSI");
  table.add_column("SW TCP+iSCSI");
  struct Case {
    bool hw_tcp;
    bool hw_iscsi;
  };
  const Case cases[] = {{true, true}, {true, false}, {false, false}};
  const std::vector<double> affinities = {1.0, 0.8, 0.5};

  for (double a : affinities) {
    for (const Case& c : cases) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = bench::fast_mode() ? 4 : 8;
      cfg.affinity = a;
      cfg.hw_tcp = c.hw_tcp;
      cfg.hw_iscsi = c.hw_iscsi;
      sweep.add(a, cfg);
    }
  }
  sweep.run();

  std::size_t k = 0;
  for (double a : affinities) {
    std::vector<double> row{a};
    for (const Case& c : cases) {
      (void)c;
      row.push_back(sweep[k++].tpmc / 1000.0);
    }
    table.add_row(row);
  }
  table.print();
  return 0;
}
