/// Substrate microbenchmarks (google-benchmark): the raw performance of the
/// simulation engine and its building blocks. These bound how large a
/// cluster/duration the figure benches can sweep.

#include <benchmark/benchmark.h>

#include "db/btree.hpp"
#include "db/buffer_cache.hpp"
#include "db/lock_manager.hpp"
#include "net/topology.hpp"
#include "net/tcp.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"

namespace {

using namespace dclue;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10'000) e.after(1e-6, tick);
    };
    e.after(1e-6, tick);
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    sim::spawn([](sim::Engine& e) -> sim::Task<void> {
      for (int i = 0; i < 10'000; ++i) co_await sim::delay_for(e, 1e-6);
    }(e));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_BTreeInsert(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    db::BTree<std::uint64_t, std::uint64_t> t;
    for (int i = 0; i < 100'000; ++i) t.insert(rng.raw(), 1);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeFind(benchmark::State& state) {
  db::BTree<std::uint64_t, std::uint64_t> t;
  sim::Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 100'000; ++i) {
    keys.push_back(rng.raw());
    t.insert(keys.back(), 1);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeFind);

void BM_TcpBulkTransfer(benchmark::State& state) {
  // Simulated 10 MB transfer over the two-host harness per iteration.
  for (auto _ : state) {
    sim::Engine engine;
    net::TopologyParams tp;
    tp.servers_per_lata = 2;
    net::Topology topo(engine, tp);
    auto free_cpu = [](sim::PathLength, cpu::JobClass) -> sim::Task<void> {
      co_return;
    };
    net::TcpStack a(engine, topo.server_nic(0), {}, {}, free_cpu);
    net::TcpStack b(engine, topo.server_nic(1), {}, {}, free_cpu);
    auto& listener = b.listen(80);
    sim::spawn([](net::TcpListener& l) -> sim::Task<void> {
      auto conn = co_await l.accept();
      conn->set_rx_handler([](sim::Bytes) {});
    }(listener));
    auto conn = a.connect(topo.server_nic(1).address(), 80);
    conn->send(10'000'000);
    engine.run();
    benchmark::DoNotOptimize(engine.events_executed());
  }
}
BENCHMARK(BM_TcpBulkTransfer);

void BM_DiskRandomReads(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    storage::Disk disk(engine, "d", {});
    sim::Rng rng(3);
    for (int i = 0; i < 1'000; ++i) {
      sim::spawn([](storage::Disk& d, std::int64_t blk) -> sim::Task<void> {
        co_await d.read(blk, 8192);
      }(disk, rng.uniform_int(0, 1 << 22)));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_DiskRandomReads);

void BM_LockManagerChurn(benchmark::State& state) {
  sim::Engine engine;
  db::LockManager lm(engine);
  std::uint64_t k = 0;
  for (auto _ : state) {
    ++k;
    lm.try_acquire(k % 1024, k);
    lm.release(k % 1024, k);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockManagerChurn);

void BM_BufferCacheTouch(benchmark::State& state) {
  db::BufferCache cache(10'000);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    cache.insert(db::make_page_id(db::TableId::kStock, false, i),
                 db::PageMode::kShared);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    cache.touch(db::make_page_id(db::TableId::kStock, false, i++ % 10'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheTouch);

}  // namespace

BENCHMARK_MAIN();
