/// Figures 14 & 15: FTP cross traffic vs DBMS throughput, 2 LATAs x 4 nodes,
/// affinity 0.8. Two QoS arrangements: everything best-effort (both traffics
/// back off together; modest impact) vs FTP promoted to AF21 strict priority
/// (critical IPC control messages are delayed; the paper sees a large drop
/// already at 100 Mb/s that then flattens as thread/cache thrash saturates).
///
/// Protocol: the DBMS is driven OPEN-LOOP near its clean capacity ("we do
/// not place any bound on the number of threads"), so interference shows up
/// as capacity loss through the delay -> threads -> cache-thrash -> CPI
/// chain rather than being masked by a fixed terminal population. Thread
/// count, context-switch cost, CPI and lock wait are printed to expose that
/// mechanism (the paper's 20->75 threads, 17.7K->69.7K cycles, CPI
/// 11.5->16.9, lock wait 2->10 ms narrative).

#include "bench/bench_util.hpp"

using namespace dclue;

namespace {
constexpr double kTxnsPerBt = 2.0 + (0.05 + 0.05 + 0.04) / 0.43;
constexpr double kComps[] = {1.0, 0.25};

core::ClusterConfig scenario(double comp) {
  core::ClusterConfig cfg = bench::base_config();
  cfg.nodes = 8;
  cfg.max_servers_per_lata = 4;  // 2 LATAs x 4 nodes as in the paper
  cfg.affinity = 0.8;
  cfg.computation_factor = comp;
  return cfg;
}
}  // namespace

int main(int argc, char** argv) {
  bench::Scenario sweep("fig14_15_cross_traffic", "Fig 14 / Fig 15",
                        "FTP cross traffic impact, 2 LATAs x 4 nodes",
                        "ftp_offered_mbps", argc, argv);
  const std::vector<double> loads = bench::fast_mode()
                                        ? std::vector<double>{0, 100}
                                        : std::vector<double>{0, 100, 200, 400, 600};

  // Closed-loop capacity probes (both figures), then the open-loop grid.
  bench::Sweep probes;
  for (double comp : kComps) probes.add(scenario(comp));
  probes.run();
  std::array<double, 2> rate{};
  for (std::size_t ci = 0; ci < 2; ++ci) {
    rate[ci] = 0.92 * (probes[ci].txn_rate / 8.0) / kTxnsPerBt;
  }

  for (std::size_t ci = 0; ci < 2; ++ci) {
    for (double mbps : loads) {
      for (bool priority : {false, true}) {
        core::ClusterConfig cfg = scenario(kComps[ci]);
        cfg.open_loop_bt_rate_per_node = rate[ci];
        cfg.ftp.offered_load_mbps = mbps;
        cfg.ftp.high_priority = priority;
        sweep.add(mbps, cfg);
      }
    }
  }
  sweep.run();

  std::size_t k = 0;
  for (std::size_t ci = 0; ci < 2; ++ci) {
    const double comp = kComps[ci];
    core::SeriesTable table(
        comp == 1.0 ? "Fig 14: tpm-C(k) vs offered FTP load, normal comp"
                    : "Fig 15: tpm-C(k) vs offered FTP load, low comp");
    table.add_column("ftp_mbps");
    table.add_column("best-effort");
    table.add_column("ftp@AF21");
    table.add_column("AF21 thr");
    table.add_column("AF21 csw_k");
    table.add_column("AF21 cpi");
    table.add_column("AF21 lw_ms");
    table.add_column("AF21 dly_ms");

    for (double mbps : loads) {
      std::vector<double> row{mbps};
      const core::RunReport& be = sweep[k++];
      const core::RunReport& pri = sweep[k++];
      row.push_back(be.tpmc / 1000.0);
      row.push_back(pri.tpmc / 1000.0);
      row.push_back(pri.avg_active_threads);
      row.push_back(pri.avg_context_switch_cycles / 1000.0);
      row.push_back(pri.avg_cpi);
      row.push_back(pri.lock_wait_time_ms);
      row.push_back(pri.control_msg_delay_ms);
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}
