/// DB-tier microbenchmark: how fast do the per-transaction model structures
/// run once messaging is cheap? Two workloads:
///
///   - mix: a keyed lookup/insert/evict blend over the structures every
///     transaction touches — B+-tree probes, buffer-cache residency updates
///     (touch / insert-hit / insert-evict), MVCC version churn, and
///     directory probes — sized so the working set lives in the containers,
///     not the allocator,
///   - lockwait: contended lock wait churn through the engine — many
///     transactions blocking on a small lock set with timeouts, so grants,
///     abandons, and waiter-queue reuse all cycle continuously.
///
/// The binary carries an allocation-counting hook (global operator new
/// tallies, as in micro_datapath) and reports heap allocations per operation
/// over tight steady-state loops of the paths the overhaul promises are
/// allocation-free: buffer-cache touch, buffer-cache insert-hit, and
/// uncontended lock acquire/release.
///
/// "before" numbers were measured at commit a16691f (the pre-overhaul DB
/// tier: node-based std::unordered_map everywhere, std::list LRU with stored
/// iterators, shared_ptr<Waiter> + unique_ptr<Gate> per blocking lock
/// acquire) on the same machine that produced the committed
/// BENCH_dbtier.json; the bench recomputes "after" on every run and reports
/// the speedup against that baseline.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <new>

#include "cluster/directory.hpp"
#include "db/buffer_cache.hpp"
#include "db/btree.hpp"
#include "db/lock_manager.hpp"
#include "db/mvcc.hpp"
#include "sim/task.hpp"

// ---------------------------------------------------------------------------
// Allocation-counting hook (whole binary; the workloads below snapshot it
// around measurement windows).
// ---------------------------------------------------------------------------

namespace {
std::uint64_t g_alloc_calls = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_alloc_calls;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  ++g_alloc_calls;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dclue;

/// Process CPU time: the engine is single-threaded and this box may be
/// time-shared, so wall-clock measures the neighbours as much as the
/// simulator. CPU time is stable under preemption.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Deterministic xorshift stream: the op sequence must be identical run to
/// run so the allocation counts are machine-invariant.
struct Lcg {
  std::uint64_t s = 0x2545f4914f6cdd1dULL;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

db::PageId pg(std::uint64_t n) {
  return db::make_page_id(db::TableId::kStock, false, n);
}

// ---------------------------------------------------------------------------
// Workload A: keyed lookup/insert/evict mix.
// ---------------------------------------------------------------------------

struct MixResult {
  double ops_per_sec = 0.0;
  double allocs_per_op = 0.0;  ///< whole mix, steady state
};

MixResult run_mix(std::uint64_t ops) {
  sim::Engine engine;
  constexpr std::size_t kCachePages = 4096;
  constexpr std::uint64_t kPageSpan = 1 << 16;  ///< pages cycled through cache
  constexpr std::uint64_t kTreeKeys = 1 << 17;

  db::BufferCache cache(kCachePages);
  cluster::DirectoryService dir;
  db::VersionManager versions(engine, sim::megabytes(64), cache);
  db::BTree<std::uint64_t, std::uint64_t> tree;

  for (std::uint64_t k = 0; k < kTreeKeys; ++k) tree.insert(k * 7, k);
  for (std::uint64_t p = 0; p < kCachePages; ++p) {
    cache.insert(pg(p), db::PageMode::kShared);
    dir.lookup(pg(p), 0, false);
  }

  Lcg rng;
  std::uint64_t next_page = kCachePages;
  std::uint64_t sink = 0;
  db::Timestamp ts = 1;

  // Warm one eighth of the run so the containers reach steady occupancy
  // before the timed/counted window opens.
  const std::uint64_t warm = ops / 8;
  std::uint64_t a0 = 0;
  double t0 = 0.0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    if (i == warm) {
      a0 = g_alloc_calls;
      t0 = cpu_seconds();
    }
    const std::uint64_t r = rng.next();
    // Branch weights follow the paper's workload: TPC-C is dominated by
    // new-order and payment, both write-heavy, so page fetch + directory
    // traffic (30%) and version churn (20%) carry transaction-mix weight
    // alongside index point reads (40%) and re-references (10%).
    switch (r % 10) {
      case 0:
      case 1:
      case 2: {  // fetch a fresh page: evicts at capacity, informs directory
        const db::PageId page = pg(next_page++ % kPageSpan + kPageSpan);
        auto evicted = cache.insert(page, db::PageMode::kShared);
        dir.lookup(page, static_cast<int>(r >> 32) % 4, (r & 1) != 0);
        for (auto v : evicted) dir.evict(v, 0);
        break;
      }
      case 3: {  // insert-hit on a resident page
        const db::PageId page = pg(r % kCachePages);
        if (cache.resident(page)) {
          cache.insert(page, db::PageMode::kShared);
        } else {
          cache.touch(page);
        }
        break;
      }
      case 4:
      case 5: {  // MVCC version churn
        const db::PageId page = pg(r % 256);
        versions.create_version(page, static_cast<int>(r >> 40) % 4, ts++, 128);
        sink += static_cast<std::uint64_t>(
            versions.chain_hops(page, static_cast<int>(r >> 40) % 4, ts / 2));
        if ((ts & 0x3fff) == 0) versions.gc(ts - 64, 128);
        break;
      }
      default: {  // keyed lookup + residency touch (the transaction fast path)
        const std::uint64_t key = (r % kTreeKeys) * 7;
        if (auto v = tree.find(key)) sink += *v;
        cache.touch(pg(r % kCachePages));
        break;
      }
    }
  }
  const double secs = cpu_seconds() - t0;
  const std::uint64_t counted = ops - warm;

  if (sink == 0) std::exit(1);  // defeat optimizer; never taken
  MixResult res;
  res.ops_per_sec = static_cast<double>(counted) / secs;
  res.allocs_per_op =
      static_cast<double>(g_alloc_calls - a0) / static_cast<double>(counted);
  return res;
}

// ---------------------------------------------------------------------------
// Steady-state allocation probes: tight loops over the paths the overhaul
// promises are allocation-free.
// ---------------------------------------------------------------------------

struct AllocProbes {
  double touch = 0.0;
  double insert_hit = 0.0;
  double lock_uncontended = 0.0;
};

AllocProbes run_alloc_probes() {
  constexpr std::uint64_t kOps = 200'000;
  AllocProbes probes;
  {
    db::BufferCache cache(1024);
    for (std::uint64_t p = 0; p < 1024; ++p) cache.insert(pg(p), db::PageMode::kShared);
    Lcg rng;
    const std::uint64_t a0 = g_alloc_calls;
    for (std::uint64_t i = 0; i < kOps; ++i) cache.touch(pg(rng.next() % 1024));
    probes.touch =
        static_cast<double>(g_alloc_calls - a0) / static_cast<double>(kOps);
    const std::uint64_t a1 = g_alloc_calls;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      cache.insert(pg(rng.next() % 1024), db::PageMode::kShared);
    }
    probes.insert_hit =
        static_cast<double>(g_alloc_calls - a1) / static_cast<double>(kOps);
  }
  {
    sim::Engine engine;
    db::LockManager locks(engine);
    Lcg rng;
    // Warm: the lock table reaches its working-set footprint.
    for (std::uint64_t i = 0; i < 4096; ++i) {
      const db::LockName name = rng.next() % 1024;
      if (locks.try_acquire(name, 1)) locks.release(name, 1);
    }
    const std::uint64_t a0 = g_alloc_calls;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const db::LockName name = rng.next() % 1024;
      if (locks.try_acquire(name, 1)) locks.release(name, 1);
    }
    probes.lock_uncontended =
        static_cast<double>(g_alloc_calls - a0) / static_cast<double>(kOps);
  }
  return probes;
}

// ---------------------------------------------------------------------------
// Workload B: contended lock wait churn.
// ---------------------------------------------------------------------------

struct LockWaitResult {
  double ops_per_sec = 0.0;    ///< completed acquire attempts (grant or abandon)
  double allocs_per_op = 0.0;  ///< steady-state window (25%..95% of ops)
  std::uint64_t grants = 0;
  std::uint64_t timeouts = 0;
};

struct LockWaitState {
  sim::Engine& engine;
  db::LockManager& locks;
  std::uint64_t target_ops;
  std::uint64_t ops = 0;
  std::uint64_t grants = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t win_a0 = 0, win_op0 = 0, win_a1 = 0, win_op1 = 0;

  void note_op() {
    ++ops;
    if (win_op0 == 0 && ops >= target_ops / 4) {
      win_a0 = g_alloc_calls;
      win_op0 = ops;
    } else if (win_op1 == 0 && ops >= target_ops - target_ops / 20) {
      win_a1 = g_alloc_calls;
      win_op1 = ops;
    }
  }
};

sim::Task<void> lock_txn(LockWaitState& st, std::uint64_t seed, int locks_n) {
  Lcg rng{seed * 0x9e3779b97f4a7c15ULL + 1};
  std::uint64_t round = 0;
  while (st.ops < st.target_ops) {
    // A fresh token per round: each round is its own transaction, so a lock
    // still held by an earlier round of the same coroutine genuinely
    // conflicts instead of taking the reentrant fast path.
    const db::TxnToken tok = seed * 1'000'003 + ++round;
    const db::LockName name = rng.next() % static_cast<std::uint64_t>(locks_n);
    const bool granted =
        co_await st.locks.acquire_wait(name, tok, sim::microseconds(150.0));
    st.note_op();
    if (granted) {
      ++st.grants;
      // Hold briefly, then release from a timer so the coroutine can move
      // on to its next acquire without a per-hold gate.
      st.engine.after(sim::microseconds(50.0),
                      [&st, name, tok] { st.locks.release(name, tok); });
    } else {
      ++st.timeouts;
    }
  }
}

LockWaitResult run_lockwait(std::uint64_t ops) {
  sim::Engine engine;
  db::LockManager locks(engine);
  constexpr int kTxns = 64;
  constexpr int kLocks = 8;
  LockWaitState st{engine, locks, ops};
  for (int t = 0; t < kTxns; ++t) {
    sim::spawn(lock_txn(st, static_cast<std::uint64_t>(t), kLocks));
  }
  const double t0 = cpu_seconds();
  engine.run();
  const double secs = cpu_seconds() - t0;

  if (st.ops < ops) {
    std::fprintf(stderr, "lockwait incomplete: %llu/%llu\n",
                 static_cast<unsigned long long>(st.ops),
                 static_cast<unsigned long long>(ops));
    std::exit(1);
  }
  LockWaitResult res;
  res.ops_per_sec = static_cast<double>(st.ops) / secs;
  res.grants = st.grants;
  res.timeouts = st.timeouts;
  if (st.win_op1 > st.win_op0) {
    res.allocs_per_op = static_cast<double>(st.win_a1 - st.win_a0) /
                        static_cast<double>(st.win_op1 - st.win_op0);
  }
  return res;
}

/// Pre-overhaul numbers, measured at commit a16691f with this same bench
/// source (g++ -O3 -DNDEBUG, matching the Release build) on the machine that
/// produced the committed baseline JSON. Before/after invocations were
/// interleaved in the same windows and the throughput medians taken across
/// 20 runs spanning calm and busy periods; the alloc rates are
/// deterministic, identical in every run.
constexpr double kMixOpsPerSecBefore = 4.76e6;
constexpr double kLockWaitOpsPerSecBefore = 2.45e6;
constexpr double kMixAllocsPerOpBefore = 1.1507;
constexpr double kLockWaitAllocsPerOpBefore = 6.0311;

}  // namespace

int main() {
  const char* fast = std::getenv("REPRO_FAST");
  const bool is_fast = fast && fast[0] == '1';
  const std::uint64_t mix_ops = is_fast ? 2'000'000 : 16'000'000;
  const std::uint64_t lock_ops = is_fast ? 200'000 : 2'000'000;
  const int reps = is_fast ? 2 : 5;

  std::printf("db-tier microbenchmark: keyed mix + contended lock waits\n");

  // Warmup pass faults in allocator/arena state before the timed passes.
  run_mix(mix_ops / 8);

  // Best-of-N (see micro_datapath.cpp): the simulation is deterministic, so
  // every rep executes the identical op sequence and the allocation counts
  // are rep-invariant; only the clock varies.
  MixResult mix;
  for (int i = 0; i < reps; ++i) {
    const MixResult r = run_mix(mix_ops);
    if (r.ops_per_sec > mix.ops_per_sec) mix = r;
  }
  std::printf("  mix      : %.3g ops/sec, %.4f heap allocs/op (steady state)\n",
              mix.ops_per_sec, mix.allocs_per_op);

  LockWaitResult lw;
  for (int i = 0; i < reps; ++i) {
    const LockWaitResult r = run_lockwait(lock_ops);
    if (r.ops_per_sec > lw.ops_per_sec) lw = r;
  }
  std::printf("  lockwait : %.3g ops/sec, %.4f heap allocs/op (steady state), "
              "%llu grants / %llu timeouts\n",
              lw.ops_per_sec, lw.allocs_per_op,
              static_cast<unsigned long long>(lw.grants),
              static_cast<unsigned long long>(lw.timeouts));

  const AllocProbes probes = run_alloc_probes();
  std::printf("  allocs/op: touch %.4f, insert-hit %.4f, uncontended lock %.4f\n",
              probes.touch, probes.insert_hit, probes.lock_uncontended);

  const double mix_speedup =
      kMixOpsPerSecBefore > 0.0 ? mix.ops_per_sec / kMixOpsPerSecBefore : 1.0;
  const double lw_speedup = kLockWaitOpsPerSecBefore > 0.0
                                ? lw.ops_per_sec / kLockWaitOpsPerSecBefore
                                : 1.0;
  std::printf("  speedup vs pre-overhaul DB tier: mix %.2fx, lockwait %.2fx\n",
              mix_speedup, lw_speedup);

  FILE* f = std::fopen("BENCH_dbtier.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"dbtier_mix_and_lockwait\",\n"
                 "  \"mix_ops\": %llu,\n"
                 "  \"lockwait_ops\": %llu,\n"
                 "  \"mix_ops_per_sec_before\": %.1f,\n"
                 "  \"mix_ops_per_sec_after\": %.1f,\n"
                 "  \"mix_speedup\": %.3f,\n"
                 "  \"lockwait_ops_per_sec_before\": %.1f,\n"
                 "  \"lockwait_ops_per_sec_after\": %.1f,\n"
                 "  \"lockwait_speedup\": %.3f,\n"
                 "  \"mix_allocs_per_op_before\": %.4f,\n"
                 "  \"mix_allocs_per_op_after\": %.4f,\n"
                 "  \"lockwait_allocs_per_op_before\": %.4f,\n"
                 "  \"lockwait_allocs_per_op_after\": %.4f,\n"
                 "  \"cache_touch_allocs_per_op_after\": %.4f,\n"
                 "  \"cache_insert_hit_allocs_per_op_after\": %.4f,\n"
                 "  \"lock_uncontended_allocs_per_op_after\": %.4f\n"
                 "}\n",
                 static_cast<unsigned long long>(mix_ops),
                 static_cast<unsigned long long>(lock_ops),
                 kMixOpsPerSecBefore, mix.ops_per_sec, mix_speedup,
                 kLockWaitOpsPerSecBefore, lw.ops_per_sec, lw_speedup,
                 kMixAllocsPerOpBefore, mix.allocs_per_op,
                 kLockWaitAllocsPerOpBefore, lw.allocs_per_op, probes.touch,
                 probes.insert_hit, probes.lock_uncontended);
    std::fclose(f);
    std::printf("  wrote BENCH_dbtier.json\n");
  }
  return 0;
}
