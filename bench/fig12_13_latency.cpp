/// Figures 12 & 13: fabric latency impact. A 2-LATA system where each
/// inter-LATA link carries half of an added latency; the paper finds only a
/// few percent drop per millisecond for normal computation at both 0.8 and
/// 0.5 affinity — because "the true impact of latency is felt only when the
/// latency cannot be hidden by employing additional threads; therefore, we
/// do not place any bound on the number of threads used" — and a much
/// larger drop when computational path lengths are cut 4x (Fig 13).
///
/// Protocol: measure the closed-loop capacity at zero extra latency, then
/// drive the cluster OPEN-LOOP at ~92% of that capacity (unbounded threads)
/// while sweeping the added latency.

#include "bench/bench_util.hpp"

using namespace dclue;

namespace {

core::ClusterConfig scenario(double affinity, double comp) {
  core::ClusterConfig cfg = bench::base_config();
  cfg.nodes = 8;
  cfg.max_servers_per_lata = 4;  // force 2 LATAs of 4 nodes
  cfg.affinity = affinity;
  cfg.computation_factor = comp;
  return cfg;
}

/// Average TPC-C transactions per business transaction (mix-derived).
constexpr double kTxnsPerBt = 2.0 + (0.05 + 0.05 + 0.04) / 0.43;

}  // namespace

int main() {
  bench::banner("Fig 12 / Fig 13", "inter-LATA latency impact, 2 LATAs x 4 nodes");
  for (double comp : {1.0, 0.25}) {
    core::SeriesTable table(comp == 1.0
                                ? "Fig 12: tpm-C(k) + drop% vs extra latency, normal comp"
                                : "Fig 13: tpm-C(k) + drop% vs extra latency, low comp");
    table.add_column("latency_ms");
    table.add_column("a=0.8 tpmC");
    table.add_column("a=0.8 drop%");
    table.add_column("a=0.8 thr");
    table.add_column("a=0.5 tpmC");
    table.add_column("a=0.5 drop%");
    const std::vector<double> latencies =
        bench::fast_mode() ? std::vector<double>{0.0, 1.0}
                           : std::vector<double>{0.0, 0.5, 1.0, 2.0};

    // Pass 1: closed-loop capacity probe per affinity.
    std::array<double, 2> open_rate{};
    {
      int idx = 0;
      for (double a : {0.8, 0.5}) {
        core::RunReport cap = core::run_experiment(scenario(a, comp));
        open_rate[idx++] =
            0.92 * (cap.txn_rate / 8.0) / kTxnsPerBt;  // bt/s per node
      }
    }

    std::array<double, 2> baseline{0.0, 0.0};
    for (double ms : latencies) {
      std::vector<double> row{ms};
      int idx = 0;
      for (double a : {0.8, 0.5}) {
        core::ClusterConfig cfg = scenario(a, comp);
        cfg.open_loop_bt_rate_per_node = open_rate[static_cast<std::size_t>(idx)];
        cfg.extra_inter_lata_latency = ms * 1e-3;
        core::RunReport r = core::run_experiment(cfg);
        if (ms == 0.0) baseline[static_cast<std::size_t>(idx)] = r.tpmc;
        const double drop =
            baseline[static_cast<std::size_t>(idx)] > 0
                ? (1.0 - r.tpmc / baseline[static_cast<std::size_t>(idx)]) * 100.0
                : 0.0;
        row.push_back(r.tpmc / 1000.0);
        row.push_back(drop);
        if (a == 0.8) row.push_back(r.avg_active_threads);
        ++idx;
      }
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}
