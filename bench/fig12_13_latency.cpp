/// Figures 12 & 13: fabric latency impact. A 2-LATA system where each
/// inter-LATA link carries half of an added latency; the paper finds only a
/// few percent drop per millisecond for normal computation at both 0.8 and
/// 0.5 affinity — because "the true impact of latency is felt only when the
/// latency cannot be hidden by employing additional threads; therefore, we
/// do not place any bound on the number of threads used" — and a much
/// larger drop when computational path lengths are cut 4x (Fig 13).
///
/// Protocol: measure the closed-loop capacity at zero extra latency, then
/// drive the cluster OPEN-LOOP at ~92% of that capacity (unbounded threads)
/// while sweeping the added latency.

#include "bench/bench_util.hpp"

using namespace dclue;

namespace {

core::ClusterConfig scenario(double affinity, double comp) {
  core::ClusterConfig cfg = bench::base_config();
  cfg.nodes = 8;
  cfg.max_servers_per_lata = 4;  // force 2 LATAs of 4 nodes
  cfg.affinity = affinity;
  cfg.computation_factor = comp;
  return cfg;
}

/// Average TPC-C transactions per business transaction (mix-derived).
constexpr double kTxnsPerBt = 2.0 + (0.05 + 0.05 + 0.04) / 0.43;

constexpr double kComps[] = {1.0, 0.25};
constexpr double kAffinities[] = {0.8, 0.5};

}  // namespace

int main(int argc, char** argv) {
  bench::Scenario sweep("fig12_13_latency", "Fig 12 / Fig 13",
                        "inter-LATA latency impact, 2 LATAs x 4 nodes",
                        "extra_latency_ms", argc, argv);
  const std::vector<double> latencies =
      bench::fast_mode() ? std::vector<double>{0.0, 1.0}
                         : std::vector<double>{0.0, 0.5, 1.0, 2.0};

  // Pass 1: closed-loop capacity probe per (comp, affinity), all points at
  // once. Pass 2 depends on these rates, so it is a second sweep.
  bench::Sweep probes;
  for (double comp : kComps) {
    for (double a : kAffinities) {
      probes.add(scenario(a, comp));
    }
  }
  probes.run();

  std::size_t p = 0;
  std::array<std::array<double, 2>, 2> open_rate{};  // [comp][affinity], bt/s per node
  for (std::size_t ci = 0; ci < 2; ++ci) {
    for (std::size_t ai = 0; ai < 2; ++ai) {
      open_rate[ci][ai] = 0.92 * (probes[p++].txn_rate / 8.0) / kTxnsPerBt;
    }
  }

  // Pass 2: open-loop latency sweep for both figures.
  for (std::size_t ci = 0; ci < 2; ++ci) {
    for (double ms : latencies) {
      for (std::size_t ai = 0; ai < 2; ++ai) {
        core::ClusterConfig cfg = scenario(kAffinities[ai], kComps[ci]);
        cfg.open_loop_bt_rate_per_node = open_rate[ci][ai];
        cfg.extra_inter_lata_latency = ms * 1e-3;
        sweep.add(ms, cfg);
      }
    }
  }
  sweep.run();

  std::size_t k = 0;
  for (std::size_t ci = 0; ci < 2; ++ci) {
    const double comp = kComps[ci];
    core::SeriesTable table(comp == 1.0
                                ? "Fig 12: tpm-C(k) + drop% vs extra latency, normal comp"
                                : "Fig 13: tpm-C(k) + drop% vs extra latency, low comp");
    table.add_column("latency_ms");
    table.add_column("a=0.8 tpmC");
    table.add_column("a=0.8 drop%");
    table.add_column("a=0.8 thr");
    table.add_column("a=0.5 tpmC");
    table.add_column("a=0.5 drop%");

    std::array<double, 2> baseline{0.0, 0.0};
    for (double ms : latencies) {
      std::vector<double> row{ms};
      for (std::size_t ai = 0; ai < 2; ++ai) {
        const core::RunReport& r = sweep[k++];
        if (ms == 0.0) baseline[ai] = r.tpmc;
        const double drop =
            baseline[ai] > 0 ? (1.0 - r.tpmc / baseline[ai]) * 100.0 : 0.0;
        row.push_back(r.tpmc / 1000.0);
        row.push_back(drop);
        if (kAffinities[ai] == 0.8) row.push_back(r.avg_active_threads);
      }
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}
