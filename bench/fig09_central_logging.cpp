/// Figure 9: centralized (single-node) logging vs per-node local logging.
/// The paper: centralized logging simplifies recovery but performance "is
/// consistently lower", eventually capped by the log node's capacity.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("fig09_central_logging", "Fig 9",
                        "single-node logging vs local logging", "nodes", argc,
                        argv);
  core::SeriesTable table("Fig 9: tpm-C (thousands) vs nodes");
  table.add_column("nodes");
  table.add_column("local log");
  table.add_column("central log");
  const std::vector<int> sweep_nodes = bench::fast_mode()
                                           ? std::vector<int>{2, 4, 8}
                                           : std::vector<int>{2, 4, 8, 12, 16, 24};

  for (int nodes : sweep_nodes) {
    for (bool central : {false, true}) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = nodes;
      cfg.affinity = 0.8;
      cfg.central_logging = central;
      sweep.add(nodes, cfg);
    }
  }
  sweep.run();

  std::size_t k = 0;
  for (int nodes : sweep_nodes) {
    std::vector<double> row{static_cast<double>(nodes)};
    row.push_back(sweep[k++].tpmc / 1000.0);
    row.push_back(sweep[k++].tpmc / 1000.0);
    table.add_row(row);
  }
  table.print();
  return 0;
}
