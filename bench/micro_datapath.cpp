/// Segment-level datapath microbenchmark: how fast does the simulator push
/// TCP segments end to end (NIC deliver → TCP rx → app handler, plus the
/// reverse ack path) once protocol CPU costs are zeroed out? Two workloads:
///
///   - bulk: one connection streaming a large transfer between two hosts —
///     the steady-state fast path (window growth, delayed acks, transmit
///     pump, link serialization),
///   - churn: many short-lived connections opened/used/closed concurrently —
///     the handshake/teardown path plus connection table pressure.
///
/// The binary also carries an allocation-counting hook (global operator
/// new/delete tallies) and reports heap allocations per segment over the
/// steady-state middle of the bulk transfer; the pooled-frame datapath must
/// show 0.00 there (acceptance criterion for the zero-allocation overhaul).
///
/// "before" numbers were measured at commit 2eee48f (the pre-overhaul
/// datapath: heap-allocated coroutine frames per segment, std::function
/// dispatch, std::deque queues, std::map hole tracking) on the same machine
/// that produced the committed BENCH_datapath.json; the bench recomputes
/// "after" on every run and reports the speedup against that baseline.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>

#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "sim/task.hpp"

// ---------------------------------------------------------------------------
// Allocation-counting hook (whole binary; the workloads below snapshot it
// around measurement windows).
// ---------------------------------------------------------------------------

namespace {
std::uint64_t g_alloc_calls = 0;
std::uint64_t g_alloc_bytes = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_alloc_calls;
  g_alloc_bytes += n;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  ++g_alloc_calls;
  g_alloc_bytes += n;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dclue;

net::CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

/// Process CPU time: the engine is single-threaded and this box may be
/// time-shared, so wall-clock measures the neighbours as much as the
/// simulator. CPU time is stable under preemption.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Two servers in one LATA, TCP stacks with zeroed protocol costs: wall time
/// measures the simulator's datapath, not the modeled CPU.
struct Harness {
  sim::Engine engine;
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<net::TcpStack> a;
  std::unique_ptr<net::TcpStack> b;

  Harness() {
    net::TopologyParams tp;
    tp.servers_per_lata = 2;
    topo = std::make_unique<net::Topology>(engine, tp);
    a = std::make_unique<net::TcpStack>(engine, topo->server_nic(0),
                                        net::TcpParams{}, net::TcpCostModel{},
                                        free_cpu());
    b = std::make_unique<net::TcpStack>(engine, topo->server_nic(1),
                                        net::TcpParams{}, net::TcpCostModel{},
                                        free_cpu());
  }

  [[nodiscard]] std::uint64_t segments() const {
    return a->segments_received() + b->segments_received();
  }
};

struct BulkResult {
  double segments_per_sec = 0.0;
  double allocs_per_segment = 0.0;  ///< steady-state window (25%..95%)
  double events_per_segment = 0.0;  ///< engine events per delivered segment
};

BulkResult run_bulk(sim::Bytes total) {
  Harness h;
  auto& listener = h.b->listen(5000);
  sim::Bytes received = 0;
  std::uint64_t win_alloc0 = 0, win_seg0 = 0, win_alloc1 = 0, win_seg1 = 0;
  sim::spawn([](Harness& h, net::TcpListener& l, sim::Bytes& got,
                sim::Bytes total, std::uint64_t& a0, std::uint64_t& s0,
                std::uint64_t& a1, std::uint64_t& s1) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([&, total](sim::Bytes n) {
      got += n;
      if (s0 == 0 && got >= total / 4) {
        a0 = g_alloc_calls;
        s0 = h.segments();
      } else if (s1 == 0 && got >= total - total / 20) {
        a1 = g_alloc_calls;
        s1 = h.segments();
      }
    });
  }(h, listener, received, total, win_alloc0, win_seg0, win_alloc1, win_seg1));
  auto conn = h.a->connect(h.b->address(), 5000);
  conn->send(total);

  const double t0 = cpu_seconds();
  h.engine.run();
  const double secs = cpu_seconds() - t0;

  if (received != total) {
    std::fprintf(stderr, "bulk transfer incomplete: %lld/%lld\n",
                 static_cast<long long>(received), static_cast<long long>(total));
    std::exit(1);
  }
  BulkResult r;
  r.segments_per_sec = static_cast<double>(h.segments()) / secs;
  r.events_per_segment = static_cast<double>(h.engine.events_executed()) /
                         static_cast<double>(h.segments());
  if (win_seg1 > win_seg0) {
    r.allocs_per_segment = static_cast<double>(win_alloc1 - win_alloc0) /
                           static_cast<double>(win_seg1 - win_seg0);
  }
  return r;
}

struct ChurnResult {
  double segments_per_sec = 0.0;
  double conns_per_sec = 0.0;
};

ChurnResult run_churn(int clients, int conns_each) {
  Harness h;
  auto& listener = h.b->listen(21);
  sim::spawn([](net::TcpListener& l) -> sim::Task<void> {
    for (;;) {
      auto conn = co_await l.accept();
      conn->set_rx_handler([](sim::Bytes) {});
      conn->set_eof_handler([conn] { conn->close(); });
    }
  }(listener));
  int completed = 0;
  for (int c = 0; c < clients; ++c) {
    sim::spawn([](Harness& h, int conns, int& completed) -> sim::Task<void> {
      for (int i = 0; i < conns; ++i) {
        auto conn = h.a->connect(h.b->address(), 21);
        co_await conn->established().wait();
        if (conn->state() != net::TcpConnection::State::kEstablished) continue;
        conn->send(10'000);
        co_await conn->wait_all_acked();
        conn->close();
        ++completed;
      }
    }(h, conns_each, completed));
  }

  const double t0 = cpu_seconds();
  h.engine.run();
  const double secs = cpu_seconds() - t0;

  if (completed != clients * conns_each) {
    std::fprintf(stderr, "churn incomplete: %d/%d\n", completed,
                 clients * conns_each);
    std::exit(1);
  }
  ChurnResult r;
  r.segments_per_sec = static_cast<double>(h.segments()) / secs;
  r.conns_per_sec = static_cast<double>(completed) / secs;
  return r;
}

/// Pre-overhaul numbers, measured at commit 2eee48f with this same binary
/// (REPRO_FAST=0) on the machine that produced the committed baseline JSON;
/// before/after invocations were interleaved in the same window and the best
/// of three taken for each, mirroring the in-process best-of-N policy.
constexpr double kBulkSegPerSecBefore = 2090000.0;
constexpr double kChurnSegPerSecBefore = 1090000.0;
constexpr double kBulkAllocsPerSegBefore = 4.90;

}  // namespace

int main() {
  const char* fast = std::getenv("REPRO_FAST");
  const bool is_fast = fast && fast[0] == '1';
  // REPRO_DP_SCALE=<n> lengthens the measured passes n-fold (profiling runs
  // want several seconds of steady state; the default is sized for CI).
  const char* scale_env = std::getenv("REPRO_DP_SCALE");
  const sim::Bytes scale = scale_env ? std::atoll(scale_env) : 1;
  const sim::Bytes bulk_bytes = (is_fast ? 16'000'000 : 256'000'000) * scale;
  const int churn_clients = 16;
  const int churn_conns = static_cast<int>((is_fast ? 40 : 400) * scale);
  const int reps = is_fast ? 2 : 5;

  std::printf("datapath microbenchmark: NIC deliver -> TCP rx -> app handler\n");

  // Warmup pass faults in allocator/arena state before the timed passes.
  run_bulk(bulk_bytes / 8);

  // Best-of-N: one pass is ~100 ms of wall time, so scheduler noise and CPU
  // frequency ramp dominate any single sample; the fastest repetition is the
  // closest to the machine's true throughput. The simulation itself is
  // deterministic, so every rep executes the identical event sequence and the
  // allocation count is rep-invariant.
  BulkResult bulk;
  for (int i = 0; i < reps; ++i) {
    const BulkResult r = run_bulk(bulk_bytes);
    if (r.segments_per_sec > bulk.segments_per_sec) bulk = r;
  }
  std::printf("  bulk  : %.3g segments/sec, %.2f heap allocs/segment (steady state), "
              "%.2f events/segment\n",
              bulk.segments_per_sec, bulk.allocs_per_segment,
              bulk.events_per_segment);

  ChurnResult churn;
  for (int i = 0; i < reps; ++i) {
    const ChurnResult r = run_churn(churn_clients, churn_conns);
    if (r.segments_per_sec > churn.segments_per_sec) churn = r;
  }
  std::printf("  churn : %.3g segments/sec, %.3g conns/sec\n",
              churn.segments_per_sec, churn.conns_per_sec);

  const double bulk_speedup =
      kBulkSegPerSecBefore > 0.0 ? bulk.segments_per_sec / kBulkSegPerSecBefore : 1.0;
  const double churn_speedup =
      kChurnSegPerSecBefore > 0.0 ? churn.segments_per_sec / kChurnSegPerSecBefore
                                  : 1.0;
  std::printf("  speedup vs pre-overhaul datapath: bulk %.2fx, churn %.2fx\n",
              bulk_speedup, churn_speedup);

  FILE* f = std::fopen("BENCH_datapath.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"datapath_bulk_and_churn\",\n"
                 "  \"bulk_bytes\": %lld,\n"
                 "  \"churn_connections\": %d,\n"
                 "  \"bulk_segments_per_sec_before\": %.1f,\n"
                 "  \"bulk_segments_per_sec_after\": %.1f,\n"
                 "  \"bulk_speedup\": %.3f,\n"
                 "  \"churn_segments_per_sec_before\": %.1f,\n"
                 "  \"churn_segments_per_sec_after\": %.1f,\n"
                 "  \"churn_speedup\": %.3f,\n"
                 "  \"bulk_allocs_per_segment_before\": %.3f,\n"
                 "  \"bulk_allocs_per_segment_after\": %.3f,\n"
                 "  \"bulk_events_per_segment\": %.3f\n"
                 "}\n",
                 static_cast<long long>(bulk_bytes), churn_clients * churn_conns,
                 kBulkSegPerSecBefore, bulk.segments_per_sec, bulk_speedup,
                 kChurnSegPerSecBefore, churn.segments_per_sec, churn_speedup,
                 kBulkAllocsPerSegBefore, bulk.allocs_per_segment,
                 bulk.events_per_segment);
    std::fclose(f);
    std::printf("  wrote BENCH_datapath.json\n");
  }
  return 0;
}
