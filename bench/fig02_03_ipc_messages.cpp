/// Figures 2 & 3: IPC control and data messages per transaction vs cluster
/// size, at affinity 0.8 (Fig 2) and affinity 0 (Fig 3). The paper's
/// observation: the count "rises sharply at first but then saturates rather
/// quickly", so message volume stops limiting scalability beyond small
/// clusters.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("fig02_03_ipc_messages", "Fig 2 / Fig 3",
                        "IPC messages per transaction vs nodes", "nodes", argc,
                        argv);
  const std::vector<double> affinities = {0.8, 0.0};

  for (double affinity : affinities) {
    for (int nodes : bench::node_sweep()) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = nodes;
      cfg.affinity = affinity;
      sweep.add(nodes, cfg);
    }
  }
  sweep.run();

  std::size_t k = 0;
  for (double affinity : affinities) {
    core::SeriesTable table(affinity == 0.8
                                ? "Fig 2: IPC msgs/txn, affinity 0.8"
                                : "Fig 3: IPC msgs/txn, affinity 0.0");
    table.add_column("nodes");
    table.add_column("control/txn");
    table.add_column("data/txn");
    for (int nodes : bench::node_sweep()) {
      const core::RunReport& r = sweep[k++];
      table.add_row({static_cast<double>(nodes), r.ipc_control_per_txn,
                     r.ipc_data_per_txn});
    }
    table.print();
  }
  return 0;
}
