/// Figures 4 & 5: lock waits per transaction and average lock wait time vs
/// cluster size, per affinity. The paper: "Both lock waits per transaction
/// and average lock wait time increase steadily with cluster size" (with
/// pronounced variability).

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("fig04_05_lock_waits", "Fig 4 / Fig 5",
                        "lock waits/txn and lock wait time vs nodes", "nodes",
                        argc, argv);
  core::SeriesTable waits("Fig 4: lock waits per transaction");
  core::SeriesTable times("Fig 5: lock wait time (ms, unscaled)");
  const std::vector<double> affinities = {0.8, 0.5, 0.0};
  waits.add_column("nodes");
  times.add_column("nodes");
  for (double a : affinities) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "alpha=%.1f", a);
    waits.add_column(buf);
    times.add_column(buf);
  }

  for (int nodes : bench::node_sweep()) {
    for (double a : affinities) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = nodes;
      cfg.affinity = a;
      sweep.add(nodes, cfg);
    }
  }
  // Lock statistics are the noisiest series in the paper; average a few
  // replications.
  sweep.run_avg(bench::fast_mode() ? 1 : 3);

  std::size_t k = 0;
  for (int nodes : bench::node_sweep()) {
    std::vector<double> wrow{static_cast<double>(nodes)};
    std::vector<double> trow{static_cast<double>(nodes)};
    for (double a : affinities) {
      (void)a;
      const core::RunReport& r = sweep[k++];
      wrow.push_back(r.lock_waits_per_txn + r.lock_failures_per_txn);
      trow.push_back(r.lock_wait_time_ms);
    }
    waits.add_row(wrow);
    times.add_row(trow);
  }
  waits.print();
  times.print();
  return 0;
}
