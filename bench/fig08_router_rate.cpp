/// Figure 8: impact of router forwarding rate on scalability. Single-LATA
/// cluster; cutting the forwarding rate from the normal 10000 packets/sec to
/// 4000 packets/sec (paper's 100x-scaled units) saturates the inner router
/// beyond ~8 connected servers and caps scaling.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("fig08_router_rate", "Fig 8",
                        "router forwarding rate vs scalability (single LATA)",
                        "nodes", argc, argv);
  core::SeriesTable table("Fig 8: tpm-C (thousands) vs nodes, single LATA");
  table.add_column("nodes");
  table.add_column("10000 pps");
  table.add_column("4000 pps");
  const std::vector<int> nodes_sweep =
      bench::fast_mode() ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 6, 8, 10, 12};
  const std::vector<double> rates = {10'000.0, 4'000.0};

  for (int nodes : nodes_sweep) {
    for (double pps : rates) {
      core::ClusterConfig cfg = bench::base_config();
      cfg.nodes = nodes;
      cfg.affinity = 0.8;
      cfg.router_pps_at_scale100 = pps;
      sweep.add(nodes, cfg);
    }
  }
  sweep.run();

  std::size_t k = 0;
  for (int nodes : nodes_sweep) {
    std::vector<double> row{static_cast<double>(nodes)};
    for (double pps : rates) {
      (void)pps;
      row.push_back(sweep[k++].tpmc / 1000.0);
    }
    table.add_row(row);
  }
  table.print();
  return 0;
}
