/// Extension (the paper's §4 future work): "it is important to examine QoS
/// schemes that can minimize inter-application interference and yet provide
/// a good performance for all." This bench evaluates the diff-serv
/// mechanisms the paper lists but does not study — weighted fair queueing,
/// WRED, and leaky-bucket policing of the aggressive class — against the two
/// arrangements it does study (all-best-effort, FTP at strict priority).
///
/// Scenario: 2 LATAs x 4 nodes, affinity 0.8, DBMS driven open-loop near
/// capacity, 400 Mb/s of FTP cross traffic.

#include "bench/bench_util.hpp"

using namespace dclue;

namespace {
constexpr double kTxnsPerBt = 2.0 + (0.05 + 0.05 + 0.04) / 0.43;

core::ClusterConfig scenario() {
  core::ClusterConfig cfg = bench::base_config();
  cfg.nodes = 8;
  cfg.max_servers_per_lata = 4;
  cfg.affinity = 0.8;
  return cfg;
}
}  // namespace

int main(int argc, char** argv) {
  bench::Scenario sweep("ext_qos_future", "Extension",
                        "QoS schemes beyond the paper (its future work)",
                        "scheme_index", argc, argv);
  core::SeriesTable table(
      "QoS scheme vs DBMS throughput and FTP service (FTP 400 Mb/s offered)");
  table.add_column("scheme");
  table.add_column("tpmC_k");
  table.add_column("dbms_drop%");
  table.add_column("ftp_Mbps");
  table.add_column("ctl_dly_ms");

  core::RunReport cap = core::run_experiment(scenario());
  const double rate = 0.92 * (cap.txn_rate / 8.0) / kTxnsPerBt;
  const double ftp_mbps = bench::fast_mode() ? 100.0 : 400.0;

  std::vector<const char*> names;
  auto add_scheme = [&](const char* name, auto configure) {
    core::ClusterConfig cfg = scenario();
    cfg.open_loop_bt_rate_per_node = rate;
    configure(cfg);
    sweep.add(static_cast<double>(names.size()), cfg);
    names.push_back(name);
  };

  add_scheme("no cross traffic (reference)", [&](core::ClusterConfig&) {});
  add_scheme("FTP best-effort (paper)", [&](core::ClusterConfig& cfg) {
    cfg.ftp.offered_load_mbps = ftp_mbps;
  });
  add_scheme("FTP @ AF21 strict priority (paper)", [&](core::ClusterConfig& cfg) {
    cfg.ftp.offered_load_mbps = ftp_mbps;
    cfg.ftp.high_priority = true;
  });
  add_scheme("WFQ 4:1 (DBMS:FTP)", [&](core::ClusterConfig& cfg) {
    cfg.ftp.offered_load_mbps = ftp_mbps;
    cfg.ftp.high_priority = true;
    cfg.qos.scheduler = net::QueueScheduler::kWfq;
  });
  add_scheme("priority + AF policed to 100 Mb/s", [&](core::ClusterConfig& cfg) {
    cfg.ftp.offered_load_mbps = ftp_mbps;
    cfg.ftp.high_priority = true;
    cfg.qos.af_police_mbps = 100.0;
  });
  add_scheme("priority + WRED/ECN", [&](core::ClusterConfig& cfg) {
    cfg.ftp.offered_load_mbps = ftp_mbps;
    cfg.ftp.high_priority = true;
    cfg.qos.wred = true;
    cfg.ecn_marking = true;
  });
  sweep.run();

  const double baseline = sweep[0].tpmc;
  for (std::size_t id = 0; id < sweep.size(); ++id) {
    const core::RunReport& r = sweep[id];
    std::printf("  [%zu] %s\n", id, names[id]);
    table.add_row({static_cast<double>(id), r.tpmc / 1000.0,
                   (1.0 - r.tpmc / baseline) * 100.0, r.ftp_carried_mbps,
                   r.control_msg_delay_ms});
  }
  table.print();
  std::printf(
      "\nReading: WFQ and policing bound the priority class's damage while\n"
      "still carrying FTP; strict priority alone lets the interfering class\n"
      "delay critical IPC control messages (the paper's finding), and\n"
      "all-best-effort splits the pain roughly evenly.\n");
  return 0;
}
