/// Ablation: per-table sub-page (lock granularity) tuning. The paper (§2.3):
/// "we had to tune the size of subpage for each table separately. In
/// particular, the district table is accessed very frequently and needs a
/// small subpage size." Sweeping the district sub-page from row-granular to
/// page-granular shows the contention cost of coarse locks on the hottest
/// rows in the schema.

#include "bench/bench_util.hpp"

using namespace dclue;

int main(int argc, char** argv) {
  bench::Scenario sweep("ablation_subpage", "Ablation",
                        "district sub-page (lock granularity) size",
                        "subpage_bytes", argc, argv);
  core::SeriesTable table("district sub-page bytes vs throughput & contention");
  table.add_column("subpage_B");
  table.add_column("tpmC_k");
  table.add_column("lockwait/txn");
  table.add_column("lockfail/txn");
  table.add_column("wait_ms");
  const std::vector<double> sizes = bench::fast_mode()
                                        ? std::vector<double>{128, 8192}
                                        : std::vector<double>{96, 128, 512, 2048, 8192};
  for (double bytes : sizes) {
    core::ClusterConfig cfg = bench::base_config();
    cfg.nodes = 4;
    cfg.affinity = 0.5;  // cross-node traffic stretches lock hold times
    cfg.district_subpage_bytes = static_cast<sim::Bytes>(bytes);
    sweep.add(bytes, cfg);
  }
  sweep.run();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const core::RunReport& r = sweep[i];
    table.add_row({sizes[i], r.tpmc / 1000.0, r.lock_waits_per_txn,
                   r.lock_failures_per_txn, r.lock_wait_time_ms});
  }
  table.print();
  return 0;
}
