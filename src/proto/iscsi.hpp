#pragma once

/// \file iscsi.hpp
/// iSCSI over the unified fabric. Each server node runs a target exporting
/// its local disks; remote nodes access them through initiators over a
/// dedicated TCP connection per node pair (the paper keeps IPC and iSCSI on
/// separate connections "to allow QoS studies that treat IPC and storage
/// separately"). Software iSCSI pays the paper's dominant cost — CRC digest
/// calculation per byte — while the HW mode models full offload.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "cpu/params.hpp"
#include "net/tcp.hpp"
#include "proto/channel.hpp"
#include "sim/sync.hpp"
#include "storage/disk_array.hpp"

namespace dclue::proto {

inline constexpr sim::Bytes kIscsiHeaderBytes = 48;
inline constexpr sim::Bytes kIscsiMaxDataSegment = 8192;

enum IscsiMsgType : std::uint32_t {
  kIscsiCmd = 100,
  kIscsiDataIn,
  kIscsiDataOut,
  kIscsiStatus,
};

struct IscsiCostModel {
  sim::PathLength per_command = 0.0;  ///< build/parse a command or status PDU
  sim::PathLength per_pdu = 0.0;      ///< per data PDU handling
  double per_byte_digest = 0.0;       ///< SW CRC32C over data segments

  static IscsiCostModel hardware() { return {400.0, 300.0, 0.0}; }
  static IscsiCostModel software() { return {3'000.0, 1'500.0, 0.5}; }
};

struct IscsiCmdPayload {
  std::uint64_t tag = 0;
  std::int64_t block = 0;
  sim::Bytes bytes = 0;
  bool is_write = false;
};
struct IscsiDataPayload {
  std::uint64_t tag = 0;
  sim::Bytes bytes = 0;
  bool final_pdu = false;
};
struct IscsiStatusPayload {
  std::uint64_t tag = 0;
};

/// Target side: serves commands arriving on a channel against a local disk.
class IscsiTarget {
 public:
  IscsiTarget(sim::Engine& engine, storage::BlockDevice& disk, net::CpuCharge charge,
              IscsiCostModel costs)
      : engine_(engine), disk_(disk), charge_(std::move(charge)), costs_(costs) {}

  /// Start serving a session channel (one per remote initiator).
  void serve(std::shared_ptr<MsgChannel> channel) { serve_loop(std::move(channel)); }

  [[nodiscard]] std::uint64_t commands_served() const { return served_; }
  /// Disk ops re-issued after an injected IO error (each retry pays full
  /// mechanical service time, so storage faults surface as latency).
  [[nodiscard]] std::uint64_t io_retries() const { return retries_; }

 private:
  sim::DetachedTask serve_loop(std::shared_ptr<MsgChannel> channel);
  sim::DetachedTask handle_command(std::shared_ptr<MsgChannel> channel,
                                   IscsiCmdPayload cmd);

  struct WriteAssembly {
    sim::Bytes received = 0;
    IscsiCmdPayload cmd;
  };

  sim::Engine& engine_;
  storage::BlockDevice& disk_;
  net::CpuCharge charge_;
  IscsiCostModel costs_;
  std::unordered_map<std::uint64_t, WriteAssembly> writes_;
  std::uint64_t served_ = 0;
  std::uint64_t retries_ = 0;
};

/// Initiator side: awaitable remote block IO over a session channel.
class IscsiInitiator {
 public:
  IscsiInitiator(sim::Engine& engine, net::CpuCharge charge, IscsiCostModel costs)
      : engine_(engine), charge_(std::move(charge)), costs_(costs) {}

  /// Bind to the session channel toward one target and start the reply pump.
  void attach(std::shared_ptr<MsgChannel> channel);

  /// Awaitable remote IO; false means the session channel died underneath
  /// the op (callers fall back to local IO or abort the transaction).
  sim::Task<bool> read(std::int64_t block, sim::Bytes bytes) {
    return io(block, bytes, false);
  }
  sim::Task<bool> write(std::int64_t block, sim::Bytes bytes) {
    return io(block, bytes, true);
  }

  [[nodiscard]] std::uint64_t ops_completed() const { return completed_; }
  [[nodiscard]] std::size_t ops_pending() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t failed_ops() const { return failed_ops_; }

 private:
  struct Pending {
    std::unique_ptr<sim::Gate> done;
    bool failed = false;
  };

  sim::Task<bool> io(std::int64_t block, sim::Bytes bytes, bool is_write);
  sim::DetachedTask reply_pump();

  sim::Engine& engine_;
  net::CpuCharge charge_;
  IscsiCostModel costs_;
  std::shared_ptr<MsgChannel> channel_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_tag_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ops_ = 0;
  bool channel_failed_ = false;  ///< session channel saw reset/EOF
};

}  // namespace dclue::proto
