#include "proto/ftp.hpp"

namespace dclue::proto {

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

FtpServer::FtpServer(sim::Engine& engine, net::TcpStack& stack,
                     std::uint16_t port)
    : engine_(engine) {
  accept_loop(stack.listen(port));
}

sim::DetachedTask FtpServer::accept_loop(net::TcpListener& listener) {
  for (;;) {
    auto conn = co_await listener.accept();
    session(std::move(conn));
  }
}

sim::DetachedTask FtpServer::session(std::shared_ptr<net::TcpConnection> conn) {
  auto channel = std::make_shared<MsgChannel>(conn);
  Message req = co_await channel->inbox().receive();
  if (req.type >= kChannelClosed) co_return;
  auto payload = std::static_pointer_cast<FtpRequestPayload>(req.payload);
  if (req.type == kFtpGet) {
    Message data;
    data.type = kFtpData;
    data.bytes = payload->file_bytes;
    channel->send(std::move(data));
    co_await conn->wait_all_acked();
  } else if (req.type == kFtpPut) {
    Message data = co_await channel->inbox().receive();
    if (data.type >= kChannelClosed) co_return;
    Message ack;
    ack.type = kFtpAck;
    ack.bytes = 64;
    channel->send(std::move(ack));
    co_await conn->wait_all_acked();
  }
  if (conn->state() != net::TcpConnection::State::kClosed) conn->close();
  ++served_;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

FtpClient::FtpClient(sim::Engine& engine, net::TcpStack& stack,
                     std::vector<net::Address> servers, FtpTrafficParams params,
                     sim::Rng rng)
    : engine_(engine),
      stack_(stack),
      servers_(std::move(servers)),
      params_(params),
      rng_(rng) {}

void FtpClient::start() {
  if (params_.offered_load_bps > 0.0 && !servers_.empty()) arrival_loop();
}

sim::DetachedTask FtpClient::arrival_loop() {
  const double mean_interarrival =
      static_cast<double>(params_.mean_file_bytes()) * 8.0 /
      params_.offered_load_bps;
  for (;;) {
    co_await sim::delay_for(engine_, rng_.exponential(mean_interarrival));
    transfer();
  }
}

sim::DetachedTask FtpClient::transfer() {
  const sim::Bytes file =
      rng_.chance(params_.small_file_fraction)
          ? params_.small_file_bytes
          : rng_.uniform_int(params_.data_file_min, params_.data_file_max);
  const bool is_get = rng_.chance(params_.get_fraction);
  const net::Address server =
      servers_[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(servers_.size()) - 1))];
  const sim::Time started = engine_.now();

  auto conn = stack_.connect(server, params_.server_port, params_.dscp);
  auto channel = std::make_shared<MsgChannel>(conn);
  co_await conn->established().wait();
  if (conn->state() == net::TcpConnection::State::kClosed) {
    aborted_.record();
    co_return;
  }

  Message req;
  req.type = is_get ? kFtpGet : kFtpPut;
  req.bytes = 64;
  req.payload = std::make_shared<FtpRequestPayload>(FtpRequestPayload{file});
  channel->send(std::move(req));

  if (is_get) {
    Message data = co_await channel->inbox().receive();
    if (data.type >= kChannelClosed) {
      aborted_.record();
      co_return;
    }
    bytes_carried_.record(static_cast<std::uint64_t>(data.bytes));
  } else {
    Message data;
    data.type = kFtpData;
    data.bytes = file;
    channel->send(std::move(data));
    Message ack = co_await channel->inbox().receive();
    if (ack.type >= kChannelClosed) {
      aborted_.record();
      co_return;
    }
    bytes_carried_.record(static_cast<std::uint64_t>(file));
  }
  conn->close();
  completed_.record();
  transfer_time_.record(engine_.now() - started);
}

}  // namespace dclue::proto
