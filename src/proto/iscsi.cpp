#include "proto/iscsi.hpp"

namespace dclue::proto {
namespace {

/// Split a transfer into data PDUs and send them with per-PDU costs.
sim::Task<void> send_data_pdus(MsgChannel& channel, const net::CpuCharge& charge,
                               const IscsiCostModel& costs, std::uint64_t tag,
                               sim::Bytes total, std::uint32_t type) {
  sim::Bytes remaining = total;
  while (remaining > 0) {
    const sim::Bytes chunk = std::min(remaining, kIscsiMaxDataSegment);
    remaining -= chunk;
    co_await charge(costs.per_pdu + static_cast<double>(chunk) * costs.per_byte_digest,
                    cpu::JobClass::kKernel);
    Message msg;
    msg.type = type;
    msg.bytes = chunk + kIscsiHeaderBytes;
    msg.payload = std::make_shared<IscsiDataPayload>(
        IscsiDataPayload{tag, chunk, remaining == 0});
    channel.send(std::move(msg));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Target
// ---------------------------------------------------------------------------

sim::DetachedTask IscsiTarget::serve_loop(std::shared_ptr<MsgChannel> channel) {
  for (;;) {
    Message msg = co_await channel->inbox().receive();
    if (msg.type >= kChannelClosed) co_return;  // session died; stop serving
    switch (msg.type) {
      case kIscsiCmd: {
        auto cmd = *std::static_pointer_cast<IscsiCmdPayload>(msg.payload);
        co_await charge_(costs_.per_command, cpu::JobClass::kKernel);
        if (cmd.is_write) {
          writes_[cmd.tag] = WriteAssembly{0, cmd};
        } else {
          handle_command(channel, cmd);
        }
        break;
      }
      case kIscsiDataOut: {
        auto data = *std::static_pointer_cast<IscsiDataPayload>(msg.payload);
        co_await charge_(
            costs_.per_pdu + static_cast<double>(data.bytes) * costs_.per_byte_digest,
            cpu::JobClass::kKernel);
        auto it = writes_.find(data.tag);
        if (it == writes_.end()) break;
        it->second.received += data.bytes;
        if (it->second.received >= it->second.cmd.bytes) {
          IscsiCmdPayload cmd = it->second.cmd;
          writes_.erase(it);
          handle_command(channel, cmd);
        }
        break;
      }
      default:
        break;
    }
  }
}

sim::DetachedTask IscsiTarget::handle_command(std::shared_ptr<MsgChannel> channel,
                                              IscsiCmdPayload cmd) {
  // An injected IO error costs a full mechanical service round; the target
  // retries a bounded number of times, so storage faults surface to the
  // initiator purely as latency (the model carries no payload bytes — real
  // data lives in the shared in-memory database).
  constexpr int kMaxIoAttempts = 3;
  bool ok = false;
  for (int attempt = 0; attempt < kMaxIoAttempts && !ok; ++attempt) {
    if (attempt > 0) ++retries_;
    ok = cmd.is_write ? co_await disk_.write(cmd.block, cmd.bytes)
                      : co_await disk_.read(cmd.block, cmd.bytes);
  }
  if (!cmd.is_write) {
    co_await send_data_pdus(*channel, charge_, costs_, cmd.tag, cmd.bytes,
                            kIscsiDataIn);
  }
  co_await charge_(costs_.per_command, cpu::JobClass::kKernel);
  Message status;
  status.type = kIscsiStatus;
  status.bytes = kIscsiHeaderBytes;
  status.payload = std::make_shared<IscsiStatusPayload>(IscsiStatusPayload{cmd.tag});
  channel->send(std::move(status));
  ++served_;
}

// ---------------------------------------------------------------------------
// Initiator
// ---------------------------------------------------------------------------

void IscsiInitiator::attach(std::shared_ptr<MsgChannel> channel) {
  channel_ = std::move(channel);
  channel_failed_ = false;
  reply_pump();
}

sim::Task<bool> IscsiInitiator::io(std::int64_t block, sim::Bytes bytes,
                                   bool is_write) {
  if (channel_failed_) {
    ++failed_ops_;
    co_return false;
  }
  const std::uint64_t tag = next_tag_++;
  auto gate = std::make_unique<sim::Gate>(engine_);
  sim::Gate* gate_ptr = gate.get();
  pending_[tag] = Pending{std::move(gate)};

  co_await charge_(costs_.per_command, cpu::JobClass::kKernel);
  Message cmd;
  cmd.type = kIscsiCmd;
  cmd.bytes = kIscsiHeaderBytes;
  cmd.payload = std::make_shared<IscsiCmdPayload>(
      IscsiCmdPayload{tag, block, bytes, is_write});
  channel_->send(std::move(cmd));
  if (is_write) {
    co_await send_data_pdus(*channel_, charge_, costs_, tag, bytes, kIscsiDataOut);
  }
  co_await gate_ptr->wait();
  const auto it = pending_.find(tag);
  const bool ok = it == pending_.end() || !it->second.failed;
  if (it != pending_.end()) pending_.erase(it);
  if (ok) {
    ++completed_;
  } else {
    ++failed_ops_;
  }
  co_return ok;
}

sim::DetachedTask IscsiInitiator::reply_pump() {
  auto channel = channel_;
  for (;;) {
    Message msg = co_await channel->inbox().receive();
    if (msg.type >= kChannelClosed) {
      // Session channel reset/EOF: fail every in-flight op so waiters
      // resume instead of hanging on a dead connection.
      channel_failed_ = true;
      for (auto& [tag, p] : pending_) {
        p.failed = true;
        p.done->open();
      }
      co_return;
    }
    switch (msg.type) {
      case kIscsiDataIn: {
        auto data = *std::static_pointer_cast<IscsiDataPayload>(msg.payload);
        co_await charge_(
            costs_.per_pdu + static_cast<double>(data.bytes) * costs_.per_byte_digest,
            cpu::JobClass::kKernel);
        break;
      }
      case kIscsiStatus: {
        auto status = *std::static_pointer_cast<IscsiStatusPayload>(msg.payload);
        co_await charge_(costs_.per_command, cpu::JobClass::kKernel);
        auto it = pending_.find(status.tag);
        if (it != pending_.end()) it->second.done->open();
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace dclue::proto
