#include "proto/iscsi.hpp"

namespace dclue::proto {
namespace {

/// Split a transfer into data PDUs and send them with per-PDU costs.
sim::Task<void> send_data_pdus(MsgChannel& channel, const net::CpuCharge& charge,
                               const IscsiCostModel& costs, std::uint64_t tag,
                               sim::Bytes total, std::uint32_t type) {
  sim::Bytes remaining = total;
  while (remaining > 0) {
    const sim::Bytes chunk = std::min(remaining, kIscsiMaxDataSegment);
    remaining -= chunk;
    co_await charge(costs.per_pdu + static_cast<double>(chunk) * costs.per_byte_digest,
                    cpu::JobClass::kKernel);
    Message msg;
    msg.type = type;
    msg.bytes = chunk + kIscsiHeaderBytes;
    msg.payload = std::make_shared<IscsiDataPayload>(
        IscsiDataPayload{tag, chunk, remaining == 0});
    channel.send(std::move(msg));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Target
// ---------------------------------------------------------------------------

sim::DetachedTask IscsiTarget::serve_loop(std::shared_ptr<MsgChannel> channel) {
  for (;;) {
    Message msg = co_await channel->inbox().receive();
    switch (msg.type) {
      case kIscsiCmd: {
        auto cmd = *std::static_pointer_cast<IscsiCmdPayload>(msg.payload);
        co_await charge_(costs_.per_command, cpu::JobClass::kKernel);
        if (cmd.is_write) {
          writes_[cmd.tag] = WriteAssembly{0, cmd};
        } else {
          handle_command(channel, cmd);
        }
        break;
      }
      case kIscsiDataOut: {
        auto data = *std::static_pointer_cast<IscsiDataPayload>(msg.payload);
        co_await charge_(
            costs_.per_pdu + static_cast<double>(data.bytes) * costs_.per_byte_digest,
            cpu::JobClass::kKernel);
        auto it = writes_.find(data.tag);
        if (it == writes_.end()) break;
        it->second.received += data.bytes;
        if (it->second.received >= it->second.cmd.bytes) {
          IscsiCmdPayload cmd = it->second.cmd;
          writes_.erase(it);
          handle_command(channel, cmd);
        }
        break;
      }
      default:
        break;
    }
  }
}

sim::DetachedTask IscsiTarget::handle_command(std::shared_ptr<MsgChannel> channel,
                                              IscsiCmdPayload cmd) {
  if (cmd.is_write) {
    co_await disk_.write(cmd.block, cmd.bytes);
  } else {
    co_await disk_.read(cmd.block, cmd.bytes);
    co_await send_data_pdus(*channel, charge_, costs_, cmd.tag, cmd.bytes,
                            kIscsiDataIn);
  }
  co_await charge_(costs_.per_command, cpu::JobClass::kKernel);
  Message status;
  status.type = kIscsiStatus;
  status.bytes = kIscsiHeaderBytes;
  status.payload = std::make_shared<IscsiStatusPayload>(IscsiStatusPayload{cmd.tag});
  channel->send(std::move(status));
  ++served_;
}

// ---------------------------------------------------------------------------
// Initiator
// ---------------------------------------------------------------------------

void IscsiInitiator::attach(std::shared_ptr<MsgChannel> channel) {
  channel_ = std::move(channel);
  reply_pump();
}

sim::Task<void> IscsiInitiator::io(std::int64_t block, sim::Bytes bytes,
                                   bool is_write) {
  const std::uint64_t tag = next_tag_++;
  auto gate = std::make_unique<sim::Gate>(engine_);
  sim::Gate* gate_ptr = gate.get();
  pending_[tag] = Pending{std::move(gate)};

  co_await charge_(costs_.per_command, cpu::JobClass::kKernel);
  Message cmd;
  cmd.type = kIscsiCmd;
  cmd.bytes = kIscsiHeaderBytes;
  cmd.payload = std::make_shared<IscsiCmdPayload>(
      IscsiCmdPayload{tag, block, bytes, is_write});
  channel_->send(std::move(cmd));
  if (is_write) {
    co_await send_data_pdus(*channel_, charge_, costs_, tag, bytes, kIscsiDataOut);
  }
  co_await gate_ptr->wait();
  pending_.erase(tag);
  ++completed_;
}

sim::DetachedTask IscsiInitiator::reply_pump() {
  auto channel = channel_;
  for (;;) {
    Message msg = co_await channel->inbox().receive();
    switch (msg.type) {
      case kIscsiDataIn: {
        auto data = *std::static_pointer_cast<IscsiDataPayload>(msg.payload);
        co_await charge_(
            costs_.per_pdu + static_cast<double>(data.bytes) * costs_.per_byte_digest,
            cpu::JobClass::kKernel);
        break;
      }
      case kIscsiStatus: {
        auto status = *std::static_pointer_cast<IscsiStatusPayload>(msg.payload);
        co_await charge_(costs_.per_command, cpu::JobClass::kKernel);
        auto it = pending_.find(status.tag);
        if (it != pending_.end()) it->second.done->open();
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace dclue::proto
