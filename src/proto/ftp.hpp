#pragma once

/// \file ftp.hpp
/// FTP-style cross traffic for the QoS experiments (Figs 14-16). Matches the
/// paper's setup: 50% GETs / 50% PUTs, a fresh TCP connection per transfer
/// (which makes the traffic "stubborn" relative to the DBMS's static
/// connections), and file sizes drawn to resemble DBMS transfer sizes —
/// a fraction of ~250 B control-like files, the rest 8-64 KB data-like.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/tcp.hpp"
#include "proto/channel.hpp"
#include "sim/rng.hpp"
#include "sim/obs/registry.hpp"
#include "sim/obs/stats.hpp"

namespace dclue::proto {

enum FtpMsgType : std::uint32_t {
  kFtpGet = 200,
  kFtpPut,
  kFtpData,
  kFtpAck,
};

struct FtpRequestPayload {
  sim::Bytes file_bytes = 0;
};

/// Serves GET/PUT requests; one instance per "extra server" host.
class FtpServer {
 public:
  FtpServer(sim::Engine& engine, net::TcpStack& stack, std::uint16_t port);

  [[nodiscard]] std::uint64_t transfers_served() const { return served_; }

 private:
  sim::DetachedTask accept_loop(net::TcpListener& listener);
  sim::DetachedTask session(std::shared_ptr<net::TcpConnection> conn);

  sim::Engine& engine_;
  std::uint64_t served_ = 0;
};

struct FtpTrafficParams {
  double offered_load_bps = 0.0;
  std::uint16_t server_port = 21;
  net::Dscp dscp = net::Dscp::kBestEffort;
  double get_fraction = 0.5;
  double small_file_fraction = 0.3;
  sim::Bytes small_file_bytes = 250;
  sim::Bytes data_file_min = sim::kilobytes(8);
  sim::Bytes data_file_max = sim::kilobytes(64);

  [[nodiscard]] sim::Bytes mean_file_bytes() const {
    return static_cast<sim::Bytes>(
        small_file_fraction * static_cast<double>(small_file_bytes) +
        (1.0 - small_file_fraction) *
            static_cast<double>(data_file_min + data_file_max) / 2.0);
  }
};

/// Generates Poisson transfer arrivals from one "extra client" host toward a
/// set of FTP servers, at a configured offered load.
class FtpClient {
 public:
  FtpClient(sim::Engine& engine, net::TcpStack& stack,
            std::vector<net::Address> servers, FtpTrafficParams params,
            sim::Rng rng);

  void start();

  [[nodiscard]] std::uint64_t transfers_completed() const {
    return completed_.count();
  }
  [[nodiscard]] std::uint64_t transfers_aborted() const {
    return aborted_.count();
  }
  [[nodiscard]] sim::Bytes bytes_carried() const {
    return static_cast<sim::Bytes>(bytes_carried_.count());
  }
  [[nodiscard]] const obs::Tally& transfer_time() const { return transfer_time_; }
  void reset_stats() {
    completed_.reset();
    aborted_.reset();
    bytes_carried_.reset();
    transfer_time_.reset();
  }

  /// Bind this client's collectors under \p prefix ("ftp.client<i>.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    reg.bind(prefix + "completed", &completed_);
    reg.bind(prefix + "aborted", &aborted_);
    reg.bind(prefix + "bytes_carried", &bytes_carried_);
    reg.bind(prefix + "transfer_time", &transfer_time_);
  }

 private:
  sim::DetachedTask arrival_loop();
  sim::DetachedTask transfer();

  sim::Engine& engine_;
  net::TcpStack& stack_;
  std::vector<net::Address> servers_;
  FtpTrafficParams params_;
  sim::Rng rng_;
  obs::Counter completed_;
  obs::Counter aborted_;
  obs::Counter bytes_carried_;
  obs::Tally transfer_time_;
};

}  // namespace dclue::proto
