#pragma once

/// \file channel.hpp
/// Message framing over a TCP byte stream. The fabric moves byte counts;
/// message *meaning* (typed payloads) rides a simulator side-band that is
/// paired per connection — legitimate because TCP delivers the byte stream
/// reliably and in order, so the Nth framed message on the wire is always
/// the Nth message handed to the peer.

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "net/tcp.hpp"
#include "sim/sync.hpp"

namespace dclue::proto {

/// Sentinel message type delivered to a channel's inbox when its underlying
/// connection resets; consumers must check for it to avoid waiting forever.
inline constexpr std::uint32_t kChannelReset = 0xffffffff;
/// Sentinel delivered when the peer cleanly closed (FIN received).
inline constexpr std::uint32_t kChannelClosed = 0xfffffffe;

struct Message {
  std::uint32_t type = 0;
  sim::Bytes bytes = 0;             ///< on-wire payload size
  std::shared_ptr<void> payload;    ///< typed content for the receiver
  sim::Time sent_at = 0.0;          ///< for end-to-end delay accounting
};

/// One endpoint of a message channel. Construct one on each side of an
/// established TCP connection; endpoints find each other by connection id.
class MsgChannel {
 public:
  explicit MsgChannel(std::shared_ptr<net::TcpConnection> conn);
  ~MsgChannel();
  MsgChannel(const MsgChannel&) = delete;
  MsgChannel& operator=(const MsgChannel&) = delete;

  /// Queue \p msg for transmission; bytes flow through TCP with everything
  /// that implies (cwnd, loss, priority queuing of the connection's DSCP).
  void send(Message msg);

  /// Received, fully-reassembled messages.
  [[nodiscard]] sim::Mailbox<Message>& inbox() { return *inbox_; }

  [[nodiscard]] net::TcpConnection& connection() { return *conn_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }

 private:
  void on_bytes(sim::Bytes n);

  std::shared_ptr<net::TcpConnection> conn_;
  std::shared_ptr<sim::Mailbox<Message>> inbox_;
  MsgChannel* peer_ = nullptr;
  std::deque<Message> in_flight_;    ///< messages the peer has framed to us
  std::deque<Message> out_pending_;  ///< framed before the peer endpoint existed
  sim::Bytes rx_pending_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;

  /// Rendezvous: connection ids are unique within one engine, so endpoints
  /// of the same connection pair up at construction time on the engine's
  /// rendezvous board (engine-scoped so concurrent sweep points never see
  /// each other's channels).
  std::unordered_map<std::uint64_t, void*>& rendezvous();
};

}  // namespace dclue::proto
