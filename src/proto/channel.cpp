#include "proto/channel.hpp"

#include <cassert>

namespace dclue::proto {

std::unordered_map<std::uint64_t, void*>& MsgChannel::rendezvous() {
  return conn_->stack_engine().rendezvous_board();
}

MsgChannel::MsgChannel(std::shared_ptr<net::TcpConnection> conn)
    : conn_(std::move(conn)) {
  // The mailbox needs an engine; borrow it from the connection's stack via
  // the established gate — but Gate does not expose it, so thread the engine
  // through the TcpConnection's stack instead.
  inbox_ = std::make_shared<sim::Mailbox<Message>>(conn_->stack_engine());
  auto [it, inserted] = rendezvous().try_emplace(conn_->id(), this);
  if (!inserted) {
    peer_ = static_cast<MsgChannel*>(it->second);
    peer_->peer_ = this;
    rendezvous().erase(conn_->id());
    // Messages either side framed before pairing become in-flight now (they
    // may already have arrived as bytes, so reprocess the byte counter).
    in_flight_ = std::move(peer_->out_pending_);
    peer_->out_pending_.clear();
    peer_->in_flight_ = std::move(out_pending_);
    out_pending_.clear();
    on_bytes(0);
    peer_->on_bytes(0);
  }
  conn_->set_rx_handler([this](sim::Bytes n) { on_bytes(n); });
  // A reset unblocks any coroutine waiting on the inbox. The weak_ptr keeps
  // a destroyed channel from being touched by a late reset.
  conn_->add_reset_handler(
      [weak = std::weak_ptr<sim::Mailbox<Message>>(inbox_)] {
        if (auto inbox = weak.lock()) {
          inbox->push(Message{kChannelReset, 0, nullptr, 0.0});
        }
      });
  conn_->set_eof_handler([weak = std::weak_ptr<sim::Mailbox<Message>>(inbox_)] {
    if (auto inbox = weak.lock()) {
      inbox->push(Message{kChannelClosed, 0, nullptr, 0.0});
    }
  });
}

MsgChannel::~MsgChannel() {
  rendezvous().erase(conn_->id());
  if (peer_) peer_->peer_ = nullptr;
  conn_->set_rx_handler({});
}

void MsgChannel::send(Message msg) {
  assert(msg.bytes > 0);
  msg.sent_at = conn_->stack_engine().now();
  ++sent_;
  // Frame on the peer's reassembly queue (or hold until the peer endpoint
  // constructs, for sends racing the accept path), then push bytes into TCP.
  if (peer_) {
    peer_->in_flight_.push_back(msg);
  } else {
    out_pending_.push_back(msg);
  }
  conn_->send(msg.bytes);
}

void MsgChannel::on_bytes(sim::Bytes n) {
  if (n == 0 && in_flight_.empty()) return;
  rx_pending_ += n;
  while (!in_flight_.empty() && rx_pending_ >= in_flight_.front().bytes) {
    rx_pending_ -= in_flight_.front().bytes;
    ++received_;
    inbox_->push(std::move(in_flight_.front()));
    in_flight_.pop_front();
  }
}

}  // namespace dclue::proto
