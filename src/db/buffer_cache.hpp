#pragma once

/// \file buffer_cache.hpp
/// Per-node buffer cache. The database content lives once in memory (see
/// tpcc_schema.hpp); what the cache tracks is *residency and coherence
/// state* of pages at each node — exactly DCLUE's approach ("since the
/// entire database is sitting in the main memory, buffer cache operations
/// merely change status of the pages in question"). Hit ratios are an
/// output of this machinery, never an input.

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "db/table.hpp"
#include "sim/obs/stats.hpp"

namespace dclue::db {

/// Coherence state of a locally cached page (MESI-like but directory-based;
/// exclusive = this node may produce new versions of the page's rows).
enum class PageMode : std::uint8_t { kShared = 0, kExclusive = 1 };

class BufferCache {
 public:
  explicit BufferCache(std::size_t capacity_pages)
      : capacity_(capacity_pages) {}

  /// Is \p page resident with at least \p mode?
  [[nodiscard]] bool contains(PageId page, PageMode mode) const {
    auto it = map_.find(page);
    if (it == map_.end()) return false;
    return mode == PageMode::kShared || it->second.mode == PageMode::kExclusive;
  }
  [[nodiscard]] bool resident(PageId page) const { return map_.contains(page); }

  /// Record a fetched page; LRU-evicts to make room. Evicted (unpinned)
  /// pages are returned so the coherence layer can notify their directory.
  std::vector<PageId> insert(PageId page, PageMode mode);

  /// Promote a resident page to exclusive (after coherence permission).
  void upgrade(PageId page) {
    auto it = map_.find(page);
    if (it != map_.end()) it->second.mode = PageMode::kExclusive;
  }

  /// Invalidate (remote node took exclusive ownership).
  bool invalidate(PageId page) {
    auto it = map_.find(page);
    if (it == map_.end()) return false;
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    return true;
  }

  /// Invalidate every resident page matching \p pred (crash cleanup: drop
  /// pages whose directory home died — the restarted directory is empty, so
  /// stale residency must not outlive it). Returns pages dropped.
  template <typename Pred>
  std::size_t invalidate_if(Pred pred) {
    std::size_t dropped = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->first)) {
        lru_.erase(it->second.lru_it);
        it = map_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  /// Mark recently used.
  void touch(PageId page) {
    auto it = map_.find(page);
    if (it == map_.end()) return;
    lru_.splice(lru_.end(), lru_, it->second.lru_it);
  }

  void pin(PageId page) {
    auto it = map_.find(page);
    if (it != map_.end()) ++it->second.pins;
  }
  void unpin(PageId page) {
    auto it = map_.find(page);
    if (it != map_.end() && it->second.pins > 0) --it->second.pins;
  }

  /// Give up \p n unpinned pages to the version overflow area (the paper:
  /// "unpinned pages from the buffer cache are stolen to replenish it").
  /// Returns the stolen pages; capacity shrinks accordingly.
  std::vector<PageId> steal_for_versions(std::size_t n);

  /// Return previously stolen capacity (version GC freed space).
  void restore_capacity(std::size_t n) { capacity_ += n; }

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    PageMode mode;
    int pins = 0;
    std::list<PageId>::iterator lru_it;
  };

  /// Pop the least recently used unpinned page; returns 0 when none.
  PageId evict_one();

  std::size_t capacity_;
  std::unordered_map<PageId, Entry> map_;
  std::list<PageId> lru_;  ///< front = coldest
};

inline std::vector<PageId> BufferCache::insert(PageId page, PageMode mode) {
  std::vector<PageId> evicted;
  auto it = map_.find(page);
  if (it != map_.end()) {
    if (mode == PageMode::kExclusive) it->second.mode = PageMode::kExclusive;
    touch(page);
    return evicted;
  }
  while (map_.size() >= capacity_) {
    PageId victim = evict_one();
    if (victim == 0) break;  // everything pinned; allow transient overcommit
    evicted.push_back(victim);
  }
  lru_.push_back(page);
  map_[page] = Entry{mode, 0, std::prev(lru_.end())};
  return evicted;
}

inline PageId BufferCache::evict_one() {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto mit = map_.find(*it);
    if (mit->second.pins == 0) {
      PageId victim = *it;
      lru_.erase(it);
      map_.erase(mit);
      return victim;
    }
  }
  return 0;
}

inline std::vector<PageId> BufferCache::steal_for_versions(std::size_t n) {
  std::vector<PageId> stolen;
  while (stolen.size() < n && capacity_ > 1) {
    PageId victim = evict_one();
    if (victim == 0) break;
    --capacity_;
    stolen.push_back(victim);
  }
  return stolen;
}

}  // namespace dclue::db
