#pragma once

/// \file buffer_cache.hpp
/// Per-node buffer cache. The database content lives once in memory (see
/// tpcc_schema.hpp); what the cache tracks is *residency and coherence
/// state* of pages at each node — exactly DCLUE's approach ("since the
/// entire database is sitting in the main memory, buffer cache operations
/// merely change status of the pages in question"). Hit ratios are an
/// output of this machinery, never an input.
///
/// Layout (see DESIGN.md §"DB-tier internals"): entries live in one
/// contiguous slab threaded by two intrusive index lists — the resident
/// recency list (front = coldest) and its unpinned sublist, kept in the same
/// relative order. Eviction pops the unpinned head in O(1) instead of
/// rescanning pinned-cold pages at the recency front; `lru_evict_scans`
/// counts entries examined per eviction (always 1 now) so a regression back
/// to scanning shows up in the registry. The unpinned sublist only starts
/// being maintained at the first pin() ever (built once from the recency
/// order, then kept incrementally): until then it is the recency list by
/// definition, and touch — the per-access hot path — updates a single list.
/// The page→slab index map is an open-addressing sim::FlatMap, so touch /
/// insert-hit is one probe and a few index writes, no allocation.

#include <cstdint>
#include <vector>

#include "db/table.hpp"
#include "sim/flat_map.hpp"
#include "sim/obs/stats.hpp"
#include "sim/small_vec.hpp"

namespace dclue::db {

/// Coherence state of a locally cached page (MESI-like but directory-based;
/// exclusive = this node may produce new versions of the page's rows).
enum class PageMode : std::uint8_t { kShared = 0, kExclusive = 1 };

class BufferCache {
 public:
  /// Pages evicted by one insert; sized for the common single eviction.
  using EvictedList = sim::SmallVec<PageId, 4>;

  explicit BufferCache(std::size_t capacity_pages) : capacity_(capacity_pages) {
    map_.reserve(capacity_pages);
    slab_.reserve(capacity_pages);
  }

  /// Is \p page resident with at least \p mode?
  [[nodiscard]] bool contains(PageId page, PageMode mode) const {
    auto it = map_.find(page);
    if (it == map_.end()) return false;
    return mode == PageMode::kShared ||
           slab_[it->value].mode == PageMode::kExclusive;
  }
  [[nodiscard]] bool resident(PageId page) const { return map_.contains(page); }

  /// Record a fetched page; LRU-evicts to make room. Evicted (unpinned)
  /// pages are returned so the coherence layer can notify their directory.
  EvictedList insert(PageId page, PageMode mode);

  /// Promote a resident page to exclusive (after coherence permission).
  void upgrade(PageId page) {
    auto it = map_.find(page);
    if (it != map_.end()) slab_[it->value].mode = PageMode::kExclusive;
  }

  /// Invalidate (remote node took exclusive ownership).
  bool invalidate(PageId page) {
    auto it = map_.find(page);
    if (it == map_.end()) return false;
    drop_entry(it->value);
    map_.erase_compact(it);
    return true;
  }

  /// Invalidate every resident page matching \p pred (crash cleanup: drop
  /// pages whose directory home died — the restarted directory is empty, so
  /// stale residency must not outlive it). Returns pages dropped.
  template <typename Pred>
  std::size_t invalidate_if(Pred pred) {
    std::size_t dropped = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->key)) {
        drop_entry(it->value);
        it = map_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  /// Mark recently used.
  void touch(PageId page) {
    auto it = map_.find(page);
    if (it == map_.end()) return;
    const std::uint32_t idx = it->value;
    lru_.move_to_tail(slab_, idx);
    if (split_ && slab_[idx].pins == 0) unpinned_.move_to_tail(slab_, idx);
  }

  void pin(PageId page) {
    auto it = map_.find(page);
    if (it == map_.end()) return;
    if (!split_) activate_split();
    Entry& e = slab_[it->value];
    if (e.pins++ == 0) unpinned_.unlink(slab_, it->value);
  }
  void unpin(PageId page) {
    auto it = map_.find(page);
    if (it == map_.end() || slab_[it->value].pins == 0) return;
    const std::uint32_t idx = it->value;
    if (--slab_[idx].pins > 0) return;
    // Re-enter the unpinned list at the position the recency order dictates:
    // before the first unpinned page that is younger in the main list (cold
    // path — the model never pins, only tests and future holders do).
    std::uint32_t after = slab_[idx].next;
    while (after != kNil && slab_[after].pins != 0) after = slab_[after].next;
    unpinned_.link_before(slab_, idx, after);
  }

  /// Give up \p n unpinned pages to the version overflow area (the paper:
  /// "unpinned pages from the buffer cache are stolen to replenish it").
  /// Returns the stolen pages; capacity shrinks accordingly.
  EvictedList steal_for_versions(std::size_t n);

  /// Return previously stolen capacity (version GC freed space).
  void restore_capacity(std::size_t n) { capacity_ += n; }

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Entries examined across all evictions (the `db.lru_evict_scans` probe:
  /// with the unpinned list this advances by exactly 1 per eviction, pinned
  /// front or not).
  [[nodiscard]] obs::Counter& evict_scans() { return evict_scans_; }
  [[nodiscard]] const sim::ProbeStats& probe_stats() const {
    return map_.probe_stats();
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Entry {
    PageId page = 0;
    std::uint32_t prev = kNil, next = kNil;    ///< resident recency list
    std::uint32_t uprev = kNil, unext = kNil;  ///< unpinned sublist
    std::uint32_t pins = 0;
    std::uint32_t map_idx = 0;  ///< this page's slot in map_ (valid until rehash)
    PageMode mode = PageMode::kShared;
  };

  /// One intrusive doubly-linked index list through the slab; parameterised
  /// on which pair of link fields it threads.
  template <std::uint32_t Entry::* Prev, std::uint32_t Entry::* Next>
  struct List {
    std::uint32_t head = kNil, tail = kNil;

    void push_tail(std::vector<Entry>& slab, std::uint32_t idx) {
      slab[idx].*Prev = tail;
      slab[idx].*Next = kNil;
      if (tail == kNil) {
        head = idx;
      } else {
        slab[tail].*Next = idx;
      }
      tail = idx;
    }
    void unlink(std::vector<Entry>& slab, std::uint32_t idx) {
      Entry& e = slab[idx];
      if (e.*Prev == kNil) {
        head = e.*Next;
      } else {
        slab[e.*Prev].*Next = e.*Next;
      }
      if (e.*Next == kNil) {
        tail = e.*Prev;
      } else {
        slab[e.*Next].*Prev = e.*Prev;
      }
      e.*Prev = kNil;
      e.*Next = kNil;
    }
    void move_to_tail(std::vector<Entry>& slab, std::uint32_t idx) {
      if (tail == idx) return;
      unlink(slab, idx);
      push_tail(slab, idx);
    }
    /// Insert \p idx before \p before (kNil appends at the tail).
    void link_before(std::vector<Entry>& slab, std::uint32_t idx,
                     std::uint32_t before) {
      if (before == kNil) {
        push_tail(slab, idx);
        return;
      }
      Entry& b = slab[before];
      slab[idx].*Prev = b.*Prev;
      slab[idx].*Next = before;
      if (b.*Prev == kNil) {
        head = idx;
      } else {
        slab[b.*Prev].*Next = idx;
      }
      b.*Prev = idx;
    }
  };

  /// Pop the least recently used unpinned page; returns 0 when none.
  PageId evict_one();

  /// Unlink \p idx from both lists and recycle the slab slot (the map entry
  /// is the caller's to erase).
  void drop_entry(std::uint32_t idx) {
    lru_.unlink(slab_, idx);
    if (split_ && slab_[idx].pins == 0) unpinned_.unlink(slab_, idx);
    free_.push_back(idx);
  }

  /// Rebuild every entry's stored map slot index after a map rehash.
  void refresh_map_indices() {
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      slab_[it->value].map_idx = static_cast<std::uint32_t>(map_.index_of(it));
    }
  }

  /// First pin ever: from here on the unpinned sublist is maintained
  /// incrementally, seeded with the current recency order (nothing is pinned
  /// yet at this point, so every resident page joins).
  void activate_split() {
    split_ = true;
    for (std::uint32_t i = lru_.head; i != kNil; i = slab_[i].next) {
      unpinned_.push_tail(slab_, i);
    }
  }

  std::uint32_t alloc_entry(PageId page, PageMode mode) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      slab_[idx] = Entry{};
    } else {
      idx = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    slab_[idx].page = page;
    slab_[idx].mode = mode;
    return idx;
  }

  std::size_t capacity_;
  sim::FlatMap<PageId, std::uint32_t> map_;  ///< page → slab index
  std::vector<Entry> slab_;
  std::vector<std::uint32_t> free_;
  List<&Entry::prev, &Entry::next> lru_;        ///< head = coldest resident
  List<&Entry::uprev, &Entry::unext> unpinned_;  ///< same order, unpinned only
  bool split_ = false;  ///< unpinned_ maintained (first pin seen)
  obs::Counter evict_scans_;
};

inline BufferCache::EvictedList BufferCache::insert(PageId page, PageMode mode) {
  EvictedList evicted;
  const std::size_t cap0 = map_.capacity();
  auto [it, inserted] = map_.try_emplace(page, 0);
  // The map is reserved to capacity up front and erases never move slots, so
  // a rehash here is essentially unreachable — but if one happens, every
  // stored slot index is stale and must be re-derived.
  if (map_.capacity() != cap0) refresh_map_indices();
  if (!inserted) {
    // Resident: one probe covers the hit — upgrade in place and re-rank.
    const std::uint32_t idx = it->value;
    if (mode == PageMode::kExclusive) slab_[idx].mode = PageMode::kExclusive;
    lru_.move_to_tail(slab_, idx);
    if (split_ && slab_[idx].pins == 0) unpinned_.move_to_tail(slab_, idx);
    return evicted;
  }
  // Assign the slab slot and record where the map put this page before
  // evicting: erases never move slots, so the recorded index lets eviction
  // erase its victim without re-probing (see evict_one).
  const std::uint32_t idx = alloc_entry(page, mode);
  it->value = idx;
  slab_[idx].map_idx = static_cast<std::uint32_t>(map_.index_of(it));
  while (map_.size() > capacity_) {
    PageId victim = evict_one();  // never the new page: it is list-linked below
    if (victim == 0) break;  // everything pinned; allow transient overcommit
    evicted.push_back(victim);
  }
  lru_.push_tail(slab_, idx);
  if (split_) unpinned_.push_tail(slab_, idx);
  return evicted;
}

inline PageId BufferCache::evict_one() {
  const std::uint32_t idx = split_ ? unpinned_.head : lru_.head;
  if (idx == kNil) return 0;
  evict_scans_.record();
  const PageId victim = slab_[idx].page;
  const std::uint32_t map_idx = slab_[idx].map_idx;
  drop_entry(idx);
  map_.erase_at(map_idx);  // no re-probe, no cold slot-line read
  return victim;
}

inline BufferCache::EvictedList BufferCache::steal_for_versions(std::size_t n) {
  EvictedList stolen;
  while (stolen.size() < n && capacity_ > 1) {
    PageId victim = evict_one();
    if (victim == 0) break;
    --capacity_;
    stolen.push_back(victim);
  }
  return stolen;
}

}  // namespace dclue::db
