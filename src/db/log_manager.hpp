#pragma once

/// \file log_manager.hpp
/// Write-ahead log. Commits do not complete until the log is durable ("the
/// transaction does not commit without writing a log"); data-page writes are
/// lazy and tracked only as background disk load by the storage layer.
/// Supports group commit (concurrent flushers share a sequential write) and
/// a remote mode for the Fig-9 centralized-logging experiment, where flushes
/// are shipped to a single log node over IPC.

#include <functional>
#include <memory>

#include "sim/engine.hpp"
#include "sim/obs/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"

namespace dclue::db {

class LogManager {
 public:
  /// Ships a log flush of n bytes elsewhere (centralized logging); resolves
  /// when the remote write is durable.
  using RemoteFlush = std::function<sim::Task<void>(sim::Bytes)>;

  LogManager(sim::Engine& engine, storage::Disk* local_disk)
      : engine_(engine), disk_(local_disk) {}

  void set_remote_flush(RemoteFlush fn) { remote_ = std::move(fn); }

  /// Append a record to the in-memory log buffer (cheap; durability comes
  /// from flush at commit).
  void append(sim::Bytes bytes) {
    pending_ += bytes;
    appended_ += bytes;
  }

  /// Make everything appended so far durable. Concurrent callers coalesce
  /// into the next group write.
  sim::Task<void> flush() {
    const sim::Bytes mark = appended_;
    if (durable_ >= mark) co_return;
    if (flushing_) {
      // Join the queue; the flusher loops until everything is durable.
      auto gate = std::make_shared<sim::Gate>(engine_);
      waiters_.push_back({mark, gate});
      co_await gate->wait();
      co_return;
    }
    flushing_ = true;
    while (durable_ < appended_) {
      const sim::Bytes batch = appended_ - durable_;
      co_await write_out(batch);
      durable_ += batch;
      pending_ = appended_ - durable_;
      ++flushes_;
      // Release everyone whose mark is now durable.
      for (auto it = waiters_.begin(); it != waiters_.end();) {
        if (it->first <= durable_) {
          it->second->open();
          it = waiters_.erase(it);
        } else {
          ++it;
        }
      }
    }
    flushing_ = false;
  }

  [[nodiscard]] sim::Bytes bytes_logged() const { return durable_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }

  /// --- checkpoint support (recovery extension) ---------------------------
  /// Bytes of log a crash would have to redo (appended since the last
  /// checkpoint mark).
  [[nodiscard]] sim::Bytes bytes_since_checkpoint() const {
    return appended_ - checkpoint_mark_;
  }
  /// Record a completed checkpoint: everything before this point is covered
  /// by flushed dirty pages and never needs redo.
  void mark_checkpoint() { checkpoint_mark_ = appended_; }
  [[nodiscard]] std::uint64_t checkpoints_taken() const { return checkpoints_; }
  void count_checkpoint() { ++checkpoints_; }

 private:
  sim::Task<void> write_out(sim::Bytes batch) {
    if (remote_) {
      co_await remote_(batch);
    } else {
      // Sequential append: monotonically increasing block addresses.
      const std::int64_t block = next_block_;
      next_block_ += (batch + 8191) / 8192;
      co_await disk_->write(block, batch);
    }
  }

  sim::Engine& engine_;
  storage::Disk* disk_;
  RemoteFlush remote_;
  sim::Bytes appended_ = 0;
  sim::Bytes durable_ = 0;
  sim::Bytes pending_ = 0;
  bool flushing_ = false;
  std::int64_t next_block_ = 0;
  std::uint64_t flushes_ = 0;
  sim::Bytes checkpoint_mark_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::vector<std::pair<sim::Bytes, std::shared_ptr<sim::Gate>>> waiters_;
};

}  // namespace dclue::db
