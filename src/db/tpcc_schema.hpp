#pragma once

/// \file tpcc_schema.hpp
/// The nine TPC-C tables, their spec-accurate physical parameters, composite
/// key encoding, and database population. Like DCLUE, the whole database is
/// built in memory and initialized by TPC-C rules; buffer-cache operations
/// then merely track page status per node while queries execute against the
/// real rows and indices here.

#include <cstdint>

#include "db/table.hpp"
#include "sim/rng.hpp"

namespace dclue::db {

// --- composite keys ---------------------------------------------------------
// w: warehouse (<= 2^20), d: district 1..10, c: customer, o: order, ol: line,
// i: item. Packed so that ordered iteration follows (w, d, o, ol).
constexpr Key key_w(std::int64_t w) { return static_cast<Key>(w); }
constexpr Key key_wd(std::int64_t w, std::int64_t d) {
  return (static_cast<Key>(w) << 8) | static_cast<Key>(d);
}
constexpr Key key_wdc(std::int64_t w, std::int64_t d, std::int64_t c) {
  return (key_wd(w, d) << 20) | static_cast<Key>(c);
}
constexpr Key key_wdo(std::int64_t w, std::int64_t d, std::int64_t o) {
  return (key_wd(w, d) << 32) | static_cast<Key>(o);
}
constexpr Key key_wdool(std::int64_t w, std::int64_t d, std::int64_t o,
                        std::int64_t ol) {
  return (key_wdo(w, d, o) << 4) | static_cast<Key>(ol);
}
constexpr Key key_i(std::int64_t i) { return static_cast<Key>(i); }
constexpr Key key_wi(std::int64_t w, std::int64_t i) {
  return (static_cast<Key>(w) << 20) | static_cast<Key>(i);
}
/// History rows cluster by warehouse so each partition appends to its own
/// pages (the table has no natural key; seq disambiguates).
constexpr Key key_history(std::int64_t w, std::uint64_t seq) {
  return (static_cast<Key>(w) << 32) | (seq & 0xffffffff);
}

// --- row content (only what query execution needs) --------------------------
struct WarehouseRow {
  double ytd = 0.0;
};
struct DistrictRow {
  std::int32_t next_o_id = 1;
  double ytd = 0.0;
};
struct CustomerRow {
  double balance = -10.0;
  double ytd_payment = 10.0;
  std::int32_t payment_cnt = 1;
  std::int32_t delivery_cnt = 0;
  std::int32_t last_o_id = 0;  ///< stands in for the customer->order index
};
struct HistoryRow {};
struct NewOrderRow {};
struct OrderRow {
  std::int32_t c_id = 0;
  std::int8_t carrier_id = 0;
  std::int8_t ol_cnt = 0;
};
struct OrderLineRow {
  std::int32_t i_id = 0;
  std::int32_t supply_w = 0;
  std::int8_t quantity = 0;
  double amount = 0.0;
  bool delivered = false;
};
struct ItemRow {
  double price = 0.0;
};
struct StockRow {
  std::int16_t quantity = 0;
  double ytd = 0.0;
  std::int32_t order_cnt = 0;
  std::int32_t remote_cnt = 0;
};

/// Spec row sizes (TPC-C clause 1.2 storage estimates). Sub-page (lock
/// granularity) sizes follow the paper's per-table tuning: the hot district
/// rows get per-row granularity; big cold rows lock at page granularity.
struct TpccSpecs {
  // Warehouse rows are padded to a page each (hot-row padding); the other
  // warehouse-keyed tables cluster by key so pages never straddle the
  // warehouse partition boundary.
  static constexpr TableSpec warehouse{TableId::kWarehouse, "warehouse", 89, 128,
                                       true, 1};
  static constexpr TableSpec district{TableId::kDistrict, "district", 95, 128, true};
  static constexpr TableSpec customer{TableId::kCustomer, "customer", 655, 1024,
                                      true};
  static constexpr TableSpec history{TableId::kHistory, "history", 46, 2048, true};
  static constexpr TableSpec new_order{TableId::kNewOrder, "new_order", 8, 512, true};
  static constexpr TableSpec order{TableId::kOrder, "order", 24, 512, true};
  static constexpr TableSpec order_line{TableId::kOrderLine, "order_line", 54, 1024,
                                        true};
  static constexpr TableSpec item{TableId::kItem, "item", 82, 2048};
  static constexpr TableSpec stock{TableId::kStock, "stock", 306, 512, true};
};

struct TpccScale {
  std::int64_t warehouses = 40;
  std::int64_t districts_per_warehouse = 10;
  std::int64_t customers_per_district = 300;  ///< 3000 in spec; /10 under the
                                              ///< simulation scaling (see DESIGN.md)
  std::int64_t items = 1'000;  ///< 100K in spec; /100 per the paper's scaling
  std::int64_t initial_orders_per_district = 30;
  /// Ablation knob: override the district table's sub-page (lock
  /// granularity) size; 0 keeps the tuned default (see the paper's §2.3
  /// note about tuning the district sub-page).
  sim::Bytes district_subpage_override = 0;
};

/// The clustered database: one logical instance shared by all nodes.
class TpccDatabase {
 public:
  static TableSpec district_spec(const TpccScale& scale) {
    TableSpec spec = TpccSpecs::district;
    if (scale.district_subpage_override > 0) {
      spec.subpage_bytes = scale.district_subpage_override;
    }
    return spec;
  }

  explicit TpccDatabase(TpccScale scale)
      : scale_(scale),
        warehouse(TpccSpecs::warehouse),
        district(district_spec(scale)),
        customer(TpccSpecs::customer),
        history(TpccSpecs::history),
        new_order(TpccSpecs::new_order),
        order(TpccSpecs::order),
        order_line(TpccSpecs::order_line),
        item(TpccSpecs::item),
        stock(TpccSpecs::stock) {}

  /// Build all tables per TPC-C population rules.
  void populate(sim::Rng& rng);

  [[nodiscard]] const TpccScale& scale() const { return scale_; }

  /// Aggregate number of data pages across tables (for cache sizing).
  [[nodiscard]] std::uint64_t total_data_pages() const;

  TpccScale scale_;
  Table<WarehouseRow> warehouse;
  Table<DistrictRow> district;
  Table<CustomerRow> customer;
  Table<HistoryRow> history;
  Table<NewOrderRow> new_order;
  Table<OrderRow> order;
  Table<OrderLineRow> order_line;
  Table<ItemRow> item;
  Table<StockRow> stock;

  /// Monotonic history row counter (history has no natural key).
  std::uint64_t next_history_id = 0;
};

}  // namespace dclue::db
