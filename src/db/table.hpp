#pragma once

/// \file table.hpp
/// Row storage with TPC-C-accurate physical layout. Row *content* is held
/// compactly (only what executing queries requires), but the on-disk layout —
/// spec row sizes, rows per 8 KB block, index leaf pages — is tracked
/// exactly, because buffer-cache residency, lock granularity, and disk
/// addresses are all derived from it (DCLUE: "retaining the precise row
/// sizes, rows per block, etc.").

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "db/btree.hpp"
#include "sim/units.hpp"

namespace dclue::db {

using RowId = std::uint64_t;
using Key = std::uint64_t;

/// Page identifier layout:
///   bits 60..63  table id
///   bit  59      index page flag
///   bits 0..58   page number (key-clustered tables use sparse key-derived
///                numbers, so the field must hold key / rows_per_page for
///                the largest composite keys)
using PageId = std::uint64_t;

inline constexpr sim::Bytes kPageBytes = 8192;

enum class TableId : std::uint8_t {
  kWarehouse = 1,
  kDistrict,
  kCustomer,
  kHistory,
  kNewOrder,
  kOrder,
  kOrderLine,
  kItem,
  kStock,
};

constexpr PageId make_page_id(TableId table, bool index, std::uint64_t page_no) {
  return (static_cast<PageId>(table) << 60) |
         (index ? (PageId{1} << 59) : 0) | (page_no & ((PageId{1} << 59) - 1));
}
constexpr TableId table_of_page(PageId p) {
  return static_cast<TableId>(p >> 60);
}
constexpr bool is_index_page(PageId p) { return (p >> 59) & 1; }
constexpr std::uint64_t page_number(PageId p) {
  return p & ((PageId{1} << 59) - 1);
}

/// Global lock name for a sub-page: an opaque 64-bit id (splitmix64 over
/// page and sub-page; collisions are ~2^-64 per pair and would only cause
/// spurious conflicts, never corruption). The lock's home node travels with
/// the name wherever routing is needed.
using LockName = std::uint64_t;

constexpr std::uint64_t lock_name(PageId page, int subpage) {
  std::uint64_t x = page ^ (static_cast<std::uint64_t>(subpage) * 0x9e3779b97f4a7c15ULL);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct TableSpec {
  TableId id;
  const char* name;
  sim::Bytes row_bytes;
  /// Lock granularity. The paper tunes this per table ("the district table
  /// is accessed very frequently and needs a small subpage size").
  sim::Bytes subpage_bytes;
  /// Clustered tables place rows on pages by key prefix (index-organized:
  /// orders of one district share pages) rather than heap row id. This is
  /// how real TPC-C schemas behave, it keeps each partition's inserts on
  /// its own pages instead of a cluster-global append hotspot, and it keeps
  /// hot pages from straddling partition boundaries (page-level false
  /// sharing would otherwise ping-pong pages between nodes even at
  /// affinity 1.0).
  bool clustered = false;
  /// Force rows-per-page (e.g. the hot warehouse rows are padded to a page
  /// each, standard practice for contended TPC-C rows).
  int rows_per_page_override = 0;
};

/// Typed table: compact row store + real B+-tree primary index + physical
/// layout math.
template <typename Row>
class Table {
 public:
  explicit Table(TableSpec spec)
      : spec_(spec),
        rows_per_page_(spec.rows_per_page_override > 0
                           ? spec.rows_per_page_override
                           : static_cast<int>(kPageBytes / spec.row_bytes)) {}

  [[nodiscard]] const TableSpec& spec() const { return spec_; }

  RowId insert(Key key, Row row) {
    RowId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      rows_[id] = std::move(row);
    } else {
      id = rows_.size();
      rows_.push_back(std::move(row));
    }
    index_.insert(key, id);
    return id;
  }

  /// nullptr when the key is absent.
  Row* find(Key key) {
    auto id = index_.find(key);
    return id ? &rows_[*id] : nullptr;
  }
  [[nodiscard]] std::optional<RowId> find_id(Key key) const {
    return index_.find(key);
  }
  Row& row(RowId id) { return rows_[id]; }
  const Row& row(RowId id) const { return rows_[id]; }

  bool erase(Key key) {
    auto id = index_.find(key);
    if (!id) return false;
    index_.erase(key);
    free_.push_back(*id);
    return true;
  }

  [[nodiscard]] auto lower_bound(Key key) const { return index_.lower_bound(key); }
  [[nodiscard]] std::size_t size() const { return index_.size(); }

  /// --- physical layout ----------------------------------------------------
  [[nodiscard]] PageId data_page_of(RowId id) const {
    return make_page_id(spec_.id, false, id / static_cast<RowId>(rows_per_page_));
  }
  [[nodiscard]] int subpage_of(RowId id) const {
    const auto offset = (id % static_cast<RowId>(rows_per_page_)) * spec_.row_bytes;
    return static_cast<int>(offset / spec_.subpage_bytes);
  }
  /// Key-derived page/subpage for clustered tables.
  [[nodiscard]] PageId data_page_of_key(Key key) const {
    return make_page_id(spec_.id, false, key / static_cast<Key>(rows_per_page_));
  }
  [[nodiscard]] int subpage_of_key(Key key) const {
    const auto offset = (key % static_cast<Key>(rows_per_page_)) *
                        static_cast<Key>(spec_.row_bytes);
    return static_cast<int>(offset / static_cast<Key>(spec_.subpage_bytes));
  }
  /// Resolve the page/subpage of a row given both its key and row id.
  [[nodiscard]] PageId page_for(Key key, RowId id) const {
    return spec_.clustered ? data_page_of_key(key) : data_page_of(id);
  }
  [[nodiscard]] int subpage_for(Key key, RowId id) const {
    return spec_.clustered ? subpage_of_key(key) : subpage_of(id);
  }
  /// Index leaf page holding \p key: a B+-tree leaf covers a contiguous key
  /// range (~32 entries here), so leaves inherit the key's warehouse
  /// affinity — exactly how a real index clusters.
  static constexpr std::int64_t kIndexKeysPerLeaf = 32;
  [[nodiscard]] PageId index_page_of(Key key) const {
    return make_page_id(spec_.id, true, key / kIndexKeysPerLeaf);
  }
  [[nodiscard]] int index_height() const { return index_.height(); }
  /// The page new rows land on (append locality for growing tables).
  [[nodiscard]] PageId append_page() const {
    return make_page_id(spec_.id, false,
                        index_.size() / static_cast<std::size_t>(rows_per_page_));
  }
  [[nodiscard]] std::uint64_t data_pages() const {
    return rows_.size() / static_cast<RowId>(rows_per_page_) + 1;
  }
  /// Distinct resident data pages (clustered tables fragment by key range).
  [[nodiscard]] std::uint64_t distinct_data_pages() const {
    if (!spec_.clustered) return data_pages();
    std::uint64_t count = 0;
    PageId last = 0;
    for (auto it = index_.lower_bound(0); it.valid(); it.next()) {
      const PageId p = data_page_of_key(it.key());
      if (p != last || count == 0) {
        ++count;
        last = p;
      }
    }
    return std::max<std::uint64_t>(count, 1);
  }
  /// Distinct index leaf pages (key-range leaves fragment like data pages).
  [[nodiscard]] std::uint64_t distinct_index_pages() const {
    std::uint64_t count = 0;
    PageId last = 0;
    for (auto it = index_.lower_bound(0); it.valid(); it.next()) {
      const PageId p = index_page_of(it.key());
      if (p != last || count == 0) {
        ++count;
        last = p;
      }
    }
    return std::max<std::uint64_t>(count, 1);
  }
  [[nodiscard]] int rows_per_page() const { return rows_per_page_; }

 private:
  TableSpec spec_;
  int rows_per_page_;
  std::deque<Row> rows_;
  std::vector<RowId> free_;
  BTree<Key, RowId> index_;
};

}  // namespace dclue::db
