#pragma once

/// \file btree.hpp
/// In-memory B+-tree with fixed fan-out, used as the primary index of every
/// TPC-C table (DCLUE "explicitly maintains B+-tree indices for each
/// table"). Keys are 64-bit composites; values are row ids. Leaves are
/// linked for ordered range scans (delivery's oldest-new-order lookup,
/// stock-level's last-20-orders scan). The tree also reports its leaf count
/// and height so the buffer-cache layer can model index page residency.

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace dclue::db {

template <typename Key, typename Value, int Fanout = 64>
class BTree {
  static_assert(Fanout >= 4 && Fanout % 2 == 0);
  struct Node;

 public:
  BTree() : root_(new Node(/*leaf=*/true)) { first_leaf_ = root_.get(); }

  /// Insert or overwrite.
  void insert(Key key, Value value) {
    Node* r = root_.get();
    if (r->count == Fanout) {
      auto new_root = std::make_unique<Node>(false);
      new_root->children[0] = std::move(root_);
      root_ = std::move(new_root);
      split_child(root_.get(), 0);
      r = root_.get();
    }
    insert_nonfull(r, key, value);
  }

  [[nodiscard]] std::optional<Value> find(Key key) const {
    const Node* n = leaf_for(key);
    int i = lower_bound_in(n, key);
    if (i < n->count && n->keys[i] == key) return n->values[i];
    return std::nullopt;
  }

  [[nodiscard]] bool contains(Key key) const { return find(key).has_value(); }

  /// Remove \p key; returns true if it existed. Uses lazy deletion (leaves
  /// may underflow) — correct for ordered iteration and fine for a workload
  /// where deletions (retired new-order rows) are a small minority.
  bool erase(Key key) {
    Node* n = leaf_for_mut(key);
    int i = lower_bound_in(n, key);
    if (i >= n->count || n->keys[i] != key) return false;
    for (int j = i; j + 1 < n->count; ++j) {
      n->keys[j] = n->keys[j + 1];
      n->values[j] = n->values[j + 1];
    }
    --n->count;
    --size_;
    return true;
  }

  /// Iterator over leaf entries, ordered by key.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const Node* leaf, int idx) : leaf_(leaf), idx_(idx) { skip_empty(); }

    [[nodiscard]] bool valid() const { return leaf_ != nullptr; }
    [[nodiscard]] Key key() const { return leaf_->keys[idx_]; }
    [[nodiscard]] Value value() const { return leaf_->values[idx_]; }

    void next() {
      ++idx_;
      skip_empty();
    }

   private:
    void skip_empty() {
      while (leaf_ && idx_ >= leaf_->count) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }
    const Node* leaf_ = nullptr;
    int idx_ = 0;
  };

  /// First entry with key >= \p key.
  [[nodiscard]] Iterator lower_bound(Key key) const {
    const Node* n = leaf_for(key);
    return Iterator(n, lower_bound_in(n, key));
  }

  [[nodiscard]] Iterator begin() const { return Iterator(first_leaf_, 0); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] int height() const {
    int h = 1;
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->children[0].get();
      ++h;
    }
    return h;
  }

  [[nodiscard]] std::size_t leaf_count() const {
    std::size_t c = 0;
    for (const Node* n = first_leaf_; n; n = n->next) ++c;
    return c;
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    int count = 0;
    std::array<Key, Fanout> keys{};
    // Leaves hold values; inner nodes hold children (count+1 of them).
    std::array<Value, Fanout> values{};
    std::array<std::unique_ptr<Node>, Fanout + 1> children{};
    Node* next = nullptr;  ///< leaf chain
  };

  static int lower_bound_in(const Node* n, Key key) {
    return static_cast<int>(
        std::lower_bound(n->keys.begin(), n->keys.begin() + n->count, key) -
        n->keys.begin());
  }

  [[nodiscard]] const Node* leaf_for(Key key) const {
    const Node* n = root_.get();
    while (!n->leaf) {
      int i = upper_bound_in(n, key);
      n = n->children[static_cast<std::size_t>(i)].get();
    }
    return n;
  }
  [[nodiscard]] Node* leaf_for_mut(Key key) {
    return const_cast<Node*>(leaf_for(key));
  }

  static int upper_bound_in(const Node* n, Key key) {
    return static_cast<int>(
        std::upper_bound(n->keys.begin(), n->keys.begin() + n->count, key) -
        n->keys.begin());
  }

  /// Split full child \p i of \p parent (classic B-tree preemptive split).
  void split_child(Node* parent, int i) {
    Node* child = parent->children[static_cast<std::size_t>(i)].get();
    auto right = std::make_unique<Node>(child->leaf);
    const int mid = Fanout / 2;

    if (child->leaf) {
      // Right keeps keys[mid..); separator key is right's first key.
      right->count = child->count - mid;
      for (int j = 0; j < right->count; ++j) {
        right->keys[j] = child->keys[mid + j];
        right->values[j] = child->values[mid + j];
      }
      child->count = mid;
      right->next = child->next;
      child->next = right.get();
      // Shift parent entries to make room.
      for (int j = parent->count; j > i; --j) {
        parent->keys[j] = parent->keys[j - 1];
        parent->children[static_cast<std::size_t>(j + 1)] =
            std::move(parent->children[static_cast<std::size_t>(j)]);
      }
      parent->keys[i] = right->keys[0];
      parent->children[static_cast<std::size_t>(i + 1)] = std::move(right);
      ++parent->count;
    } else {
      // Inner split: median moves up.
      right->count = child->count - mid - 1;
      for (int j = 0; j < right->count; ++j) {
        right->keys[j] = child->keys[mid + 1 + j];
      }
      for (int j = 0; j <= right->count; ++j) {
        right->children[static_cast<std::size_t>(j)] =
            std::move(child->children[static_cast<std::size_t>(mid + 1 + j)]);
      }
      Key median = child->keys[mid];
      child->count = mid;
      for (int j = parent->count; j > i; --j) {
        parent->keys[j] = parent->keys[j - 1];
        parent->children[static_cast<std::size_t>(j + 1)] =
            std::move(parent->children[static_cast<std::size_t>(j)]);
      }
      parent->keys[i] = median;
      parent->children[static_cast<std::size_t>(i + 1)] = std::move(right);
      ++parent->count;
    }
  }

  void insert_nonfull(Node* n, Key key, Value value) {
    while (!n->leaf) {
      int i = upper_bound_in(n, key);
      Node* child = n->children[static_cast<std::size_t>(i)].get();
      if (child->count == Fanout) {
        split_child(n, i);
        if (key >= n->keys[i]) ++i;
        child = n->children[static_cast<std::size_t>(i)].get();
      }
      n = child;
    }
    int i = lower_bound_in(n, key);
    if (i < n->count && n->keys[i] == key) {
      n->values[i] = value;  // overwrite
      return;
    }
    for (int j = n->count; j > i; --j) {
      n->keys[j] = n->keys[j - 1];
      n->values[j] = n->values[j - 1];
    }
    n->keys[i] = key;
    n->values[i] = value;
    ++n->count;
    ++size_;
  }

  std::unique_ptr<Node> root_;
  Node* first_leaf_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace dclue::db
