#pragma once

/// \file btree.hpp
/// In-memory B+-tree with fixed fan-out, used as the primary index of every
/// TPC-C table (DCLUE "explicitly maintains B+-tree indices for each
/// table"). Keys are 64-bit composites; values are row ids. Leaves are
/// doubly linked for ordered range scans (delivery's oldest-new-order
/// lookup, stock-level's last-20-orders scan). The tree also reports its
/// leaf count and height so the buffer-cache layer can model index page
/// residency — both are maintained incrementally (split/unlink/collapse),
/// not recomputed by walking the structure.
///
/// Nodes come from a per-tree pool (std::deque slabs + free list): churny
/// workloads (new-order insert / delivery erase) recycle nodes instead of
/// round-tripping the allocator, and teardown is one deque destruction
/// rather than a pointer-chasing recursive delete. A leaf whose last entry
/// is erased is unlinked from the leaf chain and returned to the pool (its
/// empty parent chain too), so iteration never revisits retired leaves.

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <type_traits>
#include <vector>

namespace dclue::db {

template <typename Key, typename Value, int Fanout = 64>
class BTree {
  static_assert(Fanout >= 4 && Fanout % 2 == 0);
  struct Node;

 public:
  BTree() {
    root_ = alloc_node(/*leaf=*/true);
    first_leaf_ = root_;
    dir_keys_.push_back(Key{});  // sentinel: leaf 0 has no left separator
    dir_leaves_.push_back(root_);
    rebuild_dir_et();
  }
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) noexcept = default;
  BTree& operator=(BTree&&) noexcept = default;

  /// Insert or overwrite.
  void insert(Key key, Value value) {
    Node* r = root_;
    if (r->count == Fanout) {
      Node* new_root = alloc_node(false);
      new_root->kids()[0] = root_;
      const bool append = key > r->keys[Fanout - 1];
      root_ = new_root;
      ++height_;
      split_child(root_, 0, append);
      r = root_;
    }
    insert_nonfull(r, key, value);
  }

  [[nodiscard]] std::optional<Value> find(Key key) const {
    const Node* n = leaf_for(key);
    int i = lower_bound_in(n, key);
    if (i < n->count && n->keys[i] == key) return n->vals()[i];
    return std::nullopt;
  }

  [[nodiscard]] bool contains(Key key) const { return find(key).has_value(); }

  /// Remove \p key; returns true if it existed. A leaf left empty is
  /// unlinked from the leaf chain and recycled (as is any inner node left
  /// childless), so ordered iteration and leaf_count() track live structure.
  bool erase(Key key) {
    // Record the descent so an emptied node can be detached from its parent.
    std::array<Node*, kMaxDepth> path;
    std::array<int, kMaxDepth> slot;
    int depth = 0;
    Node* n = root_;
    while (!n->leaf) {
      int i = upper_bound_in(n, key);
      path[depth] = n;
      slot[depth] = i;
      ++depth;
      n = n->kids()[i];
    }
    int i = lower_bound_in(n, key);
    if (i >= n->count || n->keys[i] != key) return false;
    for (int j = i; j + 1 < n->count; ++j) {
      n->keys[j] = n->keys[j + 1];
      n->vals()[j] = n->vals()[j + 1];
    }
    --n->count;
    --size_;
    if (n->count == 0 && n != root_) retire(n, key, path, slot, depth);
    return true;
  }

  /// Iterator over leaf entries, ordered by key.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const Node* leaf, int idx) : leaf_(leaf), idx_(idx) { skip_empty(); }

    [[nodiscard]] bool valid() const { return leaf_ != nullptr; }
    [[nodiscard]] Key key() const { return leaf_->keys[idx_]; }
    [[nodiscard]] Value value() const { return leaf_->vals()[idx_]; }

    void next() {
      ++idx_;
      skip_empty();
    }

   private:
    // Empty leaves are unlinked eagerly; the only one an iterator can meet
    // is an empty root (freshly constructed or fully drained tree).
    void skip_empty() {
      while (leaf_ && idx_ >= leaf_->count) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }
    const Node* leaf_ = nullptr;
    int idx_ = 0;
  };

  /// First entry with key >= \p key.
  [[nodiscard]] Iterator lower_bound(Key key) const {
    const Node* n = leaf_for(key);
    return Iterator(n, lower_bound_in(n, key));
  }

  [[nodiscard]] Iterator begin() const { return Iterator(first_leaf_, 0); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  /// Pool introspection for tests: nodes currently awaiting reuse.
  [[nodiscard]] std::size_t pooled_free_nodes() const { return free_.size(); }

 private:
  // Fanout >= 4 means >= 2x growth per level; 64-bit key spaces cannot
  // exceed this depth.
  static constexpr int kMaxDepth = 64;

  // A node holds its header and keys inline — the part every search reads —
  // and points at an out-of-line payload block (values for a leaf, children
  // for an inner node). Packing nodes key-only keeps the array of them
  // roughly half the size it would be with inline payloads, so far more of
  // the search-hot data survives in cache under a churning workload; the
  // payload block contributes exactly the one line a hit actually touches.
  // Trivial element types make the block's role switch on recycle
  // well-defined with no destructor bookkeeping.
  static_assert(std::is_trivially_copyable_v<Key> &&
                std::is_trivially_copyable_v<Value>);

  struct Node {
    bool leaf = true;
    int count = 0;
    Node* next = nullptr;    ///< leaf chain
    Node* prev = nullptr;    ///< leaf chain (needed to unlink emptied leaves)
    void* payload = nullptr; ///< paired payload block; set once at first alloc
    std::array<Key, Fanout> keys{};

    [[nodiscard]] Value* vals() { return static_cast<Value*>(payload); }
    [[nodiscard]] const Value* vals() const {
      return static_cast<const Value*>(payload);
    }
    [[nodiscard]] Node** kids() { return static_cast<Node**>(payload); }
    [[nodiscard]] Node* const* kids() const {
      return static_cast<Node* const*>(payload);
    }
  };

  /// Payload block: sized and aligned for whichever role is bigger. A block
  /// is bound to its node for the node's lifetime (recycles keep the pair),
  /// so allocation stays 1:1 with node creation.
  static constexpr std::size_t kPayloadBytes =
      sizeof(Node*) * (Fanout + 1) > sizeof(Value) * Fanout
          ? sizeof(Node*) * (Fanout + 1)
          : sizeof(Value) * Fanout;
  struct Payload {
    alignas(alignof(Node*) > alignof(Value) ? alignof(Node*)
                                            : alignof(Value))
        std::byte bytes[kPayloadBytes];
  };

  Node* alloc_node(bool is_leaf) {
    Node* n;
    if (!free_.empty()) {
      n = free_.back();
      free_.pop_back();
    } else {
      n = &pool_.emplace_back();
      n->payload = payload_pool_.emplace_back().bytes;
    }
    n->leaf = is_leaf;
    n->count = 0;
    n->next = nullptr;
    n->prev = nullptr;
    if (is_leaf) ++leaf_count_;
    return n;
  }

  void free_node(Node* n) {
    if (n->leaf) --leaf_count_;
    free_.push_back(n);
  }

  /// Detach the emptied leaf at the bottom of \p path from its parent,
  /// cascading upward while parents run out of children; collapse
  /// single-child inner roots afterwards.
  void retire(Node* n, Key key, const std::array<Node*, kMaxDepth>& path,
              const std::array<int, kMaxDepth>& slot, int depth) {
    dir_erase_leaf(n, key);
    // Unlink from the leaf chain.
    if (n->prev != nullptr) n->prev->next = n->next;
    if (n->next != nullptr) n->next->prev = n->prev;
    if (first_leaf_ == n) first_leaf_ = n->next;
    free_node(n);
    while (depth-- > 0) {
      Node* parent = path[depth];
      const int i = slot[depth];
      if (parent->count == 0) {
        // Single-child inner node lost its only child; cascade. (A root in
        // this state cannot occur: the collapse loop below keeps an inner
        // root at >= 2 children, so the cascade always stops before it.)
        assert(i == 0 && parent != root_);
        free_node(parent);
        continue;
      }
      // Drop child i and one separator key: child i's separator is
      // keys[i-1]; for i == 0 removing keys[0] widens the left edge of the
      // new first child instead, which may only widen coverage (the emptied
      // subtree held nothing).
      const int key_at = i > 0 ? i - 1 : 0;
      for (int j = key_at; j + 1 < parent->count; ++j) {
        parent->keys[j] = parent->keys[j + 1];
      }
      for (int j = i; j + 1 <= parent->count; ++j) {
        parent->kids()[j] = parent->kids()[j + 1];
      }
      --parent->count;
      break;
    }
    // Collapse single-child inner roots so searches skip degenerate levels.
    while (!root_->leaf && root_->count == 0) {
      Node* only = root_->kids()[0];
      free_node(root_);
      root_ = only;
      --height_;
    }
  }

  /// Issue loads for the header and full key array of \p n before the first
  /// compare. Binary search otherwise discovers a cold node's cache lines
  /// serially — one full miss latency per step until it converges to a
  /// line; prefetching them together overlaps the misses, which is most of
  /// the cost of a random find once the upper levels are cache-resident.
  static void prefetch_node(const Node* n) {
#if defined(__GNUC__)
    constexpr std::size_t kSpan = sizeof(Node);
    const char* p = reinterpret_cast<const char*>(n);
    for (std::size_t off = 0; off < kSpan; off += 64) {
      __builtin_prefetch(p + off);
    }
#else
    (void)n;
#endif
  }

  // In-node searches run branchless (the compare compiles to a conditional
  // move): random probe keys make the mid-key comparison a coin flip, and
  // the mispredict per level costs more than the handful of extra compares.

  /// Count of keys < \p key == index of the first key >= it.
  static int lower_bound_in(const Node* n, Key key) {
    const Key* base = n->keys.data();
    int len = n->count;
    while (len > 1) {
      const int half = len >> 1;
      base += base[half - 1] < key ? half : 0;
      len -= half;
    }
    const int last = (len == 1 && base[0] < key) ? 1 : 0;
    return static_cast<int>(base - n->keys.data()) + last;
  }

  /// Directory position of the leaf whose key range covers \p key: the
  /// number of separators <= key (branchless, like the in-node searches).
  [[nodiscard]] std::size_t leaf_index_for(Key key) const {
    const Key* base = dir_keys_.data() + 1;
    std::size_t len = dir_leaves_.size() - 1;
    while (len > 1) {
      const std::size_t half = len >> 1;
      base += base[half - 1] <= key ? half : 0;
      len -= half;
    }
    std::size_t idx = static_cast<std::size_t>(base - (dir_keys_.data() + 1));
    if (len == 1 && base[0] <= key) ++idx;
    return idx;
  }

  [[nodiscard]] const Node* leaf_for(Key key) const {
    // Walk the same separator set laid out in BFS (eytzinger) order: the
    // children of slot k live at 2k / 2k+1, so the four grandchildren of
    // the current compare sit in at most two adjacent lines that one
    // prefetch pair covers. Every level is L1-resident by the time the
    // walk reaches it — a sorted-array bisection cannot be prefetched this
    // way because its next probe address depends on the compare before it.
    // Going right means "separator <= key": the last slot that sends the
    // walk right is the largest separator <= key, whose paired leaf covers
    // the key's range (dir_leaves_[0] when no separator qualifies).
    const DirEnt* et = et_.data();
    const std::size_t m = et_.size() - 1;
    const Node* cand = dir_leaves_[0];
    std::size_t k = 1;
    while (k <= m) {
#if defined(__GNUC__)
      __builtin_prefetch(et + 4 * k);
      __builtin_prefetch(et + 4 * k + 2);
#endif
      const bool right = et[k].sep <= key;
      cand = right ? et[k].leaf : cand;
      k = 2 * k + (right ? 1 : 0);
    }
    prefetch_node(cand);
    return cand;
  }

  /// Count of keys <= \p key == index of the first key > it.
  static int upper_bound_in(const Node* n, Key key) {
    const Key* base = n->keys.data();
    int len = n->count;
    while (len > 1) {
      const int half = len >> 1;
      base += base[half - 1] <= key ? half : 0;
      len -= half;
    }
    const int last = (len == 1 && base[0] <= key) ? 1 : 0;
    return static_cast<int>(base - n->keys.data()) + last;
  }

  /// Split full child \p i of \p parent (classic B-tree preemptive split).
  /// When the pending insert appends past the child's last key (\p append —
  /// the shape of TPC-C's ever-ascending order ids), split at the high end
  /// instead of the middle: the left node stays ~full, so monotone streams
  /// pack nodes densely instead of leaving a trail of half-empty ones, and
  /// the tree runs one level shorter at the same key count.
  void split_child(Node* parent, int i, bool append) {
    Node* child = parent->kids()[i];
    Node* right = alloc_node(child->leaf);
    const int mid = append ? (child->leaf ? Fanout - 1 : Fanout - 2) : Fanout / 2;

    if (child->leaf) {
      // Right keeps keys[mid..); separator key is right's first key.
      right->count = child->count - mid;
      for (int j = 0; j < right->count; ++j) {
        right->keys[j] = child->keys[mid + j];
        right->vals()[j] = child->vals()[mid + j];
      }
      child->count = mid;
      right->next = child->next;
      right->prev = child;
      if (right->next != nullptr) right->next->prev = right;
      child->next = right;
      // Shift parent entries to make room.
      for (int j = parent->count; j > i; --j) {
        parent->keys[j] = parent->keys[j - 1];
        parent->kids()[j + 1] = parent->kids()[j];
      }
      parent->keys[i] = right->keys[0];
      parent->kids()[i + 1] = right;
      ++parent->count;
      dir_insert_leaf(right);
    } else {
      // Inner split: median moves up.
      right->count = child->count - mid - 1;
      for (int j = 0; j < right->count; ++j) {
        right->keys[j] = child->keys[mid + 1 + j];
      }
      for (int j = 0; j <= right->count; ++j) {
        right->kids()[j] = child->kids()[mid + 1 + j];
      }
      Key median = child->keys[mid];
      child->count = mid;
      for (int j = parent->count; j > i; --j) {
        parent->keys[j] = parent->keys[j - 1];
        parent->kids()[j + 1] = parent->kids()[j];
      }
      parent->keys[i] = median;
      parent->kids()[i + 1] = right;
      ++parent->count;
    }
  }

  void insert_nonfull(Node* n, Key key, Value value) {
    while (!n->leaf) {
      int i = upper_bound_in(n, key);
      Node* child = n->kids()[i];
      if (child->count == Fanout) {
        split_child(n, i, key > child->keys[Fanout - 1]);
        if (key >= n->keys[i]) ++i;
        child = n->kids()[i];
      }
      n = child;
      prefetch_node(n);
    }
    int i = lower_bound_in(n, key);
    if (i < n->count && n->keys[i] == key) {
      n->vals()[i] = value;  // overwrite
      return;
    }
    for (int j = n->count; j > i; --j) {
      n->keys[j] = n->keys[j - 1];
      n->vals()[j] = n->vals()[j - 1];
    }
    n->keys[i] = key;
    n->vals()[i] = value;
    ++n->count;
    ++size_;
  }

  /// Record the new leaf \p right in the directory, just after its left
  /// sibling; the separator is right's first key, exactly as recorded in the
  /// parent by split_child.
  void dir_insert_leaf(Node* right) {
    const std::size_t idx = leaf_index_for(right->keys[0]);
    dir_keys_.insert(dir_keys_.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                     right->keys[0]);
    dir_leaves_.insert(
        dir_leaves_.begin() + static_cast<std::ptrdiff_t>(idx) + 1, right);
    rebuild_dir_et();
  }

  /// Drop retired leaf \p n (which \p key routed to) from the directory,
  /// together with its left separator: the dead range merges into a
  /// neighbour. Which neighbour absorbs it cannot matter — the range holds
  /// no keys, so lookups routed either way miss correctly and lower_bound
  /// lands on the same successor.
  void dir_erase_leaf(const Node* n, Key key) {
    const std::size_t idx = leaf_index_for(key);
    assert(dir_leaves_[idx] == n);
    (void)n;
    dir_keys_.erase(dir_keys_.begin() + static_cast<std::ptrdiff_t>(idx));
    dir_leaves_.erase(dir_leaves_.begin() + static_cast<std::ptrdiff_t>(idx));
    rebuild_dir_et();
  }

  /// Re-derive the eytzinger mirror after a directory change. O(leaves),
  /// like the vector insert/erase that precedes it; an in-order walk of the
  /// implicit BST visits slots in ascending separator order, so filling
  /// during that walk places sorted entry i at its BFS position.
  void rebuild_dir_et() {
    const std::size_t m = dir_leaves_.size() - 1;
    et_.resize(m + 1);
    std::size_t src = 1;
    fill_dir_et(1, m, src);
  }
  void fill_dir_et(std::size_t k, std::size_t m, std::size_t& src) {
    if (k > m) return;
    fill_dir_et(2 * k, m, src);
    et_[k] = DirEnt{dir_keys_[src], dir_leaves_[src]};
    ++src;
    fill_dir_et(2 * k + 1, m, src);
  }

  std::deque<Node> pool_;           ///< owns every node; stable addresses
  std::deque<Payload> payload_pool_;  ///< payload blocks, paired 1:1 with pool_
  std::vector<Node*> free_;         ///< retired nodes awaiting reuse
  /// Flat leaf directory, mirroring the separator structure of the inner
  /// nodes: dir_leaves_ is every live leaf in chain order, dir_keys_[i] the
  /// separator to the left of leaf i ([0] is an unused sentinel). Lookups
  /// route through one branchless search of this array — a few KB that the
  /// find-heavy paths keep cache-hot — instead of a node descent whose
  /// every level is a dependent cache miss. Maintained only at leaf split /
  /// retire; inserts and erases still walk the tree.
  std::vector<Key> dir_keys_;
  std::vector<Node*> dir_leaves_;
  /// (separator, right leaf) pairs; 16 bytes so one line holds the four
  /// grandchildren of an eytzinger slot.
  struct DirEnt {
    Key sep;
    Node* leaf;
  };
  std::vector<DirEnt> et_;  ///< 1-based eytzinger mirror of the separators
  Node* root_ = nullptr;
  Node* first_leaf_ = nullptr;
  std::size_t size_ = 0;
  std::size_t leaf_count_ = 0;
  int height_ = 1;
};

}  // namespace dclue::db
