#include "db/tpcc_schema.hpp"

namespace dclue::db {

void TpccDatabase::populate(sim::Rng& rng) {
  for (std::int64_t i = 1; i <= scale_.items; ++i) {
    item.insert(key_i(i), ItemRow{rng.uniform(1.0, 100.0)});
  }
  for (std::int64_t w = 1; w <= scale_.warehouses; ++w) {
    warehouse.insert(key_w(w), WarehouseRow{300'000.0});
    for (std::int64_t i = 1; i <= scale_.items; ++i) {
      stock.insert(key_wi(w, i),
                   StockRow{static_cast<std::int16_t>(rng.uniform_int(10, 100)),
                            0.0, 0, 0});
    }
    for (std::int64_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
      DistrictRow dr;
      dr.next_o_id =
          static_cast<std::int32_t>(scale_.initial_orders_per_district + 1);
      dr.ytd = 30'000.0;
      district.insert(key_wd(w, d), dr);
      for (std::int64_t c = 1; c <= scale_.customers_per_district; ++c) {
        customer.insert(key_wdc(w, d, c), CustomerRow{});
      }
      // Initial orders: the most recent ~1/3 are undelivered new-orders,
      // approximating the spec's initial 900 delivered / 900 pending split.
      for (std::int64_t o = 1; o <= scale_.initial_orders_per_district; ++o) {
        OrderRow orow;
        orow.c_id = static_cast<std::int32_t>(
            rng.uniform_int(1, scale_.customers_per_district));
        const bool delivered = o <= scale_.initial_orders_per_district * 2 / 3;
        orow.carrier_id =
            delivered ? static_cast<std::int8_t>(rng.uniform_int(1, 10)) : 0;
        orow.ol_cnt = static_cast<std::int8_t>(rng.uniform_int(5, 15));
        order.insert(key_wdo(w, d, o), orow);
        customer.find(key_wdc(w, d, orow.c_id))->last_o_id =
            static_cast<std::int32_t>(o);
        for (std::int64_t ol = 1; ol <= orow.ol_cnt; ++ol) {
          OrderLineRow line;
          line.i_id = static_cast<std::int32_t>(rng.uniform_int(1, scale_.items));
          line.supply_w = static_cast<std::int32_t>(w);
          line.quantity = 5;
          line.amount = delivered ? rng.uniform(0.01, 9'999.99) : 0.0;
          line.delivered = delivered;
          order_line.insert(key_wdool(w, d, o, ol), line);
        }
        if (!delivered) new_order.insert(key_wdo(w, d, o), NewOrderRow{});
      }
    }
  }
}

std::uint64_t TpccDatabase::total_data_pages() const {
  return warehouse.distinct_data_pages() + district.distinct_data_pages() +
         customer.distinct_data_pages() + history.distinct_data_pages() +
         new_order.distinct_data_pages() + order.distinct_data_pages() +
         order_line.distinct_data_pages() + item.distinct_data_pages() +
         stock.distinct_data_pages() + warehouse.distinct_index_pages() +
         district.distinct_index_pages() + customer.distinct_index_pages() +
         new_order.distinct_index_pages() + order.distinct_index_pages() +
         order_line.distinct_index_pages() + item.distinct_index_pages() +
         stock.distinct_index_pages();
}

}  // namespace dclue::db
