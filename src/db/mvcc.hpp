#pragma once

/// \file mvcc.hpp
/// Multi-version concurrency control accounting, per the paper's §2.3:
/// timestamp-based versions tracking minimum / maximum / current version
/// numbers per sub-page, with version space drawn from an overflow memory
/// area that steals unpinned buffer-cache pages when it runs low. Reads
/// never lock; they walk the version chain to their snapshot. Version
/// *content* is not duplicated (the row store keeps the current image);
/// the chain length and space pressure are what shape performance.

#include <cstdint>

#include "db/buffer_cache.hpp"
#include "db/table.hpp"
#include "sim/engine.hpp"
#include "sim/flat_map.hpp"
#include "sim/obs/stats.hpp"
#include "sim/small_vec.hpp"

namespace dclue::db {

using Timestamp = std::uint64_t;

class VersionManager {
 public:
  VersionManager(sim::Engine& engine, sim::Bytes overflow_capacity,
                 BufferCache& cache)
      : engine_(engine), capacity_(overflow_capacity), cache_(cache) {}

  /// Record a new version of (page, subpage) of \p bytes at commit time \p ts.
  void create_version(PageId page, int subpage, Timestamp ts, sim::Bytes bytes) {
    auto& chain = chains_[lock_name(page, subpage)];
    chain.push_back(ts);
    in_use_ += bytes;
    versions_created_.record();
    while (in_use_ > capacity_) {
      // Steal an unpinned buffer page into the overflow area.
      auto stolen = cache_.steal_for_versions(1);
      if (stolen.empty()) break;
      capacity_ += kPageBytes;
      pages_stolen_.record();
    }
  }

  /// Number of versions a reader at \p snapshot must skip to find its image
  /// (drives the read-path cost of versioning). Versions append in commit
  /// order, so the chain is sorted: count the suffix > snapshot by binary
  /// search instead of walking it — old snapshots against long chains would
  /// otherwise touch every entry.
  [[nodiscard]] int chain_hops(PageId page, int subpage, Timestamp snapshot) const {
    auto it = chains_.find(lock_name(page, subpage));
    if (it == chains_.end()) return 0;
    const Chain& chain = it->value;
    const Timestamp* base = chain.begin();
    std::size_t len = chain.size();
    if (len == 0) return 0;
    while (len > 1) {  // branchless upper_bound, like the B-tree searches
      const std::size_t half = len >> 1;
      base += base[half - 1] <= snapshot ? half : 0;
      len -= half;
    }
    const std::size_t leq = static_cast<std::size_t>(base - chain.begin()) +
                            (base[0] <= snapshot ? 1 : 0);
    return static_cast<int>(chain.size() - leq);
  }

  [[nodiscard]] Timestamp current_version(PageId page, int subpage) const {
    auto it = chains_.find(lock_name(page, subpage));
    return (it == chains_.end() || it->value.empty()) ? 0 : it->value.back();
  }

  /// Drop versions no active snapshot can see (keeps the newest of each
  /// chain). Returns bytes reclaimed; stolen cache pages are handed back.
  sim::Bytes gc(Timestamp min_active, sim::Bytes bytes_per_version) {
    sim::Bytes freed = 0;
    for (auto it = chains_.begin(); it != chains_.end();) {
      Chain& chain = it->value;
      while (chain.size() > 1 && chain.front() < min_active &&
             chain[1] <= min_active) {
        chain.erase_at(0);
        freed += bytes_per_version;
      }
      if (chain.empty()) {
        it = chains_.erase(it);
      } else {
        ++it;
      }
    }
    in_use_ -= std::min(freed, in_use_);
    while (pages_stolen_.count() > pages_returned_.count() &&
           capacity_ - kPageBytes > base_capacity_floor_ &&
           in_use_ < capacity_ - 2 * kPageBytes) {
      capacity_ -= kPageBytes;
      cache_.restore_capacity(1);
      pages_returned_.record();
    }
    return freed;
  }

  [[nodiscard]] sim::Bytes bytes_in_use() const { return in_use_; }
  [[nodiscard]] sim::Bytes capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t versions_created() const {
    return versions_created_.count();
  }
  [[nodiscard]] std::uint64_t cache_pages_stolen() const {
    return pages_stolen_.count();
  }
  [[nodiscard]] const sim::ProbeStats& probe_stats() const {
    return chains_.probe_stats();
  }

 private:
  /// Commit timestamps, newest last; short chains stay inline (GC keeps
  /// chains near length 1, so the heap spill is the pathological case).
  using Chain = sim::SmallVec<Timestamp, 4>;

  sim::Engine& engine_;
  sim::Bytes capacity_;
  sim::Bytes base_capacity_floor_ = 0;
  BufferCache& cache_;
  sim::FlatMap<LockName, Chain> chains_;
  sim::Bytes in_use_ = 0;
  obs::Counter versions_created_;
  obs::Counter pages_stolen_;
  obs::Counter pages_returned_;
};

}  // namespace dclue::db
