#pragma once

/// \file lock_manager.hpp
/// Exclusive sub-page lock table. Multi-version concurrency control removes
/// read locks entirely (the paper: "MCC avoids any read-locks"), so only
/// writers contend here. Each lock name is globally homed at its directory
/// node; this class implements the grant table at that home — remote
/// requesters reach it through IPC (cluster/fusion.hpp).
///
/// Waiting discipline per the paper's two-phase scheme: a transaction may
/// *wait* on the first lock of its ordered sequence, while conflicts later
/// in the sequence fail fast (release-and-retry at the caller).

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "sim/engine.hpp"
#include "sim/obs/registry.hpp"
#include "sim/obs/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dclue::db {

using TxnToken = std::uint64_t;
using LockName = std::uint64_t;

class LockManager {
 public:
  explicit LockManager(sim::Engine& engine) : engine_(engine) {}
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Immediate acquisition attempt (phase-2 conversion of a latch).
  /// Reentrant: a holder re-acquiring its own lock succeeds.
  bool try_acquire(LockName name, TxnToken owner);

  /// Blocking acquisition with timeout; returns true when granted. Waiters
  /// are granted FIFO on release.
  sim::Task<bool> acquire_wait(LockName name, TxnToken owner,
                               sim::Duration timeout);

  /// Release; ownership transfers to the oldest waiter, if any.
  void release(LockName name, TxnToken owner);

  [[nodiscard]] bool is_held(LockName name) const { return table_.contains(name); }
  [[nodiscard]] std::size_t held_count() const { return table_.size(); }

  /// Re-master locks after a node crash: every lock whose holder matches
  /// \p pred is granted to its oldest live non-matching waiter (matching
  /// waiters are woken ungranted — their transactions are dead), or erased
  /// when no such waiter exists. Returns the number of entries purged.
  template <typename Pred>
  std::size_t purge_if(Pred pred) {
    std::size_t purged = 0;
    for (auto it = table_.begin(); it != table_.end();) {
      Entry& entry = it->second;
      if (!pred(entry.holder)) {
        ++it;
        continue;
      }
      ++purged;
      bool regranted = false;
      while (!entry.waiters.empty()) {
        auto waiter = entry.waiters.front();
        entry.waiters.pop_front();
        if (waiter->abandoned) continue;
        if (pred(waiter->owner)) {
          // Dead transaction's waiter: wake ungranted so its coroutine
          // unwinds instead of parking on a purged lock forever.
          note_waiting(-1);
          waiter->gate->open();
          continue;
        }
        entry.holder = waiter->owner;
        waiter->granted = true;
        note_waiting(-1);
        waiter->gate->open();
        regranted = true;
        break;
      }
      if (regranted) {
        ++it;
      } else {
        it = table_.erase(it);
      }
    }
    return purged;
  }

  /// Count of locks whose current holder matches \p pred (invariant checks:
  /// "no lock is held by a dead node").
  template <typename Pred>
  [[nodiscard]] std::size_t held_matching(Pred pred) const {
    std::size_t n = 0;
    for (const auto& [name, entry] : table_) {
      if (pred(entry.holder)) ++n;
    }
    return n;
  }
  [[nodiscard]] const obs::TimeWeightedAvg& wait_queue_depth() const {
    return wait_queue_depth_;
  }

  /// Bind the lock table's probes under \p prefix ("node0.lock.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    reg.bind(prefix + "wait_queue_depth", &wait_queue_depth_);
    reg.gauge_fn(prefix + "held",
                 [this] { return static_cast<double>(held_count()); });
  }

 private:
  void note_waiting(int delta) {
    waiting_ += delta;
    wait_queue_depth_.record(engine_.now(), waiting_);
  }
  struct Waiter {
    TxnToken owner;
    std::unique_ptr<sim::Gate> gate;
    bool granted = false;
    bool abandoned = false;  ///< timed out; skip when granting
  };
  struct Entry {
    TxnToken holder;
    std::deque<std::shared_ptr<Waiter>> waiters;
  };

  sim::Engine& engine_;
  std::unordered_map<LockName, Entry> table_;
  int waiting_ = 0;  ///< live (non-abandoned) waiters across all locks
  obs::TimeWeightedAvg wait_queue_depth_;
};

inline bool LockManager::try_acquire(LockName name, TxnToken owner) {
  auto [it, inserted] = table_.try_emplace(name, Entry{owner, {}});
  return inserted || it->second.holder == owner;
}

inline sim::Task<bool> LockManager::acquire_wait(LockName name, TxnToken owner,
                                                 sim::Duration timeout) {
  if (try_acquire(name, owner)) co_return true;
  auto& entry = table_[name];
  auto waiter = std::make_shared<Waiter>();
  waiter->owner = owner;
  waiter->gate = std::make_unique<sim::Gate>(engine_);
  entry.waiters.push_back(waiter);
  note_waiting(+1);
  sim::EventHandle timer;
  if (timeout > 0.0) {
    timer = engine_.after(timeout, [this, waiter] {
      if (!waiter->granted) {
        waiter->abandoned = true;
        note_waiting(-1);
        waiter->gate->open();
      }
    });
  }
  co_await waiter->gate->wait();
  timer.cancel();
  co_return waiter->granted;
}

inline void LockManager::release(LockName name, TxnToken owner) {
  auto it = table_.find(name);
  if (it == table_.end() || it->second.holder != owner) return;
  auto& entry = it->second;
  while (!entry.waiters.empty()) {
    auto waiter = entry.waiters.front();
    entry.waiters.pop_front();
    if (waiter->abandoned) continue;
    entry.holder = waiter->owner;
    waiter->granted = true;
    note_waiting(-1);
    waiter->gate->open();
    return;
  }
  table_.erase(it);
}

}  // namespace dclue::db
