#pragma once

/// \file lock_manager.hpp
/// Exclusive sub-page lock table. Multi-version concurrency control removes
/// read locks entirely (the paper: "MCC avoids any read-locks"), so only
/// writers contend here. Each lock name is globally homed at its directory
/// node; this class implements the grant table at that home — remote
/// requesters reach it through IPC (cluster/fusion.hpp).
///
/// Waiting discipline per the paper's two-phase scheme: a transaction may
/// *wait* on the first lock of its ordered sequence, while conflicts later
/// in the sequence fail fast (release-and-retry at the caller).
///
/// Allocation discipline (see DESIGN.md §"DB-tier internals"): the grant
/// table is an open-addressing sim::FlatMap; erases hand slots straight
/// back to the group (or, rarely, a reusable tombstone), so a steady
/// acquire/release cycle settles into zero allocation. Waiter state
/// lives in a per-manager pool indexed by {slot, generation} handles — the
/// shared_ptr<Waiter> + heap Gate pair this replaces cost five allocations
/// per contended wait. A pool slot is freed by the waiting coroutine itself
/// (the last reader of `granted`); the generation counter lets queue entries
/// and timeout timers that outlive the slot detect staleness instead of
/// keeping the allocation alive.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "db/table.hpp"
#include "sim/engine.hpp"
#include "sim/flat_map.hpp"
#include "sim/obs/registry.hpp"
#include "sim/obs/stats.hpp"
#include "sim/small_vec.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dclue::db {

using TxnToken = std::uint64_t;

class LockManager {
 public:
  explicit LockManager(sim::Engine& engine) : engine_(engine) {}
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Immediate acquisition attempt (phase-2 conversion of a latch).
  /// Reentrant: a holder re-acquiring its own lock succeeds.
  bool try_acquire(LockName name, TxnToken owner);

  /// Blocking acquisition with timeout; returns true when granted. Waiters
  /// are granted FIFO on release.
  sim::Task<bool> acquire_wait(LockName name, TxnToken owner,
                               sim::Duration timeout);

  /// Release; ownership transfers to the oldest waiter, if any.
  void release(LockName name, TxnToken owner);

  [[nodiscard]] bool is_held(LockName name) const { return table_.contains(name); }
  [[nodiscard]] std::size_t held_count() const { return table_.size(); }

  /// Re-master locks after a node crash: every lock whose holder matches
  /// \p pred is granted to its oldest live non-matching waiter (matching
  /// waiters are woken ungranted — their transactions are dead), or erased
  /// when no such waiter exists. Returns the number of entries purged.
  template <typename Pred>
  std::size_t purge_if(Pred pred) {
    std::size_t purged = 0;
    for (auto it = table_.begin(); it != table_.end();) {
      Entry& entry = it->value;
      if (!pred(entry.holder)) {
        ++it;
        continue;
      }
      ++purged;
      bool regranted = false;
      while (!entry.waiters.empty()) {
        const WaiterRef ref = entry.waiters.front();
        entry.waiters.erase_at(0);
        Waiter* w = deref(ref);
        if (w == nullptr || w->abandoned) continue;
        if (pred(w->owner)) {
          // Dead transaction's waiter: wake ungranted so its coroutine
          // unwinds instead of parking on a purged lock forever.
          note_waiting(-1);
          wake(*w);
          continue;
        }
        entry.holder = w->owner;
        w->granted = true;
        note_waiting(-1);
        wake(*w);
        regranted = true;
        break;
      }
      if (regranted) {
        ++it;
      } else {
        it = table_.erase(it);
      }
    }
    return purged;
  }

  /// Count of locks whose current holder matches \p pred (invariant checks:
  /// "no lock is held by a dead node").
  template <typename Pred>
  [[nodiscard]] std::size_t held_matching(Pred pred) const {
    std::size_t n = 0;
    for (const auto& slot : table_) {
      if (pred(slot.value.holder)) ++n;
    }
    return n;
  }
  [[nodiscard]] const obs::TimeWeightedAvg& wait_queue_depth() const {
    return wait_queue_depth_;
  }

  /// Bind the lock table's probes under \p prefix ("node0.lock.").
  void register_metrics(obs::MetricsRegistry& reg, std::string_view prefix) {
    reg.bind(std::string(prefix) + "wait_queue_depth", &wait_queue_depth_);
    reg.gauge_fn(std::string(prefix) + "held",
                 [this] { return static_cast<double>(held_count()); });
  }

  [[nodiscard]] const sim::ProbeStats& probe_stats() const {
    return table_.probe_stats();
  }

  /// Pool introspection for tests: total slots ever created / currently free.
  /// Steady-state contention should reuse slots, not mint new ones.
  [[nodiscard]] std::size_t waiter_pool_size() const { return pool_.size(); }
  [[nodiscard]] std::size_t waiter_pool_free() const {
    return pool_free_.size();
  }

 private:
  void note_waiting(int delta) {
    waiting_ += delta;
    wait_queue_depth_.record(engine_.now(), waiting_);
  }

  /// Generation-checked handle into the waiter pool. Queue entries and timer
  /// closures hold these; a mismatched generation means the wait already
  /// concluded and the slot was recycled.
  struct WaiterRef {
    std::uint32_t idx;
    std::uint32_t gen;
  };

  struct Waiter {
    TxnToken owner = 0;
    std::uint32_t gen = 0;
    bool granted = false;
    bool abandoned = false;  ///< timed out; skip when granting
    bool open = false;       ///< wake already signalled
    std::coroutine_handle<> parked;
  };

  struct Entry {
    TxnToken holder;
    sim::SmallVec<WaiterRef, 4> waiters;
  };

  [[nodiscard]] Waiter* deref(WaiterRef ref) {
    Waiter& w = pool_[ref.idx];
    return w.gen == ref.gen ? &w : nullptr;
  }

  WaiterRef alloc_waiter(TxnToken owner) {
    std::uint32_t idx;
    if (!pool_free_.empty()) {
      idx = pool_free_.back();
      pool_free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    Waiter& w = pool_[idx];
    w.owner = owner;
    w.granted = false;
    w.abandoned = false;
    w.open = false;
    w.parked = nullptr;
    return WaiterRef{idx, w.gen};
  }

  /// Recycle a slot; bumping the generation invalidates outstanding refs.
  void free_waiter(std::uint32_t idx) {
    ++pool_[idx].gen;
    pool_free_.push_back(idx);
  }

  /// Signal a waiter's one-shot wake point. Resumption is deferred through
  /// the engine, exactly like sim::Gate::open(), so grant ordering relative
  /// to other events is unchanged.
  void wake(Waiter& w) {
    if (w.open) return;
    w.open = true;
    if (w.parked) sim::detail::resume_via_engine(engine_, w.parked);
  }

  /// Awaitable bound to one pool slot; parks the coroutine until wake().
  struct WaitPoint {
    LockManager& mgr;
    std::uint32_t idx;
    [[nodiscard]] bool await_ready() const noexcept {
      return mgr.pool_[idx].open;
    }
    void await_suspend(std::coroutine_handle<> h) {
      mgr.pool_[idx].parked = h;
    }
    void await_resume() const noexcept {}
  };

  sim::Engine& engine_;
  sim::FlatMap<LockName, Entry> table_;
  std::vector<Waiter> pool_;
  std::vector<std::uint32_t> pool_free_;
  int waiting_ = 0;  ///< live (non-abandoned) waiters across all locks
  obs::TimeWeightedAvg wait_queue_depth_;
};

inline bool LockManager::try_acquire(LockName name, TxnToken owner) {
  auto [it, inserted] = table_.try_emplace(name, Entry{owner, {}});
  return inserted || it->value.holder == owner;
}

inline sim::Task<bool> LockManager::acquire_wait(LockName name, TxnToken owner,
                                                 sim::Duration timeout) {
  if (try_acquire(name, owner)) co_return true;
  const WaiterRef ref = alloc_waiter(owner);
  table_.find(name)->value.waiters.push_back(ref);
  note_waiting(+1);
  sim::EventHandle timer;
  if (timeout > 0.0) {
    timer = engine_.after(timeout, [this, ref] {
      Waiter* w = deref(ref);
      if (w != nullptr && !w->granted) {
        w->abandoned = true;
        note_waiting(-1);
        wake(*w);
      }
    });
  }
  co_await WaitPoint{*this, ref.idx};
  timer.cancel();
  const bool granted = pool_[ref.idx].granted;
  free_waiter(ref.idx);
  co_return granted;
}

inline void LockManager::release(LockName name, TxnToken owner) {
  auto it = table_.find(name);
  if (it == table_.end() || it->value.holder != owner) return;
  Entry& entry = it->value;
  while (!entry.waiters.empty()) {
    const WaiterRef ref = entry.waiters.front();
    entry.waiters.erase_at(0);
    Waiter* w = deref(ref);
    if (w == nullptr || w->abandoned) continue;
    entry.holder = w->owner;
    w->granted = true;
    note_waiting(-1);
    wake(*w);
    return;
  }
  table_.erase_compact(it);
}

}  // namespace dclue::db
