#pragma once

/// \file cluster.hpp
/// Top-level experiment runner: builds the Fig-1 topology, the server nodes,
/// client terminal fleets and optional FTP cross traffic from a
/// ClusterConfig; wires up all IPC and iSCSI sessions; runs warmup and
/// measurement windows; and produces the RunReport the benches print.

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/node_stats.hpp"
#include "core/report.hpp"
#include "core/node.hpp"
#include "db/tpcc_schema.hpp"
#include "net/topology.hpp"
#include "proto/ftp.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "workload/client.hpp"

namespace dclue::core {

class FaultInjector;

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  /// Populate, connect, warm up, measure; returns the collected report.
  RunReport run();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] db::TpccDatabase& database() { return *db_; }
  [[nodiscard]] Node& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] workload::TerminalFleet& fleet(int i) {
    return *fleets_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int num_fleets() const { return static_cast<int>(fleets_.size()); }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] net::Topology& topology() { return *topo_; }

  /// The one registration / reset / snapshot surface for every collector in
  /// this cluster. Populated at construction; run() resets its window at the
  /// warmup boundary and collect() attaches its snapshot to the RunReport.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return registry_; }

  // --- fault injection -------------------------------------------------------
  /// Crash-stop node \p id: liveness off, access links down, every in-flight
  /// IPC exchange failed cluster-wide, its locks re-mastered, its directory
  /// and cache state purged. Idempotent while the node is down.
  void crash_node(int id);
  /// Bring node \p id back: links up, run_recovery() on a surviving
  /// coordinator, liveness restored only once redo completes.
  void restart_node(int id);
  [[nodiscard]] bool node_alive(int id) { return node(id).alive(); }
  /// Null unless the config carried a non-empty fault_spec.
  [[nodiscard]] FaultInjector* fault_injector() { return injector_.get(); }
  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] double recovery_seconds() const { return recovery_seconds_; }
  [[nodiscard]] std::uint64_t locks_purged() const { return locks_purged_; }
  [[nodiscard]] std::uint64_t directory_purged() const { return dir_purged_; }
  [[nodiscard]] std::uint64_t cache_invalidated() const {
    return cache_invalidated_;
  }

 private:
  void build_topology();
  void build_nodes();
  void build_clients();
  void build_cross_traffic();
  void build_fault_injector();
  void register_metrics();
  void register_fault_metrics();
  void prewarm();
  sim::DetachedTask connect_everything();
  sim::DetachedTask version_gc_loop();
  void reset_all_stats();
  RunReport collect(sim::Duration measured);

  ClusterConfig cfg_;
  sim::Engine engine_;
  sim::RngFactory rngs_;
  std::unique_ptr<db::TpccDatabase> db_;
  std::unique_ptr<net::Topology> topo_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<net::TcpStack>> client_stacks_;
  std::vector<std::unique_ptr<workload::TerminalFleet>> fleets_;
  std::vector<std::unique_ptr<net::TcpStack>> xtra_stacks_;
  std::vector<std::unique_ptr<proto::FtpServer>> ftp_servers_;
  std::vector<std::unique_ptr<proto::FtpClient>> ftp_clients_;
  std::unique_ptr<sim::Gate> ready_;
  std::uint64_t global_clock_ = 1;
  obs::MetricsRegistry registry_;
  std::unique_ptr<FaultInjector> injector_;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t recoveries_ = 0;
  double recovery_seconds_ = 0.0;
  std::uint64_t locks_purged_ = 0;
  std::uint64_t dir_purged_ = 0;
  std::uint64_t cache_invalidated_ = 0;
};

}  // namespace dclue::core
