#pragma once

/// \file cluster.hpp
/// Top-level experiment runner: builds the Fig-1 topology, the server nodes,
/// client terminal fleets and optional FTP cross traffic from a
/// ClusterConfig; wires up all IPC and iSCSI sessions; runs warmup and
/// measurement windows; and produces the RunReport the benches print.

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/node_stats.hpp"
#include "core/report.hpp"
#include "core/node.hpp"
#include "db/tpcc_schema.hpp"
#include "net/topology.hpp"
#include "proto/ftp.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "workload/client.hpp"

namespace dclue::core {

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  /// Populate, connect, warm up, measure; returns the collected report.
  RunReport run();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] db::TpccDatabase& database() { return *db_; }
  [[nodiscard]] Node& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] workload::TerminalFleet& fleet(int i) {
    return *fleets_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int num_fleets() const { return static_cast<int>(fleets_.size()); }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] net::Topology& topology() { return *topo_; }

  /// The one registration / reset / snapshot surface for every collector in
  /// this cluster. Populated at construction; run() resets its window at the
  /// warmup boundary and collect() attaches its snapshot to the RunReport.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return registry_; }

 private:
  void build_topology();
  void build_nodes();
  void build_clients();
  void build_cross_traffic();
  void register_metrics();
  void prewarm();
  sim::DetachedTask connect_everything();
  sim::DetachedTask version_gc_loop();
  void reset_all_stats();
  RunReport collect(sim::Duration measured);

  ClusterConfig cfg_;
  sim::Engine engine_;
  sim::RngFactory rngs_;
  std::unique_ptr<db::TpccDatabase> db_;
  std::unique_ptr<net::Topology> topo_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<net::TcpStack>> client_stacks_;
  std::vector<std::unique_ptr<workload::TerminalFleet>> fleets_;
  std::vector<std::unique_ptr<net::TcpStack>> xtra_stacks_;
  std::vector<std::unique_ptr<proto::FtpServer>> ftp_servers_;
  std::vector<std::unique_ptr<proto::FtpClient>> ftp_clients_;
  std::unique_ptr<sim::Gate> ready_;
  std::uint64_t global_clock_ = 1;
  obs::MetricsRegistry registry_;
};

}  // namespace dclue::core
