#include "core/recovery.hpp"

#include <algorithm>
#include <cmath>

namespace dclue::core {

void CheckpointManager::start() {
  for (int i = 0; i < cluster_.config().nodes; ++i) node_loop(i);
}

std::uint64_t CheckpointManager::checkpoints_taken() const {
  std::uint64_t total = 0;
  for (int i = 0; i < cluster_.config().nodes; ++i) {
    total += const_cast<Cluster&>(cluster_).node(i).log_manager().checkpoints_taken();
  }
  return total;
}

sim::DetachedTask CheckpointManager::node_loop(int node_id) {
  auto& engine = cluster_.engine();
  Node& node = cluster_.node(node_id);
  sim::Rng rng(0xC0FFEE + static_cast<std::uint64_t>(node_id));
  for (;;) {
    co_await sim::delay_for(engine, interval_);
    auto& log = node.log_manager();
    // Write-back volume follows this node's own page mutations; under
    // centralized logging the log lives elsewhere but the dirty pages are
    // still flushed by their owner.
    const sim::Bytes dirty_bytes = node.stats().dirty_bytes_accum;
    node.stats().dirty_bytes_accum = 0;
    // Fuzzy checkpoint: write back roughly one page per page-worth of log
    // generated since the last checkpoint (bounded per cycle), with the
    // write-back IO batched across the array like a real page cleaner.
    const auto pages = std::min<sim::Bytes>(dirty_bytes / db::kPageBytes, 2'000);
    for (sim::Bytes p = 0; p < pages; p += 16) {
      auto wg = std::make_shared<sim::WaitGroup>(engine);
      const sim::Bytes batch = std::min<sim::Bytes>(16, pages - p);
      for (sim::Bytes b = 0; b < batch; ++b) {
        wg->add();
        sim::spawn([](Node& node, std::int64_t blk,
                      std::shared_ptr<sim::WaitGroup> wg) -> sim::Task<void> {
          co_await node.data_disk().write(blk, db::kPageBytes);
          wg->done();
        }(node, rng.uniform_int(0, 1 << 17), wg));
      }
      co_await wg->wait();
      pages_written_ += batch;
    }
    // Checkpoint record, made durable like any commit.
    log.append(512);
    co_await log.flush();
    log.mark_checkpoint();
    log.count_checkpoint();
  }
}

sim::Task<RecoveryReport> run_recovery(Cluster& cluster, int failed_node,
                                       RecoveryCosts costs) {
  const auto& cfg = cluster.config();
  auto& engine = cluster.engine();
  const int coordinator = (failed_node + 1) % cfg.nodes;
  Node& coord = cluster.node(coordinator);
  RecoveryReport report;
  const sim::Time start = engine.now();

  // --- gather: read the relevant log and ship it to the coordinator -------
  auto ship = [&](int source, sim::Bytes bytes) -> sim::Task<void> {
    if (bytes <= 0 || source == coordinator) co_return;
    // Stream in 64 KB data messages over the live IPC fabric.
    sim::Bytes remaining = bytes;
    while (remaining > 0) {
      const sim::Bytes chunk = std::min<sim::Bytes>(remaining, sim::kilobytes(64));
      remaining -= chunk;
      const std::uint64_t id = coord.ipc().new_req_id();
      cluster.node(source).ipc().send_data(coordinator, cluster::kBlockTransfer,
                                           chunk, nullptr, id);
      co_await coord.ipc().await_reply(id);
    }
  };

  if (cfg.central_logging && cfg.nodes > 1) {
    // One sequential scan of the central log (node 0).
    Node& log_node = cluster.node(0);
    const sim::Bytes bytes = log_node.log_manager().bytes_since_checkpoint();
    report.log_bytes = bytes;
    co_await log_node.log_disk().read(0, std::max<sim::Bytes>(bytes, 1));
    co_await ship(0, bytes);
  } else {
    // "Obtain logs from all nodes": every surviving node scans its own log
    // and ships it; the failed node's log disk is assumed readable (shared
    // or dual-ported), as Oracle-style recovery requires.
    for (int i = 0; i < cfg.nodes; ++i) {
      const sim::Bytes bytes = cluster.node(i).log_manager().bytes_since_checkpoint();
      report.log_bytes += bytes;
      co_await cluster.node(i).log_disk().read(0, std::max<sim::Bytes>(bytes, 1));
      co_await ship(i, bytes);
    }
  }
  report.records =
      static_cast<std::uint64_t>(report.log_bytes / costs.record_bytes);
  report.gather_seconds = engine.now() - start;

  // --- merge: timestamp sort across per-node logs (local logging only) ----
  const sim::Time merge_start = engine.now();
  if (!cfg.central_logging && cfg.nodes > 1 && report.records > 1) {
    const double n = static_cast<double>(report.records);
    const double pl = costs.merge_per_record * n * std::log2(n);
    co_await coord.processor().compute(pl, cpu::JobClass::kApplication, 0);
  }
  report.merge_seconds = engine.now() - merge_start;

  // --- redo: apply records, re-fetching a fraction of pages ----------------
  const sim::Time redo_start = engine.now();
  co_await coord.processor().compute(
      costs.redo_per_record * static_cast<double>(report.records),
      cpu::JobClass::kApplication, 0);
  const auto fetches = static_cast<sim::Bytes>(
      costs.page_fetch_fraction * static_cast<double>(report.records));
  sim::Rng rng(0xFEED);
  // Redo prefetches pages with deep IO concurrency (recovery is the one
  // consumer that can saturate the whole array).
  for (sim::Bytes f = 0; f < fetches; f += 64) {
    auto wg = std::make_shared<sim::WaitGroup>(engine);
    const sim::Bytes batch = std::min<sim::Bytes>(64, fetches - f);
    for (sim::Bytes b = 0; b < batch; ++b) {
      wg->add();
      sim::spawn([](Node& coord, std::int64_t blk,
                    std::shared_ptr<sim::WaitGroup> wg) -> sim::Task<void> {
        co_await coord.data_disk().read(blk, db::kPageBytes);
        wg->done();
      }(coord, rng.uniform_int(0, 1 << 17), wg));
    }
    co_await wg->wait();
  }
  report.redo_seconds = engine.now() - redo_start;
  report.total_seconds = engine.now() - start;
  co_return report;
}

}  // namespace dclue::core
