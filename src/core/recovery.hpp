#pragma once

/// \file recovery.hpp
/// Checkpointing and crash-recovery extension. DCLUE deliberately omitted
/// failure recovery and checkpointing ("not essential for our purposes"),
/// but the paper motivates Fig 9 with exactly this trade-off: local
/// per-node logging performs better, yet "may make rollback very complex
/// since the recovery procedure would have to obtain logs from all nodes,
/// sort them by timestamp and then do the rollback. Centralized logging
/// makes recovery easier but at the cost of a potential bottleneck during
/// normal operation." This module quantifies both sides:
///
///  * CheckpointManager — a per-node fuzzy-checkpoint loop: periodically
///    writes the accumulated dirty pages back to the data store, appends a
///    checkpoint record, and marks the log, bounding redo work (and adding
///    the background load the paper's runs avoided).
///  * run_recovery — simulates recovering a failed node on a surviving
///    coordinator: gather the relevant log (one sequential read from the
///    central log node, or a read + network ship from *every* node followed
///    by a timestamp merge-sort under local logging), then redo it.

#include <memory>

#include "core/cluster.hpp"

namespace dclue::core {

/// Per-operation path lengths of the recovery machinery (unscaled).
struct RecoveryCosts {
  double redo_per_record = 8'000.0;     ///< apply one log record
  double merge_per_record = 400.0;      ///< per-record share of the k-way merge
  sim::Bytes record_bytes = 128;        ///< average log record size
  double page_fetch_fraction = 0.10;    ///< redo records needing a page read
};

struct RecoveryReport {
  double gather_seconds = 0.0;  ///< scaled: log reads + shipping
  double merge_seconds = 0.0;   ///< scaled: timestamp sort (local logging only)
  double redo_seconds = 0.0;    ///< scaled: applying the records
  double total_seconds = 0.0;
  sim::Bytes log_bytes = 0;     ///< bytes of log replayed
  std::uint64_t records = 0;
};

/// Periodic fuzzy checkpoints for every node of \p cluster. Started by the
/// recovery bench (the paper's base runs carry no checkpoint load).
class CheckpointManager {
 public:
  CheckpointManager(Cluster& cluster, sim::Duration interval)
      : cluster_(cluster), interval_(interval) {}

  /// Spawn the per-node checkpoint loops.
  void start();

  [[nodiscard]] std::uint64_t checkpoints_taken() const;
  [[nodiscard]] sim::Bytes pages_written() const { return pages_written_; }

 private:
  sim::DetachedTask node_loop(int node);

  Cluster& cluster_;
  sim::Duration interval_;
  sim::Bytes pages_written_ = 0;
};

/// Simulate recovering \p failed_node on the next surviving node. Must be
/// called after Cluster::run() (the fabric stays live); returns when redo
/// completes. \p costs are unscaled path lengths.
sim::Task<RecoveryReport> run_recovery(Cluster& cluster, int failed_node,
                                       RecoveryCosts costs = {});

}  // namespace dclue::core
