#pragma once

/// \file node.hpp
/// One clustered-DBMS server node: the paper's P4 DP platform model, the
/// unified-fabric TCP stack, data and log disks, iSCSI target and
/// initiators, buffer cache, the node's share of the lock and directory
/// services, MVCC version area, WAL, and the transaction execution engine
/// fed by client-server requests.

#include <memory>
#include <vector>

#include "cluster/directory.hpp"
#include "cluster/fusion.hpp"
#include "cluster/ipc.hpp"
#include "core/config.hpp"
#include "core/node_stats.hpp"
#include "cpu/memory_system.hpp"
#include "cpu/processor.hpp"
#include "db/buffer_cache.hpp"
#include "db/lock_manager.hpp"
#include "db/log_manager.hpp"
#include "db/mvcc.hpp"
#include "db/tpcc_schema.hpp"
#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "proto/iscsi.hpp"
#include "storage/disk_array.hpp"
#include "workload/client.hpp"
#include "workload/tpcc_txn.hpp"

namespace dclue::core {

class Node {
 public:
  Node(sim::Engine& engine, const ClusterConfig& cfg, int id, net::Nic& nic,
       db::TpccDatabase& db, std::uint64_t* global_clock,
       const sim::RngFactory& rngs);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Start IPC / iSCSI listeners for every would-be peer and the DB server
  /// port. Call before any peer connects.
  void start_listeners();

  /// Peer-facing ports: node j listens for node i on these.
  static std::uint16_t ipc_port_for(int connector) {
    return static_cast<std::uint16_t>(7000 + connector);
  }
  static std::uint16_t iscsi_port_for(int connector) {
    return static_cast<std::uint16_t>(9000 + connector);
  }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] net::TcpStack& tcp() { return *tcp_; }
  [[nodiscard]] cluster::IpcService& ipc() { return *ipc_; }
  [[nodiscard]] cluster::FusionLayer& fusion() { return *fusion_; }
  [[nodiscard]] proto::IscsiInitiator& iscsi_initiator(int target) {
    return *iscsi_initiators_[static_cast<std::size_t>(target)];
  }
  [[nodiscard]] db::LogManager& log_manager() { return *log_; }
  [[nodiscard]] storage::Disk& log_disk() { return *log_disk_; }
  [[nodiscard]] cpu::Processor& processor() { return *proc_; }
  [[nodiscard]] cpu::MemorySystem& memory() { return *mem_; }
  [[nodiscard]] db::VersionManager& versions() { return *versions_; }
  [[nodiscard]] db::BufferCache& cache() { return *cache_; }
  [[nodiscard]] cluster::DirectoryService& directory() { return *directory_; }
  [[nodiscard]] db::LockManager& locks() { return *locks_; }
  [[nodiscard]] storage::DiskArray& data_disk() { return *data_disk_; }
  [[nodiscard]] proto::IscsiTarget& iscsi_target() { return *iscsi_target_; }
  [[nodiscard]] NodeStats& stats() { return stats_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }

  /// Crash-stop liveness. While false the executor aborts every transaction
  /// at its next alive check, so a crashed node applies no writes and holds
  /// no locks beyond the purge. Flipped by Cluster::crash_node/restart_node.
  [[nodiscard]] bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  void reset_stats();

  /// Bind every collector this node owns (stats, CPU, TCP, IPC classes,
  /// lock table, disks, cache and memory-system gauges) under "node<id>.".
  void register_metrics(obs::MetricsRegistry& reg);

 private:
  sim::DetachedTask ipc_accept(int peer, net::TcpListener& listener);
  sim::DetachedTask db_accept(net::TcpListener& listener);
  sim::DetachedTask db_session(std::shared_ptr<net::TcpConnection> conn);

  sim::Engine& engine_;
  const ClusterConfig cfg_;
  int id_;

  std::unique_ptr<cpu::MemorySystem> mem_;
  std::unique_ptr<cpu::Processor> proc_;
  std::unique_ptr<net::TcpStack> tcp_;
  std::unique_ptr<storage::DiskArray> data_disk_;
  std::unique_ptr<storage::Disk> log_disk_;
  std::unique_ptr<proto::IscsiTarget> iscsi_target_;
  std::vector<std::unique_ptr<proto::IscsiInitiator>> iscsi_initiators_;
  std::unique_ptr<db::BufferCache> cache_;
  std::unique_ptr<cluster::DirectoryService> directory_;
  std::unique_ptr<db::LockManager> locks_;
  std::unique_ptr<db::VersionManager> versions_;
  std::unique_ptr<db::LogManager> log_;
  std::unique_ptr<cluster::IpcService> ipc_;
  std::unique_ptr<cluster::FusionLayer> fusion_;
  std::unique_ptr<workload::TpccExecutor> executor_;
  sim::Rng rng_;
  NodeStats stats_;
  cpu::ThreadId next_thread_ = 1;
  bool alive_ = true;
};

}  // namespace dclue::core
