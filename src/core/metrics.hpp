#pragma once

/// \file metrics.hpp
/// Everything the paper's figures plot, collected per node and aggregated
/// per run. All quantities are measured from the functioning simulation
/// (DCLUE's philosophy) over the post-warmup window.

#include <array>
#include <cstdint>
#include <string>

#include "sim/stats.hpp"

namespace dclue::core {

/// Per-node measurement accumulators.
struct NodeStats {
  // Transactions
  sim::Counter txns_committed;
  sim::Counter txns_aborted;
  sim::Counter new_orders_committed;

  // IPC (cache fusion + lock + log traffic)
  sim::Counter ipc_control_sent;
  sim::Counter ipc_data_sent;
  std::int64_t ipc_control_bytes = 0;
  std::int64_t ipc_data_bytes = 0;
  sim::Tally control_msg_delay;  ///< send->receive end-to-end

  // Locking
  sim::Counter lock_acquisitions;
  sim::Counter lock_waits;
  sim::Counter lock_failures;  ///< release-and-retry events
  sim::Tally lock_wait_time;

  // Buffer cache / storage
  sim::Counter buffer_hits;
  sim::Counter buffer_misses;
  sim::Counter remote_fetches;  ///< pages served from another node's cache
  std::array<std::uint64_t, 16> remote_by_table{};  ///< indexed by TableId
  std::array<std::uint64_t, 16> remote_index_by_table{};
  std::array<std::uint64_t, 16> disk_by_table{};
  std::array<std::uint64_t, 16> disk_index_by_table{};
  sim::Counter disk_reads;
  sim::Counter iscsi_reads;

  // Transaction time breakdown: where a transaction's latency goes
  // (all values in scaled seconds, one sample per committed transaction).
  sim::Tally t_total;
  sim::Tally t_phase1;     ///< reads/latches incl. page fetches
  sim::Tally t_locks;      ///< phase-2 global lock conversion (+retries)
  sim::Tally t_log;        ///< WAL flush at commit
  sim::Tally t_apply;      ///< version creation + row mutation + commit work

  // Dirty-page production since the last checkpoint (bytes of log written
  // by transactions that mutated pages at THIS node, independent of where
  // the log itself is stored). Consumed by the checkpoint extension.
  sim::Bytes dirty_bytes_accum = 0;

  // Live stage gauges (where in-flight transactions currently sit); purely
  // diagnostic, not part of the paper's figures.
  int in_phase1 = 0;
  int in_fusion = 0;
  int in_lock_wait = 0;
  int in_log_flush = 0;
  int in_dir_rpc = 0;
  int in_block_wait = 0;
  int in_disk = 0;
  int in_inflight_wait = 0;

  void reset() {
    const int p1 = in_phase1, fu = in_fusion, lw = in_lock_wait, lf = in_log_flush;
    const int dr = in_dir_rpc, bw = in_block_wait, dk = in_disk, iw = in_inflight_wait;
    const sim::Bytes dirty = dirty_bytes_accum;
    *this = NodeStats{};
    dirty_bytes_accum = dirty;
    in_phase1 = p1;
    in_fusion = fu;
    in_lock_wait = lw;
    in_log_flush = lf;
    in_dir_rpc = dr;
    in_block_wait = bw;
    in_disk = dk;
    in_inflight_wait = iw;
  }
};

/// Aggregated run outcome, scaled back to original-system units.
struct RunReport {
  int nodes = 0;
  double affinity = 0.0;
  double measure_seconds = 0.0;  ///< scaled sim time measured

  double tpmc = 0.0;              ///< new-orders/min, unscaled equivalent
  double txn_rate = 0.0;          ///< all txns/sec, scaled domain
  double txns = 0.0;

  double ipc_control_per_txn = 0.0;
  double ipc_data_per_txn = 0.0;
  double control_msg_delay_ms = 0.0;  ///< unscaled ms
  double lock_waits_per_txn = 0.0;
  double lock_wait_time_ms = 0.0;     ///< unscaled ms
  double lock_failures_per_txn = 0.0;
  double buffer_hit_ratio = 0.0;
  double disk_reads_per_txn = 0.0;
  double remote_fetch_per_txn = 0.0;

  double avg_active_threads = 0.0;
  double avg_context_switch_cycles = 0.0;
  double avg_cpi = 0.0;
  double cpu_utilization = 0.0;

  double inter_lata_mbps = 0.0;  ///< unscaled equivalent DBMS+cross traffic
  std::uint64_t fabric_drops = 0;
  double abort_rate = 0.0;

  // Latency budget of an average committed transaction (unscaled ms).
  double txn_ms = 0.0;
  double txn_phase1_ms = 0.0;
  double txn_lock_ms = 0.0;
  double txn_log_ms = 0.0;
  double txn_apply_ms = 0.0;

  double ftp_carried_mbps = 0.0;  ///< unscaled

  // Client-side accounting
  double business_txns = 0.0;
  std::uint64_t admission_drops = 0;
  std::uint64_t client_conn_failures = 0;
};

}  // namespace dclue::core
