#include "core/cluster.hpp"

#include <algorithm>

#include "cluster/partition.hpp"
#include "core/fault_injector.hpp"
#include "core/recovery.hpp"
#include "sim/obs/trace.hpp"

namespace dclue::core {

Cluster::Cluster(ClusterConfig cfg) : cfg_(std::move(cfg)), rngs_(cfg_.seed) {
  db::TpccScale scale;
  scale.warehouses = cfg_.warehouses();
  scale.customers_per_district = cfg_.customers_per_district;
  scale.items = cfg_.items;
  scale.district_subpage_override = cfg_.district_subpage_bytes;
  db_ = std::make_unique<db::TpccDatabase>(scale);
  // Populate before building nodes: buffer-cache capacities are sized from
  // the real table footprint.
  sim::Rng pop_rng = rngs_.stream("populate");
  db_->populate(pop_rng);
  ready_ = std::make_unique<sim::Gate>(engine_);
  build_topology();
  build_nodes();
  build_clients();
  build_cross_traffic();
  register_metrics();
  build_fault_injector();
}

Cluster::~Cluster() = default;

void Cluster::build_topology() {
  net::TopologyParams tp;
  tp.latas = cfg_.latas();
  tp.servers_per_lata = cfg_.servers_per_lata();
  tp.client_hosts = std::max(1, cfg_.nodes / 4);
  const bool cross_traffic = cfg_.ftp.offered_load_mbps > 0.0;
  tp.extra_client_hosts = cross_traffic ? 1 : 0;
  tp.extra_servers_per_lata = cross_traffic ? 1 : 0;

  tp.host_link_rate = sim::gbps(1) / cfg_.scale;
  tp.inter_lata_rate = (cfg_.fast_inter_lata ? sim::gbps(10) : sim::gbps(1)) / cfg_.scale;
  tp.host_link_prop = sim::microseconds(5) * cfg_.scale;
  tp.inter_lata_prop = sim::microseconds(5) * cfg_.scale;
  tp.extra_inter_lata_latency = cfg_.extra_inter_lata_latency * cfg_.scale;

  tp.qos.ecn_mark_threshold_bytes =
      cfg_.ecn_marking ? sim::kilobytes(32) : 0;
  tp.qos.scheduler = cfg_.qos.scheduler;
  tp.qos.wfq_weight = cfg_.qos.wfq_weight;
  if (cfg_.qos.wred) tp.qos.drop = net::DropPolicy::kWred;
  if (cfg_.qos.af_police_mbps > 0.0) {
    tp.qos.police[static_cast<std::size_t>(net::Dscp::kAF21)] = {
        cfg_.qos.af_police_mbps * 1e6 / cfg_.scale, sim::kilobytes(64)};
  }

  net::RouterParams router;
  router.forwarding_rate_pps = cfg_.router_pps_at_scale100 * 100.0 / cfg_.scale;
  tp.inner_router = router;
  tp.outer_router = router;

  topo_ = std::make_unique<net::Topology>(engine_, tp);
}

void Cluster::build_nodes() {
  for (int i = 0; i < cfg_.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(engine_, cfg_, i, topo_->server_nic(i),
                                            *db_, &global_clock_, rngs_));
  }
  for (auto& node : nodes_) node->start_listeners();

  if (cfg_.central_logging && cfg_.nodes > 1) {
    // Fig 9: node 0 performs all logging; other nodes ship flushes over IPC.
    Node* log_node = nodes_[0].get();
    log_node->fusion().set_log_writer([log_node](sim::Bytes bytes) -> sim::Task<void> {
      log_node->log_manager().append(bytes);
      co_await log_node->log_manager().flush();
    });
    for (int i = 1; i < cfg_.nodes; ++i) {
      Node* node = nodes_[static_cast<std::size_t>(i)].get();
      node->log_manager().set_remote_flush(
          [node](sim::Bytes bytes) -> sim::Task<void> {
            co_await node->fusion().remote_log_flush(0, bytes);
          });
    }
  }
}

void Cluster::build_clients() {
  std::vector<net::Address> server_addrs;
  for (int i = 0; i < cfg_.nodes; ++i) {
    server_addrs.push_back(topo_->server_nic(i).address());
  }
  const std::int64_t warehouses = db_->scale().warehouses;
  const int nodes = cfg_.nodes;
  auto owner = [warehouses, nodes](std::int64_t w) {
    const std::int64_t idx = std::clamp<std::int64_t>(w - 1, 0, warehouses - 1);
    return static_cast<int>(idx * nodes / warehouses);
  };

  const int total_terminals = cfg_.nodes * cfg_.terminals_per_node;
  const int hosts = topo_->num_clients();
  int assigned = 0;
  for (int h = 0; h < hosts; ++h) {
    auto stack = std::make_unique<net::TcpStack>(
        engine_, topo_->client_nic(h), net::TcpParams{.timer_scale = 0.01 * cfg_.scale},
        cfg_.hw_tcp ? net::TcpCostModel::hardware() : net::TcpCostModel::software(),
        [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; });
    const int share = (total_terminals - assigned) / (hosts - h);
    workload::TerminalFleetParams fp;
    fp.terminals = share;
    fp.first_terminal_index = assigned;
    fp.think_time = cfg_.think_time * cfg_.scale;
    fp.open_loop_rate =
        cfg_.open_loop_bt_rate_per_node * cfg_.nodes / hosts;
    fp.affinity = cfg_.affinity;
    fp.warehouses = warehouses;
    fp.nodes = cfg_.nodes;
    fp.server_addrs = server_addrs;
    fp.owner_of_warehouse = owner;
    fp.start_gate = ready_.get();
    fleets_.push_back(std::make_unique<workload::TerminalFleet>(
        engine_, *stack, db_->scale(), std::move(fp), rngs_));
    client_stacks_.push_back(std::move(stack));
    assigned += share;
  }
}

void Cluster::build_cross_traffic() {
  if (cfg_.ftp.offered_load_mbps <= 0.0) return;
  // Extra servers inside each LATA; extra client at the outer router, so FTP
  // flows share the inter-LATA links with DBMS traffic (Fig 1).
  std::vector<net::Address> ftp_servers;
  for (int s = 0; s < topo_->num_extra_servers(); ++s) {
    auto stack = std::make_unique<net::TcpStack>(
        engine_, topo_->extra_server_nic(s),
        net::TcpParams{.timer_scale = 0.01 * cfg_.scale}, net::TcpCostModel::hardware(),
        [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; });
    ftp_servers_.push_back(std::make_unique<proto::FtpServer>(engine_, *stack, 21));
    ftp_servers.push_back(topo_->extra_server_nic(s).address());
    xtra_stacks_.push_back(std::move(stack));
  }
  auto stack = std::make_unique<net::TcpStack>(
      engine_, topo_->extra_client_nic(0),
      net::TcpParams{.timer_scale = 0.01 * cfg_.scale}, net::TcpCostModel::hardware(),
      [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; });
  proto::FtpTrafficParams fparams;
  fparams.offered_load_bps = cfg_.ftp.offered_load_mbps * 1e6 / cfg_.scale;
  fparams.dscp = cfg_.ftp.high_priority ? net::Dscp::kAF21 : net::Dscp::kBestEffort;
  ftp_clients_.push_back(std::make_unique<proto::FtpClient>(
      engine_, *stack, std::move(ftp_servers), fparams, rngs_.stream("ftp")));
  xtra_stacks_.push_back(std::move(stack));
}

void Cluster::build_fault_injector() {
  if (cfg_.fault_spec.empty()) return;
  sim::fault::FaultSpec spec = sim::fault::parse_fault_spec(cfg_.fault_spec);
  // Unspecified windows default to the measurement window: faults start at
  // the warmup boundary and the last 20% is left fault-free so recoveries
  // finish inside the run.
  if (spec.start < 0.0) spec.start = cfg_.warmup;
  if (spec.span <= 0.0) spec.span = 0.8 * cfg_.measure;
  sim::Rng plan_rng = rngs_.stream("fault.plan");
  injector_ = std::make_unique<FaultInjector>(
      *this, sim::fault::generate_plan(spec, cfg_.nodes, plan_rng), rngs_);
  register_fault_metrics();
}

void Cluster::crash_node(int id) {
  Node& dead = node(id);
  if (!dead.alive()) return;
  ++crashes_;
  DCLUE_TRACE_INSTANT("fault", "node_crash", engine_.now(), id);
  // Crash-stop: the executor aborts every transaction at its next liveness
  // check, so the dead node applies no further writes.
  dead.set_alive(false);
  // Its access links go dark. TCP peers keep state and retransmit; segments
  // simply stop flowing until restart.
  topo_->server_uplink(id).set_link_down(true);
  topo_->server_downlink(id).set_link_down(true);
  // Fail every in-flight IPC exchange cluster-wide. This over-approximates
  // (exchanges between two healthy nodes fail too — correlation ids do not
  // record the peer) but is deterministic and safe: each waiter takes its
  // degraded fallback (disk read / lock retry) exactly once.
  for (auto& n : nodes_) n->ipc().fail_all_pending();
  const int num = cfg_.nodes;
  for (int i = 0; i < num; ++i) {
    Node& n = node(i);
    if (i == id) {
      // The crashed node's own volatile state is simply gone.
      locks_purged_ += n.locks().purge_if([](db::TxnToken) { return true; });
      dir_purged_ += n.directory().entries();
      n.directory().clear();
      cache_invalidated_ +=
          n.cache().invalidate_if([](db::PageId) { return true; });
    } else {
      // Re-master: tokens are minted as seq * num_nodes + node_id, so the
      // dead node's transactions are exactly token % num == id.
      locks_purged_ += n.locks().purge_if([num, id](db::TxnToken t) {
        return static_cast<int>(t % static_cast<db::TxnToken>(num)) == id;
      });
      dir_purged_ += n.directory().purge_holder(id);
      // Pages whose directory home died must be dropped: the restarted
      // directory comes back empty and must not disagree with caches.
      cache_invalidated_ += n.cache().invalidate_if(
          [&n, id](db::PageId p) { return n.fusion().dir_home(p) == id; });
    }
  }
}

void Cluster::restart_node(int id) {
  Node& n = node(id);
  if (n.alive()) return;
  ++restarts_;
  DCLUE_TRACE_INSTANT("fault", "node_restart", engine_.now(), id);
  topo_->server_uplink(id).set_link_down(false);
  topo_->server_downlink(id).set_link_down(false);
  // The node rejoins the fabric immediately (TCP retransmits drain), but
  // accepts transactions only after redo completes on the coordinator.
  sim::spawn([](Cluster* c, int failed) -> sim::Task<void> {
    const sim::Time t0 = c->engine().now();
    const RecoveryReport rep = co_await run_recovery(*c, failed);
    c->recovery_seconds_ += rep.total_seconds;
    ++c->recoveries_;
    c->node(failed).set_alive(true);
    DCLUE_TRACE_SPAN("fault", "recovery", t0, c->engine().now(), failed);
  }(this, id));
}

sim::DetachedTask Cluster::connect_everything() {
  // All sessions are established concurrently (a sequential handshake chain
  // would push cluster bring-up into the measurement window on high-latency
  // fabrics). One duplex IPC connection per unordered node pair, plus a
  // directed iSCSI session from every initiator to every target.
  auto wg = std::make_shared<sim::WaitGroup>(engine_);
  auto connect_ipc = [this, wg](int i, int j) -> sim::Task<void> {
    auto conn = nodes_[static_cast<std::size_t>(i)]->tcp().connect(
        topo_->server_nic(j).address(), Node::ipc_port_for(i));
    auto channel = std::make_shared<proto::MsgChannel>(conn);
    co_await conn->established().wait();
    nodes_[static_cast<std::size_t>(i)]->ipc().attach_peer(j, channel);
    wg->done();
  };
  auto connect_iscsi = [this, wg](int i, int j) -> sim::Task<void> {
    auto conn = nodes_[static_cast<std::size_t>(i)]->tcp().connect(
        topo_->server_nic(j).address(), Node::iscsi_port_for(i));
    auto channel = std::make_shared<proto::MsgChannel>(conn);
    co_await conn->established().wait();
    nodes_[static_cast<std::size_t>(i)]->iscsi_initiator(j).attach(channel);
    wg->done();
  };
  bool any = false;
  for (int i = 0; i < cfg_.nodes; ++i) {
    for (int j = i + 1; j < cfg_.nodes; ++j) {
      wg->add();
      any = true;
      sim::spawn(connect_ipc(i, j));
    }
    for (int j = 0; j < cfg_.nodes; ++j) {
      if (i == j) continue;
      wg->add();
      any = true;
      sim::spawn(connect_iscsi(i, j));
    }
  }
  if (any) co_await wg->wait();
  ready_->open();
}

sim::DetachedTask Cluster::version_gc_loop() {
  for (;;) {
    co_await sim::delay_for(engine_, 0.25);
    const db::Timestamp min_active =
        global_clock_ > 2'000 ? global_clock_ - 2'000 : 0;
    for (auto& node : nodes_) {
      node->versions().gc(min_active, 512);
    }
  }
}

void Cluster::register_metrics() {
  for (auto& node : nodes_) node->register_metrics(registry_);
  topo_->register_metrics(registry_);
  for (std::size_t i = 0; i < ftp_clients_.size(); ++i) {
    ftp_clients_[i]->register_metrics(
        registry_, "ftp.client" + std::to_string(i) + ".");
  }
  // Terminal fleets accumulate over the whole run (business_txns includes
  // warmup by design), so they join as sampled gauges, never reset.
  for (std::size_t h = 0; h < fleets_.size(); ++h) {
    const std::string p = "client" + std::to_string(h) + ".";
    workload::TerminalFleet* fleet = fleets_[h].get();
    registry_.gauge_fn(p + "business_txns", [fleet] {
      return static_cast<double>(fleet->business_txns_completed());
    });
    registry_.gauge_fn(p + "admission_drops", [fleet] {
      return static_cast<double>(fleet->admission_drops());
    });
    registry_.gauge_fn(p + "connection_failures", [fleet] {
      return static_cast<double>(fleet->connection_failures());
    });
  }
}

void Cluster::register_fault_metrics() {
  // Only bound when a fault plan is active, so a clean run's registry (and
  // therefore golden_fig output) is byte-identical with the subsystem
  // compiled in.
  registry_.gauge_fn("fault.injected", [this] {
    return static_cast<double>(injector_->injected());
  });
  registry_.gauge_fn("fault.link_events", [this] {
    return static_cast<double>(injector_->link_events());
  });
  registry_.gauge_fn("fault.disk_events", [this] {
    return static_cast<double>(injector_->disk_events());
  });
  registry_.gauge_fn("fault.node_events", [this] {
    return static_cast<double>(injector_->node_events());
  });
  registry_.gauge_fn("fault.link_drops", [this] {
    std::uint64_t total = 0;
    for (int i = 0; i < cfg_.nodes; ++i) {
      total += topo_->server_uplink(i).fault_drops();
      total += topo_->server_downlink(i).fault_drops();
    }
    return static_cast<double>(total);
  });
  registry_.gauge_fn("fault.link_corrupts", [this] {
    std::uint64_t total = 0;
    for (int i = 0; i < cfg_.nodes; ++i) {
      total += topo_->server_uplink(i).fault_corrupts();
      total += topo_->server_downlink(i).fault_corrupts();
    }
    return static_cast<double>(total);
  });
  registry_.gauge_fn("fault.nic_fcs_drops", [this] {
    std::uint64_t total = 0;
    for (int i = 0; i < cfg_.nodes; ++i) {
      total += topo_->server_nic(i).fcs_drops();
    }
    return static_cast<double>(total);
  });
  registry_.gauge_fn("fault.disk_io_errors", [this] {
    std::uint64_t total = 0;
    for (auto& n : nodes_) {
      total += n->data_disk().io_errors() + n->log_disk().io_errors();
    }
    return static_cast<double>(total);
  });
  registry_.gauge_fn("fault.iscsi_retries", [this] {
    std::uint64_t total = 0;
    for (auto& n : nodes_) total += n->iscsi_target().io_retries();
    return static_cast<double>(total);
  });
  registry_.gauge_fn("fault.iscsi_failed_ops", [this] {
    std::uint64_t total = 0;
    for (int i = 0; i < cfg_.nodes; ++i) {
      for (int j = 0; j < cfg_.nodes; ++j) {
        if (i != j) total += node(i).iscsi_initiator(j).failed_ops();
      }
    }
    return static_cast<double>(total);
  });
  registry_.gauge_fn("fault.ipc_failed_rpcs", [this] {
    std::uint64_t total = 0;
    for (auto& n : nodes_) total += n->ipc().failed_rpcs();
    return static_cast<double>(total);
  });
  registry_.gauge_fn("fault.ipc_dropped_sends", [this] {
    std::uint64_t total = 0;
    for (auto& n : nodes_) total += n->ipc().dropped_sends();
    return static_cast<double>(total);
  });
  registry_.gauge_fn("fault.locks_purged", [this] {
    return static_cast<double>(locks_purged_);
  });
  registry_.gauge_fn("fault.dir_purged", [this] {
    return static_cast<double>(dir_purged_);
  });
  registry_.gauge_fn("fault.cache_invalidated", [this] {
    return static_cast<double>(cache_invalidated_);
  });
  registry_.gauge_fn("fault.crashes",
                     [this] { return static_cast<double>(crashes_); });
  registry_.gauge_fn("fault.restarts",
                     [this] { return static_cast<double>(restarts_); });
  registry_.gauge_fn("fault.recoveries",
                     [this] { return static_cast<double>(recoveries_); });
  registry_.gauge_fn("fault.recovery_seconds",
                     [this] { return recovery_seconds_; });
}

void Cluster::reset_all_stats() {
  // One reset surface: bound collectors reset directly, subsystems with
  // internal per-instance stats (topology access links, disk-array
  // spindles) restart through their registered reset hooks.
  registry_.reset_window(engine_.now());
}

void Cluster::prewarm() {
  // Seed each node's buffer cache with its partition's hot pages (and the
  // cluster directories with matching holder records), hottest tables first.
  // A real deployment measures steady state, not a cold cache; faulting the
  // working set through the 100x-slowed disks would consume the entire run.
  cluster::PartitionMap pm(*db_, cfg_.nodes);
  auto warm_page = [this](db::PageId page, int home) {
    auto& node = *nodes_[static_cast<std::size_t>(home)];
    if (node.cache().size() * 10 >= node.cache().capacity() * 9) return;
    node.cache().insert(page, db::PageMode::kShared);
    const int dh = node.fusion().dir_home(page);
    nodes_[static_cast<std::size_t>(dh)]->directory().confirm(page, home);
  };
  auto warm_table = [&](const auto& table) {
    if (table.spec().clustered) {
      // Pages are keyed; enumerate them through the index.
      db::PageId last = 0;
      for (auto it = table.lower_bound(0); it.valid(); it.next()) {
        const db::PageId page = table.data_page_of_key(it.key());
        if (page != last) {
          warm_page(page, pm.home_of_page(page));
          last = page;
        }
      }
    } else {
      for (std::uint64_t p = 0; p < table.data_pages(); ++p) {
        const db::PageId page = db::make_page_id(table.spec().id, false, p);
        warm_page(page, pm.home_of_page(page));
      }
    }
    // Index leaf pages are key-range derived; enumerate them the same way
    // the access path does.
    db::PageId last_leaf = 0;
    bool first_leaf = true;
    for (auto it = table.lower_bound(0); it.valid(); it.next()) {
      const db::PageId page = table.index_page_of(it.key());
      if (first_leaf || page != last_leaf) {
        warm_page(page, pm.home_of_page(page));
        last_leaf = page;
        first_leaf = false;
      }
    }
  };

  warm_table(db_->warehouse);
  warm_table(db_->district);
  warm_table(db_->item);
  warm_table(db_->stock);
  warm_table(db_->new_order);
  warm_table(db_->order);
  warm_table(db_->order_line);
  warm_table(db_->customer);
}

RunReport Cluster::run() {
  prewarm();
  connect_everything();
  version_gc_loop();
  for (auto& fleet : fleets_) fleet->start();
  for (auto& ftp : ftp_clients_) ftp->start();
  if (injector_) injector_->arm();

  engine_.run_until(cfg_.warmup);
  reset_all_stats();
  engine_.run_until(cfg_.warmup + cfg_.measure);
  return collect(cfg_.measure);
}

RunReport Cluster::collect(sim::Duration measured) {
  RunReport r;
  r.nodes = cfg_.nodes;
  r.affinity = cfg_.affinity;
  r.measure_seconds = measured;

  double committed = 0, aborted = 0, new_orders = 0;
  double ctrl = 0, data = 0;
  double lock_acq = 0, lock_waits = 0, lock_failures = 0;
  obs::Tally lock_wait_all, ctrl_delay_all;
  double hits = 0, misses = 0, disk_reads = 0, remote = 0;
  obs::Tally t_total, t_phase1, t_locks, t_log, t_apply;
  double threads = 0, csw = 0, cpi = 0, util = 0;
  for (auto& node : nodes_) {
    auto& s = node->stats();
    committed += static_cast<double>(s.txns_committed.count());
    aborted += static_cast<double>(s.txns_aborted.count());
    new_orders += static_cast<double>(s.new_orders_committed.count());
    ctrl += static_cast<double>(s.ipc_control_sent.count());
    data += static_cast<double>(s.ipc_data_sent.count());
    lock_acq += static_cast<double>(s.lock_acquisitions.count());
    lock_waits += static_cast<double>(s.lock_waits.count());
    lock_failures += static_cast<double>(s.lock_failures.count());
    lock_wait_all.merge(s.lock_wait_time);
    ctrl_delay_all.merge(s.control_msg_delay);
    t_total.merge(s.t_total);
    t_phase1.merge(s.t_phase1);
    t_locks.merge(s.t_locks);
    t_log.merge(s.t_log);
    t_apply.merge(s.t_apply);
    hits += static_cast<double>(s.buffer_hits.count());
    misses += static_cast<double>(s.buffer_misses.count());
    disk_reads += static_cast<double>(s.disk_reads.count());
    remote += static_cast<double>(s.remote_fetches.count());
    threads += node->processor().avg_active_threads();
    csw += node->processor().context_switch_cost_cycles().mean();
    cpi += node->processor().avg_cpi();
    util += node->processor().utilization();
  }
  const double n = static_cast<double>(cfg_.nodes);
  const double txns = std::max(committed, 1.0);
  r.txns = committed;
  r.txn_rate = committed / measured;
  r.tpmc = new_orders / measured * 60.0 * cfg_.scale;
  r.ipc_control_per_txn = ctrl / txns;
  r.ipc_data_per_txn = data / txns;
  r.lock_waits_per_txn = lock_waits / txns;
  r.lock_failures_per_txn = lock_failures / txns;
  r.lock_wait_time_ms = lock_wait_all.mean() / cfg_.scale * 1e3;
  r.control_msg_delay_ms = ctrl_delay_all.mean() / cfg_.scale * 1e3;
  r.buffer_hit_ratio = (hits + misses) > 0 ? hits / (hits + misses) : 0.0;
  r.disk_reads_per_txn = disk_reads / txns;
  r.remote_fetch_per_txn = remote / txns;
  r.avg_active_threads = threads / n;
  r.avg_context_switch_cycles = csw / n;
  r.avg_cpi = cpi / n;
  r.cpu_utilization = util / n;
  r.abort_rate = (committed + aborted) > 0 ? aborted / (committed + aborted) : 0.0;
  const double ms = 1e3 / cfg_.scale;  // scaled seconds -> unscaled ms
  r.txn_ms = t_total.mean() * ms;
  r.txn_phase1_ms = t_phase1.mean() * ms;
  r.txn_lock_ms = t_locks.mean() * ms;
  r.txn_log_ms = t_log.mean() * ms;
  r.txn_apply_ms = t_apply.mean() * ms;

  sim::Bytes inter_bytes = 0;
  for (int lata = 0; lata < cfg_.latas(); ++lata) {
    inter_bytes += topo_->lata_uplink(lata).bytes_sent();
    inter_bytes += topo_->lata_downlink(lata).bytes_sent();
  }
  r.inter_lata_mbps =
      static_cast<double>(inter_bytes) * 8.0 / measured / 1e6 * cfg_.scale /
      std::max(1, 2 * cfg_.latas());
  r.fabric_drops = topo_->total_drops();

  for (auto& fleet : fleets_) {
    r.business_txns += static_cast<double>(fleet->business_txns_completed());
    r.admission_drops += fleet->admission_drops();
    r.client_conn_failures += fleet->connection_failures();
  }
  sim::Bytes ftp_bytes = 0;
  for (auto& ftp : ftp_clients_) ftp_bytes += ftp->bytes_carried();
  r.ftp_carried_mbps =
      static_cast<double>(ftp_bytes) * 8.0 / measured / 1e6 * cfg_.scale;

  r.registry = registry_.snapshot(engine_.now());
  return r;
}

}  // namespace dclue::core
