#include "core/report.hpp"

#include <cstdio>
#include <iterator>
#include <utility>

namespace dclue::core {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_kv(std::string& out, const char* indent, const char* key, double v,
               bool trailing_comma) {
  out += indent;
  out += "\"";
  out += key;
  out += "\": ";
  append_double(out, v);
  if (trailing_comma) out += ",";
  out += "\n";
}

void append_config(std::string& out, const ClusterConfig& c,
                   const char* indent) {
  // The knobs the benches actually sweep plus everything needed to re-run
  // the point; nested QoS/FTP sub-configs are flattened with dotted keys.
  struct KV {
    const char* key;
    double value;
  };
  const KV kvs[] = {
      {"nodes", static_cast<double>(c.nodes)},
      {"affinity", c.affinity},
      {"scale", c.scale},
      {"hw_tcp", c.hw_tcp ? 1.0 : 0.0},
      {"hw_iscsi", c.hw_iscsi ? 1.0 : 0.0},
      {"central_logging", c.central_logging ? 1.0 : 0.0},
      {"computation_factor", c.computation_factor},
      {"router_pps_at_scale100", c.router_pps_at_scale100},
      {"extra_inter_lata_latency", c.extra_inter_lata_latency},
      {"ftp.offered_load_mbps", c.ftp.offered_load_mbps},
      {"ftp.high_priority", c.ftp.high_priority ? 1.0 : 0.0},
      {"terminals_per_node", static_cast<double>(c.terminals_per_node)},
      {"think_time", c.think_time},
      {"open_loop_bt_rate_per_node", c.open_loop_bt_rate_per_node},
      {"buffer_fraction", c.buffer_fraction},
      {"data_spindles", static_cast<double>(c.data_spindles)},
      {"max_servers_per_lata", static_cast<double>(c.max_servers_per_lata)},
      {"fast_inter_lata", c.fast_inter_lata ? 1.0 : 0.0},
      {"tpmc_per_node", c.tpmc_per_node},
      {"warehouses_override", static_cast<double>(c.warehouses_override)},
      {"customers_per_district", static_cast<double>(c.customers_per_district)},
      {"items", static_cast<double>(c.items)},
      {"district_subpage_bytes", static_cast<double>(c.district_subpage_bytes)},
      {"ecn_marking", c.ecn_marking ? 1.0 : 0.0},
      {"qos.scheduler", static_cast<double>(c.qos.scheduler)},
      {"qos.wred", c.qos.wred ? 1.0 : 0.0},
      {"qos.af_police_mbps", c.qos.af_police_mbps},
      {"warmup", c.warmup},
      {"measure", c.measure},
      {"seed", static_cast<double>(c.seed)},
  };
  out += "{\n";
  // fault_spec is the one string-valued knob; emitted first so the numeric
  // block below stays a uniform table.
  out += indent;
  out += "\"fault_spec\": \"";
  out += c.fault_spec;
  out += "\",\n";
  for (std::size_t i = 0; i < std::size(kvs); ++i) {
    append_kv(out, indent, kvs[i].key, kvs[i].value,
              i + 1 != std::size(kvs));
  }
  out += indent + 2;  // close brace two spaces shallower than the entries
  out += "}";
}

void append_report(std::string& out, const RunReport& r, const char* indent) {
  out += "{\n";
  std::vector<std::pair<const char*, double>> fields;
  for_each_field(
      r,
      [&fields](const char* key, double v) { fields.emplace_back(key, v); },
      [&fields](const char* key, std::uint64_t v) {
        fields.emplace_back(key, static_cast<double>(v));
      });
  for (std::size_t i = 0; i < fields.size(); ++i) {
    append_kv(out, indent, fields[i].first, fields[i].second,
              i + 1 != fields.size());
  }
  out += indent + 2;
  out += "}";
}

}  // namespace

std::string run_report_json(const std::string& bench, const std::string& title,
                            const std::string& sweep_axis,
                            const std::vector<ReportPoint>& points) {
  std::string out;
  out.reserve(4096 + 8192 * points.size());
  out += "{\n";
  out += "  \"schema\": \"dclue.run_report.v1\",\n";
  out += "  \"bench\": \"" + bench + "\",\n";
  out += "  \"title\": \"" + title + "\",\n";
  out += "  \"sweep_axis\": \"" + sweep_axis + "\",\n";
  out += "  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ReportPoint& p = points[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"axis_value\": ";
    append_double(out, p.axis_value);
    out += ",\n";
    out += "      \"config\": ";
    append_config(out, p.config, "        ");
    out += ",\n";
    out += "      \"report\": ";
    append_report(out, p.report, "        ");
    out += ",\n";
    out += "      \"registry\": ";
    p.report.registry.append_json(out, 6);
    out += "\n    }";
  }
  out += points.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool write_run_report(const std::string& path, const std::string& bench,
                      const std::string& title, const std::string& sweep_axis,
                      const std::vector<ReportPoint>& points) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = run_report_json(bench, title, sweep_axis, points);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

}  // namespace dclue::core
