#pragma once

/// \file report.hpp
/// Aggregated run outcome (RunReport) plus the machine-readable RunReport
/// JSON writer every figure bench emits (`--report`). One schema —
/// "dclue.run_report.v1" — is consumed by scripts/check_report.py and
/// scripts/bench_compare.py; the full metrics-registry snapshot rides along
/// with each sweep point so derived observables never need bench-side
/// plumbing.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/obs/registry.hpp"

namespace dclue::core {

/// Aggregated run outcome, scaled back to original-system units.
struct RunReport {
  int nodes = 0;
  double affinity = 0.0;
  double measure_seconds = 0.0;  ///< scaled sim time measured

  double tpmc = 0.0;              ///< new-orders/min, unscaled equivalent
  double txn_rate = 0.0;          ///< all txns/sec, scaled domain
  double txns = 0.0;

  double ipc_control_per_txn = 0.0;
  double ipc_data_per_txn = 0.0;
  double control_msg_delay_ms = 0.0;  ///< unscaled ms
  double lock_waits_per_txn = 0.0;
  double lock_wait_time_ms = 0.0;     ///< unscaled ms
  double lock_failures_per_txn = 0.0;
  double buffer_hit_ratio = 0.0;
  double disk_reads_per_txn = 0.0;
  double remote_fetch_per_txn = 0.0;

  double avg_active_threads = 0.0;
  double avg_context_switch_cycles = 0.0;
  double avg_cpi = 0.0;
  double cpu_utilization = 0.0;

  double inter_lata_mbps = 0.0;  ///< unscaled equivalent DBMS+cross traffic
  std::uint64_t fabric_drops = 0;
  double abort_rate = 0.0;

  // Latency budget of an average committed transaction (unscaled ms).
  double txn_ms = 0.0;
  double txn_phase1_ms = 0.0;
  double txn_lock_ms = 0.0;
  double txn_log_ms = 0.0;
  double txn_apply_ms = 0.0;

  double ftp_carried_mbps = 0.0;  ///< unscaled

  // Client-side accounting
  double business_txns = 0.0;
  std::uint64_t admission_drops = 0;
  std::uint64_t client_conn_failures = 0;

  /// Full metrics-registry snapshot at collection time (every probe in the
  /// stack, node-prefixed). Averaged replications keep the last
  /// replication's snapshot.
  obs::Snapshot registry;
};

/// Visit every scalar field in the canonical order (the golden fixture's
/// order). `scalar(name, double)` receives the doubles, `integer(name, u64)`
/// the counters. New fields must be appended here to appear in fixtures and
/// reports.
template <typename ScalarFn, typename IntegerFn>
void for_each_field(const RunReport& r, ScalarFn&& scalar, IntegerFn&& integer) {
  scalar("nodes", static_cast<double>(r.nodes));
  scalar("affinity", r.affinity);
  scalar("measure_seconds", r.measure_seconds);
  scalar("tpmc", r.tpmc);
  scalar("txn_rate", r.txn_rate);
  scalar("txns", r.txns);
  scalar("ipc_control_per_txn", r.ipc_control_per_txn);
  scalar("ipc_data_per_txn", r.ipc_data_per_txn);
  scalar("control_msg_delay_ms", r.control_msg_delay_ms);
  scalar("lock_waits_per_txn", r.lock_waits_per_txn);
  scalar("lock_wait_time_ms", r.lock_wait_time_ms);
  scalar("lock_failures_per_txn", r.lock_failures_per_txn);
  scalar("buffer_hit_ratio", r.buffer_hit_ratio);
  scalar("disk_reads_per_txn", r.disk_reads_per_txn);
  scalar("remote_fetch_per_txn", r.remote_fetch_per_txn);
  scalar("avg_active_threads", r.avg_active_threads);
  scalar("avg_context_switch_cycles", r.avg_context_switch_cycles);
  scalar("avg_cpi", r.avg_cpi);
  scalar("cpu_utilization", r.cpu_utilization);
  scalar("inter_lata_mbps", r.inter_lata_mbps);
  integer("fabric_drops", r.fabric_drops);
  scalar("abort_rate", r.abort_rate);
  scalar("txn_ms", r.txn_ms);
  scalar("txn_phase1_ms", r.txn_phase1_ms);
  scalar("txn_lock_ms", r.txn_lock_ms);
  scalar("txn_log_ms", r.txn_log_ms);
  scalar("txn_apply_ms", r.txn_apply_ms);
  scalar("ftp_carried_mbps", r.ftp_carried_mbps);
  scalar("business_txns", r.business_txns);
  integer("admission_drops", r.admission_drops);
  integer("client_conn_failures", r.client_conn_failures);
}

/// One sweep point of a RunReport file: the axis value, the exact
/// configuration it ran, and the outcome.
struct ReportPoint {
  double axis_value = 0.0;
  ClusterConfig config;
  RunReport report;
};

/// Serialize a full bench run ("dclue.run_report.v1"): bench identity, sweep
/// axis, and one entry per point with config / report / registry sections.
[[nodiscard]] std::string run_report_json(const std::string& bench,
                                          const std::string& title,
                                          const std::string& sweep_axis,
                                          const std::vector<ReportPoint>& points);

/// Write run_report_json() to \p path; false on I/O failure.
bool write_run_report(const std::string& path, const std::string& bench,
                      const std::string& title, const std::string& sweep_axis,
                      const std::vector<ReportPoint>& points);

}  // namespace dclue::core
