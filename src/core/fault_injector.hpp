#pragma once

/// \file fault_injector.hpp
/// Applies a FaultPlan to a built Cluster. The injector is a thin,
/// deterministic scheduler: arm() posts one engine event per FaultEvent at
/// its absolute plan time, and apply() translates the event into the hook
/// calls the subsystems expose (Link degradation, Disk fault knobs,
/// Cluster::crash_node / restart_node). All randomness the hooks consume at
/// packet / IO granularity comes from the two streams owned here
/// ("fault.link", "fault.disk"), so a given plan replays bit-identically
/// regardless of what the workload does around it.

#include <cstdint>

#include "sim/fault/fault.hpp"
#include "sim/rng.hpp"

namespace dclue::core {

class Cluster;

class FaultInjector {
 public:
  FaultInjector(Cluster& cluster, sim::fault::FaultPlan plan,
                const sim::RngFactory& rngs);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every plan event on the cluster engine. Call once, before the
  /// warmup window starts running.
  void arm();

  [[nodiscard]] const sim::fault::FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t link_events() const { return link_events_; }
  [[nodiscard]] std::uint64_t disk_events() const { return disk_events_; }
  [[nodiscard]] std::uint64_t node_events() const { return node_events_; }

 private:
  void apply(const sim::fault::FaultEvent& e);

  Cluster& cluster_;
  sim::fault::FaultPlan plan_;
  sim::Rng link_rng_;
  sim::Rng disk_rng_;
  std::uint64_t injected_ = 0;
  std::uint64_t link_events_ = 0;
  std::uint64_t disk_events_ = 0;
  std::uint64_t node_events_ = 0;
};

}  // namespace dclue::core
