#include "core/fault_injector.hpp"

#include <algorithm>

#include "core/cluster.hpp"
#include "sim/obs/trace.hpp"

namespace dclue::core {

FaultInjector::FaultInjector(Cluster& cluster, sim::fault::FaultPlan plan,
                             const sim::RngFactory& rngs)
    : cluster_(cluster),
      plan_(std::move(plan)),
      link_rng_(rngs.stream("fault.link")),
      disk_rng_(rngs.stream("fault.disk")) {}

void FaultInjector::arm() {
  auto& engine = cluster_.engine();
  for (const sim::fault::FaultEvent& e : plan_.events) {
    const sim::Duration delay = std::max(0.0, e.at - engine.now());
    engine.after(delay, [this, &e] { apply(e); });
  }
}

void FaultInjector::apply(const sim::fault::FaultEvent& e) {
  ++injected_;
  DCLUE_TRACE_INSTANT("fault", sim::fault::fault_kind_name(e.kind),
                      cluster_.engine().now(), e.target);
  auto& topo = cluster_.topology();
  switch (e.kind) {
    case sim::fault::FaultKind::kLinkDown:
      ++link_events_;
      topo.server_uplink(e.target).set_link_down(true);
      topo.server_downlink(e.target).set_link_down(true);
      break;
    case sim::fault::FaultKind::kLinkUp:
      ++link_events_;
      topo.server_uplink(e.target).set_link_down(false);
      topo.server_downlink(e.target).set_link_down(false);
      break;
    case sim::fault::FaultKind::kLinkDegrade:
      ++link_events_;
      topo.server_uplink(e.target).set_degradation(
          e.drop_rate, e.corrupt_rate, e.extra_latency, e.jitter, &link_rng_);
      topo.server_downlink(e.target).set_degradation(
          e.drop_rate, e.corrupt_rate, e.extra_latency, e.jitter, &link_rng_);
      break;
    case sim::fault::FaultKind::kLinkClear:
      ++link_events_;
      topo.server_uplink(e.target).clear_degradation();
      topo.server_downlink(e.target).clear_degradation();
      break;
    case sim::fault::FaultKind::kNodeCrash:
      ++node_events_;
      cluster_.crash_node(e.target);
      break;
    case sim::fault::FaultKind::kNodeRestart:
      ++node_events_;
      cluster_.restart_node(e.target);
      break;
    case sim::fault::FaultKind::kDiskDegrade:
      ++disk_events_;
      cluster_.node(e.target).data_disk().set_fault(
          e.disk_latency_factor, e.disk_error_rate, &disk_rng_);
      cluster_.node(e.target).log_disk().set_fault(
          e.disk_latency_factor, e.disk_error_rate, &disk_rng_);
      break;
    case sim::fault::FaultKind::kDiskClear:
      ++disk_events_;
      cluster_.node(e.target).data_disk().clear_fault();
      cluster_.node(e.target).log_disk().clear_fault();
      break;
  }
}

}  // namespace dclue::core
