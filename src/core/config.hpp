#pragma once

/// \file config.hpp
/// Cluster experiment configuration. Inputs are expressed in the paper's
/// units — original-system (unscaled) quantities where the paper's axes are
/// unscaled (latency in ms, FTP load in Mb/s), and the 100x-scaled router
/// forwarding rates the paper quotes. The builder converts everything into
/// the internally consistent scaled simulation domain.

#include <cmath>
#include <cstdint>
#include <string>

#include "cpu/params.hpp"
#include "net/qos.hpp"
#include "sim/units.hpp"

namespace dclue::core {

/// Per-operation CPU path lengths (instructions, unscaled). Calibrated so an
/// unclustered affinity-1.0 node averages ~1.5 M instructions per transaction
/// (the paper's figure, ~15% of it IO-related) and delivers ~50 K tpm-C.
struct PathLengths {
  double txn_begin = 30'000;
  double txn_commit = 60'000;
  double row_read = 18'000;
  double row_update = 30'000;
  double row_insert = 35'000;
  double index_probe = 8'000;
  double lock_op = 4'000;
  double version_hop = 2'000;     ///< per skipped newer version on reads
  double ipc_handler = 3'000;     ///< app-level handling per IPC message
  double buffer_miss = 12'000;    ///< buffer manager work per fetched page
  double local_io = 30'000;       ///< SCSI path per local disk IO
  double client_request = 80'000; ///< request parse/plan/respond per txn

  /// The paper's "low computation" variant divides computational path
  /// lengths by 4 (protocol stacks are not computation and stay fixed).
  [[nodiscard]] PathLengths with_computation_factor(double f) const {
    PathLengths p = *this;
    p.txn_begin *= f;
    p.txn_commit *= f;
    p.row_read *= f;
    p.row_update *= f;
    p.row_insert *= f;
    p.index_probe *= f;
    p.version_hop *= f;
    p.client_request *= f;
    return p;
  }
};

/// How the database is sized against target throughput (Fig 10).
enum class DbGrowth {
  kLinear,          ///< TPC-C rule: warehouses = tpm-C / 12.5
  kSqrtBeyond90k,   ///< linear to 90 K tpm-C, sqrt growth beyond
};

struct FtpConfig {
  double offered_load_mbps = 0.0;  ///< unscaled Mb/s, the paper's axis
  bool high_priority = false;      ///< promote FTP to AF21 (vs best effort)
};

/// Fabric-wide QoS arrangement (the §3.4/§4 design space; the paper studies
/// only best-effort and strict priority and leaves the rest as future work).
struct FabricQos {
  net::QueueScheduler scheduler = net::QueueScheduler::kStrictPriority;
  /// WFQ weights {best-effort, AF21} when scheduler == kWfq.
  std::array<double, net::kNumDscp> wfq_weight = {4.0, 1.0};
  bool wred = false;
  /// Police the AF21 class to this unscaled rate at every queue (leaky
  /// bucket); 0 = unpoliced.
  double af_police_mbps = 0.0;
};

struct ClusterConfig {
  int nodes = 4;
  double affinity = 1.0;
  double scale = 100.0;  ///< the paper's simulation slow-down factor

  bool hw_tcp = true;
  bool hw_iscsi = true;
  bool central_logging = false;
  double computation_factor = 1.0;  ///< 0.25 = the paper's "low computation"

  /// Router forwarding rate quoted at scale 100 as in the paper (Fig 8 uses
  /// 10000 vs 4000 packets/sec).
  double router_pps_at_scale100 = 10'000.0;

  /// Extra one-way inter-LATA latency in original-system terms (Figs 12-13).
  sim::Duration extra_inter_lata_latency = 0.0;

  FtpConfig ftp;

  /// Closed-loop load: terminals per server node, with a short think time so
  /// the cluster runs at its throughput capacity (what the paper plots).
  int terminals_per_node = 36;
  sim::Duration think_time = sim::milliseconds(5);  ///< unscaled
  /// Open-loop load (the latency/QoS experiments run with "no bound on the
  /// number of threads"): business-transaction arrival rate per node in
  /// scaled tx/s. 0 = closed-loop terminals.
  double open_loop_bt_rate_per_node = 0.0;

  /// Fraction of the database each node's buffer cache can hold.
  double buffer_fraction = 0.75;
  /// Data-store spindles per node (TPC-C submissions of the era used large
  /// arrays; IO parallelism matters for the miss path).
  int data_spindles = 96;
  sim::Bytes version_overflow_bytes = sim::megabytes(4);

  /// Topology limits: 14-port routers leave room for 12 servers per LATA;
  /// the paper moves to 2 LATAs beyond 12 nodes.
  int max_servers_per_lata = 12;
  /// Use 10 Gb/s inter-LATA links ("in a few cases, 10 Gb/s inter-lata links
  /// had to be used since 1 Gb/s links were becoming a bottleneck").
  bool fast_inter_lata = false;

  DbGrowth growth = DbGrowth::kLinear;
  /// Unclustered per-node capacity used for database sizing (tpm-C); set to
  /// the *realized* single-node throughput so warehouses track throughput as
  /// TPC-C mandates.
  double tpmc_per_node = 38'000.0;
  /// Testing override: force the warehouse count (0 = use the growth rule).
  std::int64_t warehouses_override = 0;
  std::int64_t customers_per_district = 300;
  std::int64_t items = 1'000;
  /// Ablation: override the district table lock (sub-page) granularity.
  sim::Bytes district_subpage_bytes = 0;
  /// The paper's routers "use simple tail-drop (instead of RED, WRED, etc.)"
  /// — with no early marking, TCP ECN negotiation never fires and congestion
  /// surfaces as drops + retransmission delays. Enable for a RED/ECN
  /// ablation.
  bool ecn_marking = false;
  FabricQos qos;

  /// Measurement windows in scaled simulation seconds.
  sim::Duration warmup = 8.0;
  sim::Duration measure = 30.0;

  std::uint64_t seed = 1;
  PathLengths path_lengths;

  /// Fault-injection plan spec ("flaps=4,drop=0.01,crashes=1", see
  /// sim/fault/fault.hpp). Empty = no injector built, zero overhead on the
  /// datapath, and the metrics registry is byte-identical to a clean run.
  std::string fault_spec;

  [[nodiscard]] int latas() const {
    return (nodes + max_servers_per_lata - 1) / max_servers_per_lata;
  }
  [[nodiscard]] int servers_per_lata() const {
    return (nodes + latas() - 1) / latas();
  }

  /// Warehouses for the configured cluster per the growth rule.
  [[nodiscard]] std::int64_t warehouses() const {
    if (warehouses_override > 0) return warehouses_override;
    const double target_tpmc = tpmc_per_node * nodes;  // unscaled sizing
    double wh;
    if (growth == DbGrowth::kLinear || target_tpmc <= 90'000.0) {
      wh = target_tpmc / 12.5;
    } else {
      const double base = 90'000.0 / 12.5;  // 7200 warehouses at the knee
      wh = base + (base / std::sqrt(90'000.0)) * std::sqrt(target_tpmc - 90'000.0);
    }
    // Scale the database down with the platform (throughput drops 100x).
    auto scaled = static_cast<std::int64_t>(wh / scale);
    return std::max<std::int64_t>(scaled, nodes);  // at least 1 per node
  }
};

}  // namespace dclue::core
