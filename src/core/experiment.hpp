#pragma once

/// \file experiment.hpp
/// Helpers for the figure-reproduction benches: run a configuration, print
/// aligned series tables (the same rows/series the paper plots), and emit
/// machine-readable CSV alongside.

#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/config.hpp"
#include "core/report.hpp"

namespace dclue::core {

/// Run one configuration to completion and return the report.
RunReport run_experiment(const ClusterConfig& cfg);

/// Run \p replications with different seeds and average the reported
/// metrics (the paper notes "wide variations in transaction
/// characteristics"; replication tames them).
RunReport run_experiment_avg(ClusterConfig cfg, int replications);

/// Run every configuration point and return the reports in input order.
/// Points run concurrently on the sweep pool when REPRO_JOBS > 1 (see
/// sim/sweep.hpp); each point owns its Engine and RNG streams, so the
/// reports are bit-identical to a serial sweep. The \p jobs overloads pin
/// the worker count explicitly (used by the determinism tests).
std::vector<RunReport> run_experiments(const std::vector<ClusterConfig>& cfgs);
std::vector<RunReport> run_experiments(const std::vector<ClusterConfig>& cfgs,
                                       int jobs);

/// Sweep-pool version of run_experiment_avg: replications of one point stay
/// serial (the seed chain is sequential) but points run concurrently.
std::vector<RunReport> run_experiments_avg(const std::vector<ClusterConfig>& cfgs,
                                           int replications);
std::vector<RunReport> run_experiments_avg(const std::vector<ClusterConfig>& cfgs,
                                           int replications, int jobs);

/// Column-oriented series printer.
class SeriesTable {
 public:
  explicit SeriesTable(std::string title);

  void add_column(std::string header);
  void add_row(const std::vector<double>& values);
  /// Print aligned table plus a `# csv:`-prefixed CSV block.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<double>> rows_;
};

/// Honor REPRO_FAST=1 (shorter windows for CI) when building configs.
ClusterConfig default_config();

}  // namespace dclue::core
