#pragma once

/// \file node_stats.hpp
/// Per-node measurement accumulators. All quantities are measured from the
/// functioning simulation (DCLUE's philosophy) over the post-warmup window.
///
/// NodeStats is a plain default-constructible struct so unit tests can stand
/// one up without a cluster; inside a Cluster every collector is registered
/// with the obs::MetricsRegistry via register_into(), which makes the
/// registry's reset_window()/snapshot() the single stats surface for the
/// whole run.

#include <array>
#include <cstdint>
#include <string>

#include "sim/obs/registry.hpp"
#include "sim/obs/stats.hpp"
#include "sim/units.hpp"

namespace dclue::core {

/// Mirrors workload::kNumTxnTypes (core cannot include workload headers);
/// enum order in workload/tpcc_txn.hpp: new-order, payment, order-status,
/// delivery, stock-level.
inline constexpr int kTxnTypeSlots = 5;
inline constexpr const char* kTxnTypeNames[kTxnTypeSlots] = {
    "new_order", "payment", "order_status", "delivery", "stock_level"};

/// Per-node measurement accumulators.
struct NodeStats {
  // Transactions
  obs::Counter txns_committed;
  obs::Counter txns_aborted;
  obs::Counter new_orders_committed;

  // IPC (cache fusion + lock + log traffic)
  obs::Counter ipc_control_sent;
  obs::Counter ipc_data_sent;
  obs::Counter ipc_control_bytes;
  obs::Counter ipc_data_bytes;
  obs::Tally control_msg_delay;  ///< send->receive end-to-end

  // Locking
  obs::Counter lock_acquisitions;
  obs::Counter lock_waits;
  obs::Counter lock_failures;  ///< release-and-retry events
  obs::Tally lock_wait_time;

  // Buffer cache / storage
  obs::Counter buffer_hits;
  obs::Counter buffer_misses;
  obs::Counter remote_fetches;  ///< pages served from another node's cache
  std::array<obs::Counter, 16> remote_by_table{};  ///< indexed by TableId
  std::array<obs::Counter, 16> remote_index_by_table{};
  std::array<obs::Counter, 16> disk_by_table{};
  std::array<obs::Counter, 16> disk_index_by_table{};
  obs::Counter disk_reads;
  obs::Counter iscsi_reads;

  // Transaction time breakdown: where a transaction's latency goes
  // (all values in scaled seconds, one sample per committed transaction).
  obs::Tally t_total;
  obs::Tally t_phase1;     ///< reads/latches incl. page fetches
  obs::Tally t_locks;      ///< phase-2 global lock conversion (+retries)
  obs::Tally t_log;        ///< WAL flush at commit
  obs::Tally t_apply;      ///< version creation + row mutation + commit work
  /// Per-transaction-type total latency (same units as t_total).
  std::array<obs::Tally, kTxnTypeSlots> t_by_type{};

  // Dirty-page production since the last checkpoint (bytes of log written
  // by transactions that mutated pages at THIS node, independent of where
  // the log itself is stored). Consumed by the checkpoint extension;
  // deliberately NOT a windowed metric — it survives stat resets.
  sim::Bytes dirty_bytes_accum = 0;

  // Live stage gauges (where in-flight transactions currently sit); purely
  // diagnostic, not part of the paper's figures. Gauges persist across
  // window resets — the transactions are still in flight.
  obs::Gauge in_phase1;
  obs::Gauge in_fusion;
  obs::Gauge in_lock_wait;
  obs::Gauge in_log_flush;
  obs::Gauge in_dir_rpc;
  obs::Gauge in_block_wait;
  obs::Gauge in_disk;
  obs::Gauge in_inflight_wait;

  /// Bind every collector into \p reg under "node<id>." prefixes. The
  /// registry then owns window resets and snapshots for this node.
  void register_into(obs::MetricsRegistry& reg, int node_id) {
    const std::string p = "node" + std::to_string(node_id) + ".";
    reg.bind(p + "txn.committed", &txns_committed);
    reg.bind(p + "txn.aborted", &txns_aborted);
    reg.bind(p + "txn.new_orders_committed", &new_orders_committed);
    reg.bind(p + "ipc.control_sent", &ipc_control_sent);
    reg.bind(p + "ipc.data_sent", &ipc_data_sent);
    reg.bind(p + "ipc.control_bytes", &ipc_control_bytes);
    reg.bind(p + "ipc.data_bytes", &ipc_data_bytes);
    reg.bind(p + "ipc.control_msg_delay_s", &control_msg_delay);
    reg.bind(p + "lock.acquisitions", &lock_acquisitions);
    reg.bind(p + "lock.waits", &lock_waits);
    reg.bind(p + "lock.failures", &lock_failures);
    reg.bind(p + "lock.wait_time_s", &lock_wait_time);
    reg.bind(p + "cache.hits", &buffer_hits);
    reg.bind(p + "cache.misses", &buffer_misses);
    reg.bind(p + "cache.remote_fetches", &remote_fetches);
    for (std::size_t t = 0; t < remote_by_table.size(); ++t) {
      const std::string suffix = ".table" + std::to_string(t);
      reg.bind(p + "cache.remote" + suffix, &remote_by_table[t]);
      reg.bind(p + "cache.remote_index" + suffix, &remote_index_by_table[t]);
      reg.bind(p + "disk.data" + suffix, &disk_by_table[t]);
      reg.bind(p + "disk.index" + suffix, &disk_index_by_table[t]);
    }
    reg.bind(p + "disk.reads", &disk_reads);
    reg.bind(p + "disk.iscsi_reads", &iscsi_reads);
    reg.bind(p + "txn.t_total_s", &t_total);
    reg.bind(p + "txn.t_phase1_s", &t_phase1);
    reg.bind(p + "txn.t_locks_s", &t_locks);
    reg.bind(p + "txn.t_log_s", &t_log);
    reg.bind(p + "txn.t_apply_s", &t_apply);
    for (int t = 0; t < kTxnTypeSlots; ++t) {
      reg.bind(p + "txn.t_total_s." + kTxnTypeNames[t],
               &t_by_type[static_cast<std::size_t>(t)]);
    }
    reg.gauge_fn(p + "log.dirty_bytes_accum",
                 [this] { return static_cast<double>(dirty_bytes_accum); });
    reg.bind(p + "stage.in_phase1", &in_phase1);
    reg.bind(p + "stage.in_fusion", &in_fusion);
    reg.bind(p + "stage.in_lock_wait", &in_lock_wait);
    reg.bind(p + "stage.in_log_flush", &in_log_flush);
    reg.bind(p + "stage.in_dir_rpc", &in_dir_rpc);
    reg.bind(p + "stage.in_block_wait", &in_block_wait);
    reg.bind(p + "stage.in_disk", &in_disk);
    reg.bind(p + "stage.in_inflight_wait", &in_inflight_wait);
  }

  /// Standalone window reset for tests and registry-less harnesses; matches
  /// MetricsRegistry::reset_window semantics (gauges and dirty_bytes_accum
  /// persist).
  void reset() {
    txns_committed.reset();
    txns_aborted.reset();
    new_orders_committed.reset();
    ipc_control_sent.reset();
    ipc_data_sent.reset();
    ipc_control_bytes.reset();
    ipc_data_bytes.reset();
    control_msg_delay.reset();
    lock_acquisitions.reset();
    lock_waits.reset();
    lock_failures.reset();
    lock_wait_time.reset();
    buffer_hits.reset();
    buffer_misses.reset();
    remote_fetches.reset();
    for (auto& c : remote_by_table) c.reset();
    for (auto& c : remote_index_by_table) c.reset();
    for (auto& c : disk_by_table) c.reset();
    for (auto& c : disk_index_by_table) c.reset();
    disk_reads.reset();
    iscsi_reads.reset();
    t_total.reset();
    t_phase1.reset();
    t_locks.reset();
    t_log.reset();
    t_apply.reset();
    for (auto& t : t_by_type) t.reset();
  }
};

}  // namespace dclue::core
