#include "core/experiment.hpp"

#include <cstdio>
#include <cstdlib>

#include "sim/sweep.hpp"

namespace dclue::core {

RunReport run_experiment(const ClusterConfig& cfg) {
  Cluster cluster(cfg);
  return cluster.run();
}

RunReport run_experiment_avg(ClusterConfig cfg, int replications) {
  RunReport avg;
  for (int r = 0; r < replications; ++r) {
    cfg.seed = cfg.seed * 1315423911ULL + 17;
    RunReport one = run_experiment(cfg);
    const double k = 1.0 / static_cast<double>(r + 1);
    auto blend = [k](double& acc, double v) { acc += (v - acc) * k; };
    blend(avg.tpmc, one.tpmc);
    blend(avg.txn_rate, one.txn_rate);
    blend(avg.txns, one.txns);
    blend(avg.ipc_control_per_txn, one.ipc_control_per_txn);
    blend(avg.ipc_data_per_txn, one.ipc_data_per_txn);
    blend(avg.control_msg_delay_ms, one.control_msg_delay_ms);
    blend(avg.lock_waits_per_txn, one.lock_waits_per_txn);
    blend(avg.lock_wait_time_ms, one.lock_wait_time_ms);
    blend(avg.lock_failures_per_txn, one.lock_failures_per_txn);
    blend(avg.buffer_hit_ratio, one.buffer_hit_ratio);
    blend(avg.disk_reads_per_txn, one.disk_reads_per_txn);
    blend(avg.remote_fetch_per_txn, one.remote_fetch_per_txn);
    blend(avg.avg_active_threads, one.avg_active_threads);
    blend(avg.avg_context_switch_cycles, one.avg_context_switch_cycles);
    blend(avg.avg_cpi, one.avg_cpi);
    blend(avg.cpu_utilization, one.cpu_utilization);
    blend(avg.inter_lata_mbps, one.inter_lata_mbps);
    blend(avg.abort_rate, one.abort_rate);
    blend(avg.ftp_carried_mbps, one.ftp_carried_mbps);
    avg.fabric_drops += one.fabric_drops;
    avg.nodes = one.nodes;
    avg.affinity = one.affinity;
    avg.measure_seconds = one.measure_seconds;
    // Scalars blend; the registry snapshot is kept from the last replication
    // (averaging arbitrary metric kinds is not meaningful).
    avg.registry = std::move(one.registry);
  }
  return avg;
}

std::vector<RunReport> run_experiments(const std::vector<ClusterConfig>& cfgs,
                                       int jobs) {
  return sim::sweep_map<RunReport>(
      cfgs.size(), jobs, [&cfgs](std::size_t i) { return run_experiment(cfgs[i]); });
}

std::vector<RunReport> run_experiments(const std::vector<ClusterConfig>& cfgs) {
  return run_experiments(cfgs, sim::sweep_jobs());
}

std::vector<RunReport> run_experiments_avg(const std::vector<ClusterConfig>& cfgs,
                                           int replications, int jobs) {
  return sim::sweep_map<RunReport>(cfgs.size(), jobs, [&](std::size_t i) {
    return run_experiment_avg(cfgs[i], replications);
  });
}

std::vector<RunReport> run_experiments_avg(const std::vector<ClusterConfig>& cfgs,
                                           int replications) {
  return run_experiments_avg(cfgs, replications, sim::sweep_jobs());
}

ClusterConfig default_config() {
  ClusterConfig cfg;
  if (const char* fast = std::getenv("REPRO_FAST"); fast && fast[0] == '1') {
    cfg.warmup = 3.0;
    cfg.measure = 8.0;
  }
  return cfg;
}

SeriesTable::SeriesTable(std::string title) : title_(std::move(title)) {}

void SeriesTable::add_column(std::string header) {
  headers_.push_back(std::move(header));
}

void SeriesTable::add_row(const std::vector<double>& values) {
  rows_.push_back(values);
}

void SeriesTable::print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  for (const auto& h : headers_) std::printf("%16s", h.c_str());
  std::printf("\n");
  for (const auto& row : rows_) {
    for (double v : row) std::printf("%16.3f", v);
    std::printf("\n");
  }
  // CSV block for scripted consumption.
  std::printf("# csv: ");
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    std::printf("%s%s", headers_[i].c_str(), i + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    std::printf("# csv: ");
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%.6g%s", row[i], i + 1 < row.size() ? "," : "\n");
    }
  }
  std::fflush(stdout);
}

}  // namespace dclue::core
