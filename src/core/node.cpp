#include "core/node.hpp"

#include <cmath>

#include "cluster/partition.hpp"

namespace dclue::core {
namespace {

net::CpuCharge make_charge(cpu::Processor* proc) {
  return [proc](sim::PathLength pl, cpu::JobClass cls) -> sim::Task<void> {
    if (pl > 0.0) co_await proc->compute(pl, cls, cpu::kNoThread);
  };
}

}  // namespace

Node::Node(sim::Engine& engine, const ClusterConfig& cfg, int id, net::Nic& nic,
           db::TpccDatabase& db, std::uint64_t* global_clock,
           const sim::RngFactory& rngs)
    : engine_(engine),
      cfg_(cfg),
      id_(id),
      rng_(rngs.stream("node", static_cast<std::uint64_t>(id))) {
  // --- platform -------------------------------------------------------------
  const cpu::PlatformParams platform = cpu::PlatformParams{}.scaled(cfg.scale);
  mem_ = std::make_unique<cpu::MemorySystem>(engine, platform);
  proc_ = std::make_unique<cpu::Processor>(engine, platform, *mem_);

  // --- fabric ---------------------------------------------------------------
  net::TcpParams tcp_params;
  tcp_params.timer_scale = 0.01 * cfg.scale;  // DC-reduced, then slowed
  const net::TcpCostModel tcp_costs =
      cfg.hw_tcp ? net::TcpCostModel::hardware() : net::TcpCostModel::software();
  tcp_ = std::make_unique<net::TcpStack>(engine, nic, tcp_params, tcp_costs,
                                         make_charge(proc_.get()));

  // --- storage ----------------------------------------------------------------
  const storage::DiskParams disk_params = storage::DiskParams{}.scaled(cfg.scale);
  data_disk_ = std::make_unique<storage::DiskArray>(
      engine, "data" + std::to_string(id), cfg.data_spindles, disk_params);
  log_disk_ = std::make_unique<storage::Disk>(engine, "log" + std::to_string(id),
                                              disk_params);
  const proto::IscsiCostModel iscsi_costs = cfg.hw_iscsi
                                                ? proto::IscsiCostModel::hardware()
                                                : proto::IscsiCostModel::software();
  iscsi_target_ = std::make_unique<proto::IscsiTarget>(
      engine, *data_disk_, make_charge(proc_.get()), iscsi_costs);
  iscsi_initiators_.resize(static_cast<std::size_t>(cfg.nodes));
  for (int peer = 0; peer < cfg.nodes; ++peer) {
    if (peer == id) continue;
    iscsi_initiators_[static_cast<std::size_t>(peer)] =
        std::make_unique<proto::IscsiInitiator>(engine, make_charge(proc_.get()),
                                                iscsi_costs);
  }

  // --- database services ------------------------------------------------------
  const auto capacity = static_cast<std::size_t>(
      std::max<double>(64.0, cfg.buffer_fraction *
                                 static_cast<double>(db.total_data_pages())));
  cache_ = std::make_unique<db::BufferCache>(capacity);
  directory_ = std::make_unique<cluster::DirectoryService>();
  locks_ = std::make_unique<db::LockManager>(engine);
  versions_ = std::make_unique<db::VersionManager>(engine, cfg.version_overflow_bytes,
                                                   *cache_);
  log_ = std::make_unique<db::LogManager>(engine, log_disk_.get());

  // --- IPC + fusion -----------------------------------------------------------
  const PathLengths pl = cfg.path_lengths.with_computation_factor(cfg.computation_factor);
  ipc_ = std::make_unique<cluster::IpcService>(engine, id, stats_, pl.ipc_handler,
                                               make_charge(proc_.get()));
  cluster::FusionDeps deps;
  deps.engine = &engine;
  deps.node_id = id;
  deps.num_nodes = cfg.nodes;
  deps.ipc = ipc_.get();
  deps.cache = cache_.get();
  deps.directory = directory_.get();
  deps.locks = locks_.get();
  deps.versions = versions_.get();
  deps.data_disk = data_disk_.get();
  deps.iscsi.resize(static_cast<std::size_t>(cfg.nodes));
  for (int peer = 0; peer < cfg.nodes; ++peer) {
    deps.iscsi[static_cast<std::size_t>(peer)] =
        iscsi_initiators_[static_cast<std::size_t>(peer)].get();
  }
  deps.charge = make_charge(proc_.get());
  deps.pl = pl;
  deps.stats = &stats_;
  deps.dir_home_fn = [pm = cluster::PartitionMap(db, cfg.nodes)](db::PageId page) {
    return pm.home_of_page(page);
  };
  fusion_ = std::make_unique<cluster::FusionLayer>(std::move(deps));

  // --- transaction engine ------------------------------------------------------
  workload::NodeEnv env;
  env.engine = &engine;
  env.node_id = id;
  env.num_nodes = cfg.nodes;
  env.db = &db;
  env.fusion = fusion_.get();
  env.versions = versions_.get();
  env.log = log_.get();
  env.proc = proc_.get();
  env.stats = &stats_;
  env.pl = pl;
  env.global_clock = global_clock;
  const std::int64_t total_wh = db.scale().warehouses;
  const int nodes = cfg.nodes;
  env.storage_home_of_warehouse = [total_wh, nodes](std::int64_t w) {
    const std::int64_t idx = std::clamp<std::int64_t>(w - 1, 0, total_wh - 1);
    return static_cast<int>(idx * nodes / total_wh);
  };
  env.rng = &rng_;
  env.lock_retry_delay = sim::milliseconds(0.3) * cfg.scale;
  env.alive = &alive_;
  executor_ = std::make_unique<workload::TpccExecutor>(std::move(env));
}

void Node::start_listeners() {
  for (int peer = 0; peer < cfg_.nodes; ++peer) {
    if (peer == id_) continue;
    ipc_accept(peer, tcp_->listen(ipc_port_for(peer)));
    // iSCSI sessions: target accepts from each initiator node.
    auto& iscsi_listener = tcp_->listen(iscsi_port_for(peer));
    sim::spawn([](Node* self, net::TcpListener& l) -> sim::Task<void> {
      auto conn = co_await l.accept();
      self->iscsi_target_->serve(std::make_shared<proto::MsgChannel>(conn));
    }(this, iscsi_listener));
  }
  db_accept(tcp_->listen(workload::kDbPort));
}

sim::DetachedTask Node::ipc_accept(int peer, net::TcpListener& listener) {
  auto conn = co_await listener.accept();
  ipc_->attach_peer(peer, std::make_shared<proto::MsgChannel>(conn));
}

sim::DetachedTask Node::db_accept(net::TcpListener& listener) {
  for (;;) {
    auto conn = co_await listener.accept();
    db_session(std::move(conn));
  }
}

sim::DetachedTask Node::db_session(std::shared_ptr<net::TcpConnection> conn) {
  auto channel = std::make_shared<proto::MsgChannel>(conn);
  const PathLengths pl =
      cfg_.path_lengths.with_computation_factor(cfg_.computation_factor);
  for (;;) {
    proto::Message msg = co_await channel->inbox().receive();
    if (msg.type == proto::kChannelReset) co_return;
    if (msg.type == proto::kChannelClosed) {
      // Terminal finished its business transaction: complete the teardown.
      if (conn->state() != net::TcpConnection::State::kClosed) conn->close();
      co_return;
    }
    if (msg.type != workload::kClientRequest) continue;
    auto body = std::static_pointer_cast<workload::ClientRequestBody>(msg.payload);
    // One logical DBMS thread per in-flight request: this count is what the
    // cache-pressure and context-switch models see.
    const cpu::ThreadId tid = next_thread_++;
    proc_->thread_activated();
    co_await proc_->compute(pl.client_request, cpu::JobClass::kApplication, tid);
    const bool committed = co_await executor_->execute(body->input, tid);
    proto::Message reply;
    reply.type = workload::kClientReply;
    reply.bytes = workload::kReplyBytes;
    reply.payload =
        std::make_shared<workload::ClientReplyBody>(workload::ClientReplyBody{committed});
    channel->send(std::move(reply));
    proc_->thread_deactivated();
  }
}

void Node::reset_stats() {
  stats_.reset();
  proc_->reset_stats();
  data_disk_->reset_stats();
  log_disk_->reset_stats();
}

void Node::register_metrics(obs::MetricsRegistry& reg) {
  const std::string p = "node" + std::to_string(id_) + ".";
  stats_.register_into(reg, id_);
  proc_->register_metrics(reg, p + "cpu.");
  tcp_->register_metrics(reg, p + "tcp.");
  ipc_->register_metrics(reg, p + "ipc.sent.");
  locks_->register_metrics(reg, p + "lock.");
  data_disk_->register_metrics(reg, p + "disk.data.");
  log_disk_->register_metrics(reg, p + "disk.log.");
  reg.gauge_fn(p + "cache.pages",
               [this] { return static_cast<double>(cache_->size()); });
  reg.gauge_fn(p + "cache.capacity_pages",
               [this] { return static_cast<double>(cache_->capacity()); });
  reg.gauge_fn(p + "cache.hit_ratio", [this] {
    const double hits = static_cast<double>(stats_.buffer_hits.count());
    const double total =
        hits + static_cast<double>(stats_.buffer_misses.count());
    return total > 0.0 ? hits / total : 0.0;
  });
  // DB-tier data-structure probes: average open-addressing probe length
  // across the node's four flat maps, and cumulative LRU eviction scan cost
  // (entries examined; 1 per eviction with the unpinned sublist).
  reg.gauge_fn(p + "db.probe_len", [this] {
    const sim::ProbeStats* stats[] = {
        &cache_->probe_stats(), &locks_->probe_stats(),
        &versions_->probe_stats(), &directory_->probe_stats()};
    std::uint64_t steps = 0, ops = 0;
    for (const auto* s : stats) {
      steps += s->steps;
      ops += s->ops;
    }
    return ops > 0 ? static_cast<double>(steps) / static_cast<double>(ops)
                   : 0.0;
  });
  reg.bind(p + "db.lru_evict_scans", &cache_->evict_scans());
  reg.gauge_fn(p + "mem.loaded_latency_s",
               [this] { return mem_->loaded_memory_latency_s(); });
  reg.gauge_fn(p + "mem.dbus_utilization",
               [this] { return mem_->data_bus_utilization(); });
  reg.gauge_fn(p + "mem.blended_mpi", [this] { return mem_->blended_mpi(); });
}

}  // namespace dclue::core
