#include "net/topology.hpp"

#include <string>

namespace dclue::net {

Topology::Topology(sim::Engine& engine, const TopologyParams& params)
    : engine_(engine), params_(params) {
  outer_router_ = std::make_unique<Router>(engine_, "outer", params_.outer_router);

  for (int lata = 0; lata < params_.latas; ++lata) {
    auto inner = std::make_unique<Router>(
        engine_, "inner" + std::to_string(lata), params_.inner_router);

    // Inter-LATA duplex pair; each direction carries half the extra latency.
    const sim::Duration prop =
        params_.inter_lata_prop + params_.extra_inter_lata_latency / 2.0;
    auto up = std::make_unique<Link>(engine_, "lata" + std::to_string(lata) + "-up",
                                     params_.inter_lata_rate, prop, params_.qos);
    auto down = std::make_unique<Link>(
        engine_, "lata" + std::to_string(lata) + "-down", params_.inter_lata_rate,
        prop, params_.qos);
    up->connect(outer_router_.get());
    down->connect(inner.get());
    inner->set_default_route(up.get());
    lata_uplinks_.push_back(up.get());
    lata_downlinks_.push_back(down.get());
    links_.push_back(std::move(up));
    links_.push_back(std::move(down));
    inner_routers_.push_back(std::move(inner));
  }

  for (int lata = 0; lata < params_.latas; ++lata) {
    for (int s = 0; s < params_.servers_per_lata; ++s) {
      Nic* nic = attach_host(*inner_routers_[lata], "srv", lata * 100 + s,
                             /*register_on_outer=*/true);
      server_nics_.push_back(nic);
      server_uplinks_.push_back(last_attached_up_);
      server_downlinks_.push_back(last_attached_down_);
    }
    for (int s = 0; s < params_.extra_servers_per_lata; ++s) {
      Nic* nic = attach_host(*inner_routers_[lata], "xsrv", lata * 100 + s,
                             /*register_on_outer=*/true);
      extra_server_nics_.push_back(nic);
    }
  }
  for (int c = 0; c < params_.client_hosts; ++c) {
    client_nics_.push_back(attach_host(*outer_router_, "cli", c, false));
  }
  for (int c = 0; c < params_.extra_client_hosts; ++c) {
    extra_client_nics_.push_back(attach_host(*outer_router_, "xcli", c, false));
  }
}

Nic* Topology::attach_host(Router& router, const char* name_prefix, int index,
                           bool register_on_outer) {
  const Address addr = next_address_++;
  const std::string base = std::string(name_prefix) + std::to_string(index);
  auto up = std::make_unique<Link>(engine_, base + "-up", params_.host_link_rate,
                                   params_.host_link_prop, params_.qos);
  auto down = std::make_unique<Link>(engine_, base + "-down",
                                     params_.host_link_rate,
                                     params_.host_link_prop, params_.qos);
  auto nic = std::make_unique<Nic>(addr, up.get());
  up->connect(&router);
  down->connect(nic.get());
  router.add_route(addr, down.get());
  if (register_on_outer) {
    // The outer router reaches this host through its LATA's down link.
    for (int lata = 0; lata < params_.latas; ++lata) {
      if (inner_routers_[lata].get() == &router) {
        outer_router_->add_route(addr, lata_downlinks_[lata]);
      }
    }
  }
  Nic* raw = nic.get();
  last_attached_up_ = up.get();
  last_attached_down_ = down.get();
  links_.push_back(std::move(up));
  links_.push_back(std::move(down));
  nics_.push_back(std::move(nic));
  return raw;
}

std::uint64_t Topology::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& link : links_) total += link->queue().drops().count();
  total += outer_router_->input_drops().count();
  for (const auto& r : inner_routers_) total += r->input_drops().count();
  return total;
}

void Topology::reset_stats() {
  const sim::Time now = engine_.now();
  for (auto& link : links_) link->reset_stats(now);
  outer_router_->reset_stats(now);
  for (auto& r : inner_routers_) r->reset_stats(now);
}

void Topology::register_metrics(obs::MetricsRegistry& reg) {
  // The fabric-wide probes: routers and the inter-LATA trunks get named
  // entries; the many per-host access links stay internal (their drops are
  // visible through fabric.total_drops) and keep their window in sync
  // through the registry's reset hook.
  reg.on_reset([this](sim::Time) { reset_stats(); });
  reg.gauge_fn("fabric.total_drops",
               [this] { return static_cast<double>(total_drops()); });
  outer_router_->register_metrics(reg,
                                  "fabric.router." + outer_router_->name() + ".");
  for (auto& r : inner_routers_) {
    r->register_metrics(reg, "fabric.router." + r->name() + ".");
  }
  for (std::size_t lata = 0; lata < lata_uplinks_.size(); ++lata) {
    lata_uplinks_[lata]->register_metrics(
        reg, "fabric.link." + lata_uplinks_[lata]->name() + ".");
    lata_downlinks_[lata]->register_metrics(
        reg, "fabric.link." + lata_downlinks_[lata]->name() + ".");
  }
}

}  // namespace dclue::net
