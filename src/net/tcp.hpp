#pragma once

/// \file tcp.hpp
/// Segment-level TCP for the unified fabric. Matches the paper's setup: Reno
/// congestion control with fast retransmit/recovery, selective
/// retransmission (the receiver tracks exact holes, so only missing bytes are
/// resent — the behavioural effect of SACK), ECN, 64 KB receive windows, and
/// timer values reduced 100x "to make them suitable for data center
/// operation". Protocol processing costs are charged to the host CPU through
/// a pluggable cost model, which is how HW-offloaded and SW ("kernel") TCP
/// are compared in Fig 11.

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "cpu/params.hpp"
#include "net/nic.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/small_vec.hpp"
#include "sim/obs/registry.hpp"
#include "sim/obs/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dclue::net {

struct TcpParams {
  sim::Bytes mss = 1460;
  sim::Bytes rwnd = sim::kilobytes(64);
  int initial_cwnd_segments = 2;
  bool ecn = true;
  /// Data-center timer reduction (the paper divides standard values by 100),
  /// multiplied by the platform slow-down factor when the 100x methodology is
  /// in use.
  double timer_scale = 0.01;
  sim::Duration base_min_rto = 0.2;       ///< pre-scale (RFC value 200 ms floor)
  sim::Duration base_initial_rto = 1.0;   ///< pre-scale
  sim::Duration base_max_rto = 60.0;      ///< pre-scale
  sim::Duration base_delayed_ack = 0.04;  ///< pre-scale
  /// The paper artificially bumps the retransmission limit "to rather high
  /// values" so stressed IPC connections back off instead of resetting.
  int max_retransmits = 64;

  [[nodiscard]] sim::Duration min_rto() const { return base_min_rto * timer_scale; }
  [[nodiscard]] sim::Duration initial_rto() const { return base_initial_rto * timer_scale; }
  [[nodiscard]] sim::Duration max_rto() const { return base_max_rto * timer_scale; }
  [[nodiscard]] sim::Duration delayed_ack() const { return base_delayed_ack * timer_scale; }
};

/// Per-operation CPU path lengths for protocol processing. Values follow the
/// relative costs in the paper's offload references: kernel TCP pays a large
/// per-segment path plus one copy on send and two on receive; offloaded TCP
/// pays a small doorbell/completion path and moves data by DMA.
struct TcpCostModel {
  sim::PathLength per_segment_tx = 0.0;
  sim::PathLength per_segment_rx = 0.0;
  double per_byte_tx = 0.0;  ///< instructions per payload byte (copies)
  double per_byte_rx = 0.0;
  sim::PathLength connection_setup = 0.0;

  /// Offloaded fast path: doorbell + completion handling, zero-copy DMA.
  static TcpCostModel hardware() { return {500.0, 700.0, 0.0, 0.0, 3'000.0}; }
  /// Kernel ("SW") TCP on a P4-class core: interrupt + stack traversal +
  /// socket work runs tens of thousands of instructions per segment, plus
  /// one copy on send and two on receive (the paper's assumption).
  static TcpCostModel software() {
    return {12'000.0, 18'000.0, 0.5, 1.0, 40'000.0};
  }
};

/// Charges protocol work to a host CPU; supplied by the node. The JobClass
/// distinguishes interrupt-context receive work from kernel-context sends.
/// Inline-storage callable: it is invoked once or twice per segment and the
/// supplied charge always captures a processor pointer.
///
/// Contract: a zero path length must charge nothing (core::make_charge only
/// computes when pl > 0). The stack relies on this and skips the coroutine
/// machinery entirely for zero-cost operations, so hardware-offload
/// configurations pay no per-segment frame overhead.
using CpuCharge =
    sim::InlineFn<sim::Task<void>(sim::PathLength, cpu::JobClass)>;

class TcpStack;
class TcpListener;

/// One TCP connection endpoint. Lifetime is shared between the stack and any
/// application coroutine holding it.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  enum class State { kSynSent, kSynReceived, kEstablished, kClosing, kClosed };

  /// Pending timers capture a raw `this` (the per-ack RTO rearm is too hot
  /// for shared_ptr refcount traffic), so they must never outlive the
  /// connection: teardown paths cancel them, and this destructor backstops
  /// any connection dropped without a clean teardown.
  ~TcpConnection() {
    rto_timer_.cancel();
    delack_timer_.cancel();
  }

  /// Queue \p n application bytes for transmission.
  void send(sim::Bytes n);

  /// Handlers on the per-segment path use inline callable storage (see
  /// sim/inline_fn.hpp); the cold-path reset/EOF callbacks stay std::function.
  using RxHandler = sim::InlineFn<void(sim::Bytes)>;

  /// In-order payload bytes are delivered through this callback. Bytes that
  /// arrive before a handler is installed are buffered and flushed to it.
  void set_rx_handler(RxHandler fn) {
    rx_handler_ = std::move(fn);
    if (rx_handler_ && rx_buffered_ > 0) {
      sim::Bytes n = rx_buffered_;
      rx_buffered_ = 0;
      rx_handler_(n);
    }
  }
  /// Called if the connection resets (retransmission limit exceeded).
  /// Multiple handlers may register (protocol layer + application).
  void add_reset_handler(std::function<void()> fn) {
    reset_handlers_.push_back(std::move(fn));
  }

  /// Called once when the peer's FIN has been received in order (clean EOF).
  /// Fires immediately if the FIN already arrived.
  void set_eof_handler(std::function<void()> fn) {
    eof_handler_ = std::move(fn);
    if (eof_signaled_ && eof_handler_) eof_handler_();
  }

  /// Half-close: a FIN follows the last queued byte.
  void close();

  /// Awaitable: opens when the three-way handshake completes.
  sim::Gate& established() { return established_; }
  /// Awaitable: opens when every byte queued so far has been cumulatively
  /// acknowledged (used by request/response protocols for backpressure).
  sim::Task<void> wait_all_acked();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] sim::Engine& stack_engine();
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] Address peer() const { return peer_; }
  [[nodiscard]] Dscp dscp() const { return dscp_; }
  [[nodiscard]] sim::Bytes bytes_received() const { return delivered_; }
  [[nodiscard]] sim::Bytes bytes_sent_acked() const { return snd_una_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmit_count_; }
  /// Out-of-order runs currently buffered by reassembly. Must drain back to
  /// zero once the stream is contiguous (loss-fuzz leak check).
  [[nodiscard]] std::size_t ooo_ranges() const { return ooo_.size(); }

 private:
  friend class TcpStack;
  TcpConnection(TcpStack& stack, std::uint64_t id, Address peer, Dscp dscp,
                bool active);

  void start_handshake();
  void process_segment(const TcpSegment& seg);
  void process_ack(const TcpSegment& seg);
  void process_payload(const TcpSegment& seg);
  void transmit_pump_kick();
  sim::DetachedTask transmit_pump();
  void send_segment(std::int64_t seq, sim::Bytes len, bool fin);
  void send_control(bool syn, bool ack, bool fin = false);
  void send_ack_now();
  void maybe_delayed_ack();
  void arm_rto();
  void on_rto();
  void enter_fast_recovery();
  void retransmit_at(std::int64_t seq);
  void on_new_ack(std::int64_t acked_to);
  void update_rtt(sim::Duration sample);
  void do_reset();
  void maybe_finish_close();
  [[nodiscard]] std::int64_t ack_value() const;
  [[nodiscard]] sim::Bytes flight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] sim::Bytes effective_window() const;

  TcpStack& stack_;
  std::uint64_t id_;
  Address peer_;
  Dscp dscp_;
  State state_;
  sim::Gate established_;

  // --- sender ---------------------------------------------------------------
  std::int64_t app_total_ = 0;  ///< bytes submitted by the application
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  double cwnd_ = 0.0;
  double ssthresh_ = 0.0;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;
  bool cwr_pending_ = false;      ///< must advertise CWR on next data segment
  bool ecn_reduced_this_rtt_ = false;
  std::int64_t ecn_reduce_until_ = 0;
  sim::Duration srtt_ = 0.0;
  sim::Duration rttvar_ = 0.0;
  sim::Duration rto_;
  int rto_backoff_ = 0;
  sim::EventHandle rto_timer_;
  std::int64_t rtt_seq_ = -1;
  sim::Time rtt_sent_at_ = 0.0;
  std::uint64_t retransmit_count_ = 0;
  int consecutive_rto_ = 0;
  bool fin_sent_ = false;
  bool closing_requested_ = false;
  /// A coroutine parked in wait_all_acked(): resumed (deferred through the
  /// engine, like Gate) once snd_una_ reaches target. Value storage — the
  /// per-waiter Gate heap allocation this replaces showed up on every
  /// request/response exchange.
  struct AckWaiter {
    std::int64_t target;
    std::coroutine_handle<> handle;
  };

  sim::Signal tx_signal_;
  bool pump_running_ = false;
  sim::SmallVec<AckWaiter, 4> ack_waiters_;
  std::int64_t fin_seq_ = -1;
  std::uint16_t syn_port_ = 0;
  TcpListener* listener_ = nullptr;

  // --- receiver ---------------------------------------------------------------
  /// One out-of-order hole-bounded run of received bytes: [start, end).
  struct SeqRange {
    std::int64_t start;
    std::int64_t end;
  };

  std::int64_t rcv_nxt_ = 0;
  std::int64_t delivered_ = 0;
  sim::Bytes rx_buffered_ = 0;  ///< delivered before a handler existed
  /// Out-of-order runs, sorted by start, disjoint and non-adjacent. Inline
  /// small-vector: reassembly rarely tracks more than a few holes (was a
  /// std::map — one heap node per hole on the loss path).
  sim::SmallVec<SeqRange, 8> ooo_;
  int unacked_segments_ = 0;
  sim::EventHandle delack_timer_;
  bool peer_fin_ = false;
  std::int64_t peer_fin_seq_ = -1;
  bool fin_acked_ = false;
  bool ecn_echo_ = false;

  RxHandler rx_handler_;
  std::vector<std::function<void()>> reset_handlers_;
  std::function<void()> eof_handler_;
  bool eof_signaled_ = false;
};

/// Passive endpoint: accept() yields connections whose handshake completed.
class TcpListener {
 public:
  explicit TcpListener(sim::Engine& engine) : accepted_(engine) {}
  auto accept() { return accepted_.receive(); }

 private:
  friend class TcpStack;
  friend class TcpConnection;
  sim::Mailbox<std::shared_ptr<TcpConnection>> accepted_;
};

/// Per-host TCP instance: demultiplexes packets, owns connections, charges
/// protocol CPU costs.
class TcpStack {
 public:
  TcpStack(sim::Engine& engine, Nic& nic, TcpParams params, TcpCostModel costs,
           CpuCharge charge);

  /// Active open. The returned connection's established() gate opens when the
  /// handshake completes.
  std::shared_ptr<TcpConnection> connect(Address dst, std::uint16_t port,
                                         Dscp dscp = Dscp::kBestEffort);

  /// Passive open.
  TcpListener& listen(std::uint16_t port);

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const TcpParams& params() const { return params_; }
  [[nodiscard]] const TcpCostModel& costs() const { return costs_; }
  [[nodiscard]] Address address() const { return nic_.address(); }

  /// --- metrics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_.count(); }
  [[nodiscard]] std::uint64_t segments_received() const {
    return segments_received_.count();
  }
  [[nodiscard]] std::uint64_t total_retransmits() const { return retransmits_.count(); }
  [[nodiscard]] std::uint64_t rto_fires() const { return rto_fires_.count(); }
  [[nodiscard]] std::size_t open_connections() const { return connections_.size(); }

  /// Bind the stack's collectors under \p prefix ("node0.tcp.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

 private:
  friend class TcpConnection;
  void on_packet(Packet pkt);
  sim::DetachedTask rx_process(Packet pkt);
  /// Post-charge segment handling: demultiplex and drive the connection.
  void rx_dispatch(const Packet& pkt);
  /// Passive open for an unmatched SYN (charges connection setup).
  void accept_syn(const Packet& pkt);
  void emit(TcpConnection& conn, TcpSegment seg, sim::Bytes payload_len);
  void remove_connection(std::uint64_t id);

  sim::Engine& engine_;
  Nic& nic_;
  TcpParams params_;
  TcpCostModel costs_;
  CpuCharge charge_;
  std::unordered_map<std::uint64_t, std::shared_ptr<TcpConnection>> connections_;
  std::unordered_map<std::uint16_t, std::unique_ptr<TcpListener>> listeners_;
  /// One-entry demux cache (see rx_dispatch); last_conn_ is nulled when the
  /// cached connection is unregistered.
  std::uint64_t last_conn_id_ = 0;
  TcpConnection* last_conn_ = nullptr;
  obs::Counter segments_sent_;
  obs::Counter segments_received_;
  obs::Counter retransmits_;
  obs::Counter rto_fires_;
};

}  // namespace dclue::net
