#include "net/link.hpp"

#include <cassert>

namespace dclue::net {

void Link::deliver(Packet pkt) {
  if (faulted_) {
    if (down_) {
      ++fault_drops_;
      return;
    }
    if (drop_rate_ > 0.0 && fault_rng_->chance(drop_rate_)) {
      ++fault_drops_;
      return;
    }
    if (corrupt_rate_ > 0.0 && fault_rng_->chance(corrupt_rate_)) {
      pkt.corrupt = true;
      ++fault_corrupts_;
    }
  }
  if (!queue_.enqueue(std::move(pkt), engine_.now())) return;  // tail drop
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  auto pkt = queue_.dequeue(engine_.now());
  if (!pkt) {
    transmitting_ = false;
    busy_.record(engine_.now(), 0.0);
    return;
  }
  transmitting_ = true;
  busy_.record(engine_.now(), 1.0);
  if (pkt->bytes != tx_memo_bytes_) {
    tx_memo_bytes_ = pkt->bytes;
    tx_memo_time_ = sim::transmission_time(pkt->bytes, rate_);
  }
  const sim::Duration tx = tx_memo_time_;
  bytes_sent_.record(static_cast<std::uint64_t>(pkt->bytes));
  // Delivery happens after serialization plus propagation; the transmitter
  // frees up after serialization alone. A degraded link stretches delivery
  // (never serialization), so jitter can reorder packets in flight exactly
  // like a real path change would.
  sim::Duration delivery = tx + propagation_;
  if (faulted_) {
    delivery += extra_latency_;
    if (jitter_ > 0.0) delivery += fault_rng_->uniform(0.0, jitter_);
  }
  engine_.after(delivery, [this, p = *pkt]() mutable {
    if (sink_) sink_->deliver(std::move(p));
  });
  engine_.after(tx, [this] { start_transmission(); });
}

}  // namespace dclue::net
