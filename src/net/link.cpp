#include "net/link.hpp"

#include <cassert>

namespace dclue::net {

void Link::deliver(Packet pkt) {
  if (!queue_.enqueue(std::move(pkt), engine_.now())) return;  // tail drop
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  auto pkt = queue_.dequeue(engine_.now());
  if (!pkt) {
    transmitting_ = false;
    busy_.record(engine_.now(), 0.0);
    return;
  }
  transmitting_ = true;
  busy_.record(engine_.now(), 1.0);
  if (pkt->bytes != tx_memo_bytes_) {
    tx_memo_bytes_ = pkt->bytes;
    tx_memo_time_ = sim::transmission_time(pkt->bytes, rate_);
  }
  const sim::Duration tx = tx_memo_time_;
  bytes_sent_.record(static_cast<std::uint64_t>(pkt->bytes));
  // Delivery happens after serialization plus propagation; the transmitter
  // frees up after serialization alone.
  engine_.after(tx + propagation_, [this, p = *pkt]() mutable {
    if (sink_) sink_->deliver(std::move(p));
  });
  engine_.after(tx, [this] { start_transmission(); });
}

}  // namespace dclue::net
