#include "net/tcp.hpp"

#include <algorithm>
#include <cassert>

#include "sim/obs/trace.hpp"

namespace dclue::net {

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

TcpStack::TcpStack(sim::Engine& engine, Nic& nic, TcpParams params,
                   TcpCostModel costs, CpuCharge charge)
    : engine_(engine),
      nic_(nic),
      params_(params),
      costs_(costs),
      charge_(std::move(charge)) {
  nic_.set_rx_handler([this](Packet pkt) { on_packet(std::move(pkt)); });
}

void TcpStack::register_metrics(obs::MetricsRegistry& reg,
                                const std::string& prefix) {
  reg.bind(prefix + "segments_sent", &segments_sent_);
  reg.bind(prefix + "segments_received", &segments_received_);
  reg.bind(prefix + "retransmits", &retransmits_);
  reg.bind(prefix + "rto_fires", &rto_fires_);
  reg.gauge_fn(prefix + "open_connections",
               [this] { return static_cast<double>(open_connections()); });
}

std::shared_ptr<TcpConnection> TcpStack::connect(Address dst, std::uint16_t port,
                                                 Dscp dscp) {
  // Connection ids come from the engine so they are unique across every
  // stack of one simulation yet independent of any other run in the process
  // (a process-global counter would make concurrent sweep points diverge
  // from their serial twins).
  auto conn = std::shared_ptr<TcpConnection>(
      new TcpConnection(*this, engine_.allocate_id(), dst, dscp, /*active=*/true));
  conn->syn_port_ = port;
  connections_[conn->id()] = conn;
  conn->start_handshake();
  return conn;
}

TcpListener& TcpStack::listen(std::uint16_t port) {
  auto& slot = listeners_[port];
  if (!slot) slot = std::make_unique<TcpListener>(engine_);
  return *slot;
}

void TcpStack::on_packet(Packet pkt) {
  // Zero-cost fast path: when the receive charge is zero (hardware offload,
  // microbenchmarks), awaiting it is a no-op by the charge contract (a zero
  // path length must charge nothing — see core::make_charge), so the segment
  // is processed fully synchronously with no coroutine frame at all.
  const sim::PathLength cost =
      costs_.per_segment_rx +
      static_cast<double>(pkt.seg.len) * costs_.per_byte_rx;
  if (cost == 0.0) {
    rx_dispatch(pkt);
    return;
  }
  rx_process(std::move(pkt));
}

sim::DetachedTask TcpStack::rx_process(Packet pkt) {
  const sim::PathLength cost = costs_.per_segment_rx +
                               static_cast<double>(pkt.seg.len) * costs_.per_byte_rx;
  co_await charge_(cost, cpu::JobClass::kInterrupt);
  rx_dispatch(pkt);
}

void TcpStack::rx_dispatch(const Packet& pkt) {
  segments_received_.record();
  const auto& seg = pkt.seg;
  // Consecutive segments almost always belong to the same connection, so a
  // one-entry cache in front of the id map covers the bulk-transfer case.
  // A raw pointer is safe across processing: closing a connection only
  // schedules the map erase (remove_connection defers it through the engine
  // precisely so in-flight processing finishes first).
  if (seg.conn_id != last_conn_id_ || last_conn_ == nullptr) {
    auto it = connections_.find(seg.conn_id);
    if (it == connections_.end()) {
      // Passive open: rendezvous with a listener on the advertised port.
      // Anything else is a stale segment for a closed connection: ignore.
      if (seg.syn && !seg.is_ack) accept_syn(pkt);
      return;
    }
    last_conn_id_ = seg.conn_id;
    last_conn_ = it->second.get();
  }
  last_conn_->process_segment(seg);
}

void TcpStack::accept_syn(const Packet& pkt) {
  const auto& seg = pkt.seg;
  auto lit = listeners_.find(seg.dst_port);
  if (lit == listeners_.end()) return;  // connection refused: ignore
  auto conn = std::shared_ptr<TcpConnection>(new TcpConnection(
      *this, seg.conn_id, pkt.src, pkt.dscp, /*active=*/false));
  conn->listener_ = lit->second.get();
  connections_[conn->id()] = conn;
  if (costs_.connection_setup == 0.0) {
    conn->send_control(/*syn=*/true, /*ack=*/true);
    conn->arm_rto();
    return;
  }
  sim::spawn([](std::shared_ptr<TcpConnection> c,
                sim::PathLength setup) -> sim::Task<void> {
    co_await c->stack_.charge_(setup, cpu::JobClass::kKernel);
    c->send_control(/*syn=*/true, /*ack=*/true);
    c->arm_rto();
  }(std::move(conn), costs_.connection_setup));
}

void TcpStack::emit(TcpConnection& conn, TcpSegment seg, sim::Bytes payload_len) {
  seg.conn_id = conn.id();
  Packet pkt;
  pkt.dst = conn.peer();
  pkt.dscp = conn.dscp();
  pkt.bytes = payload_len + kHeaderBytes;
  pkt.seg = seg;
  segments_sent_.record();
  nic_.send(std::move(pkt));
}

void TcpStack::remove_connection(std::uint64_t id) {
  // Defer so that any in-flight processing of this connection finishes first.
  engine_.after(0.0, [this, id] {
    if (last_conn_id_ == id) last_conn_ = nullptr;
    connections_.erase(id);
  });
}

// ---------------------------------------------------------------------------
// TcpConnection
// ---------------------------------------------------------------------------

TcpConnection::TcpConnection(TcpStack& stack, std::uint64_t id, Address peer,
                             Dscp dscp, bool active)
    : stack_(stack),
      id_(id),
      peer_(peer),
      dscp_(dscp),
      state_(active ? State::kSynSent : State::kSynReceived),
      established_(stack.engine()),
      rto_(stack.params().initial_rto()),
      tx_signal_(stack.engine()) {
  const auto& p = stack.params();
  cwnd_ = static_cast<double>(p.initial_cwnd_segments * p.mss);
  ssthresh_ = static_cast<double>(p.rwnd);
}

sim::Engine& TcpConnection::stack_engine() { return stack_.engine(); }

void TcpConnection::start_handshake() {
  if (stack_.costs().connection_setup == 0.0) {
    send_control(/*syn=*/true, /*ack=*/false);
    arm_rto();
    return;
  }
  auto self = shared_from_this();
  sim::spawn([](std::shared_ptr<TcpConnection> c) -> sim::Task<void> {
    co_await c->stack_.charge_(c->stack_.costs().connection_setup,
                               cpu::JobClass::kKernel);
    if (c->state_ != State::kSynSent) co_return;
    c->send_control(/*syn=*/true, /*ack=*/false);
    c->arm_rto();
  }(self));
}

sim::Bytes TcpConnection::effective_window() const {
  const auto wnd = static_cast<sim::Bytes>(
      std::min(cwnd_, static_cast<double>(stack_.params().rwnd)));
  return wnd - flight();
}

void TcpConnection::send(sim::Bytes n) {
  assert(n > 0);
  app_total_ += n;
  transmit_pump_kick();
}

void TcpConnection::close() {
  closing_requested_ = true;
  if (state_ == State::kEstablished) state_ = State::kClosing;
  transmit_pump_kick();
}

sim::Task<void> TcpConnection::wait_all_acked() {
  const std::int64_t target = app_total_;
  if (snd_una_ >= target) co_return;
  // Park this coroutine directly in the waiter vector; on_new_ack/do_reset
  // resume it deferred through the engine, exactly as the per-waiter Gate
  // this replaces did (same wakeup event, no allocation).
  struct Awaiter {
    TcpConnection& conn;
    std::int64_t target;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      conn.ack_waiters_.push_back({target, h});
    }
    void await_resume() const noexcept {}
  };
  co_await Awaiter{*this, target};
}

void TcpConnection::transmit_pump_kick() {
  if (!pump_running_) {
    pump_running_ = true;
    transmit_pump();
  } else {
    tx_signal_.notify();
  }
}

sim::DetachedTask TcpConnection::transmit_pump() {
  auto self = shared_from_this();
  for (;;) {
    if (state_ == State::kClosed) break;
    if (state_ == State::kEstablished || state_ == State::kClosing) {
      const sim::Bytes avail = app_total_ - snd_nxt_;
      const sim::Bytes mss = stack_.params().mss;
      if (avail > 0) {
        const sim::Bytes len = std::min<sim::Bytes>(mss, avail);
        if (effective_window() >= len || flight() == 0) {
          const sim::PathLength cost =
              stack_.costs().per_segment_tx +
              static_cast<double>(len) * stack_.costs().per_byte_tx;
          if (cost != 0.0) {
            co_await stack_.charge_(cost, cpu::JobClass::kKernel);
            if (state_ == State::kClosed) break;  // reset while charging
          }
          const std::int64_t seq = snd_nxt_;
          snd_nxt_ += len;
          if (rtt_seq_ < 0) {
            rtt_seq_ = snd_nxt_;
            rtt_sent_at_ = stack_.engine().now();
          }
          send_segment(seq, len, /*fin=*/false);
          if (!rto_timer_.pending()) arm_rto();
          continue;
        }
      } else if (closing_requested_ && !fin_sent_ && snd_nxt_ == app_total_) {
        if (stack_.costs().per_segment_tx != 0.0) {
          co_await stack_.charge_(stack_.costs().per_segment_tx,
                                  cpu::JobClass::kKernel);
          if (state_ == State::kClosed) break;
        }
        fin_seq_ = snd_nxt_;
        snd_nxt_ += 1;  // FIN consumes one sequence number
        fin_sent_ = true;
        send_segment(fin_seq_, 0, /*fin=*/true);
        if (!rto_timer_.pending()) arm_rto();
        continue;
      }
    }
    co_await tx_signal_.wait();
  }
  pump_running_ = false;
}

void TcpConnection::send_segment(std::int64_t seq, sim::Bytes len, bool fin) {
  TcpSegment seg;
  seg.seq = seq;
  seg.len = len;
  seg.fin = fin;
  seg.is_ack = true;
  seg.ack = ack_value();
  seg.ece = ecn_echo_;
  if (cwr_pending_ && len > 0) {
    seg.cwr = true;
    cwr_pending_ = false;
  }
  // Piggybacked ack resets the delayed-ack machinery.
  unacked_segments_ = 0;
  delack_timer_.cancel();
  stack_.emit(*this, seg, len);
}

void TcpConnection::send_control(bool syn, bool ack, bool fin) {
  TcpSegment seg;
  seg.syn = syn;
  seg.fin = fin;
  seg.is_ack = ack;
  seg.ack = ack ? ack_value() : 0;
  seg.dst_port = syn_port_;
  seg.ece = ecn_echo_;
  stack_.emit(*this, seg, 0);
}

std::int64_t TcpConnection::ack_value() const {
  // After an in-order FIN the cumulative ack covers the FIN's sequence slot.
  if (peer_fin_ && rcv_nxt_ >= peer_fin_seq_) return rcv_nxt_ + 1;
  return rcv_nxt_;
}

void TcpConnection::send_ack_now() {
  delack_timer_.cancel();
  unacked_segments_ = 0;
  if (stack_.costs().per_segment_tx == 0.0) {
    send_control(/*syn=*/false, /*ack=*/true);
    return;
  }
  auto self = shared_from_this();
  sim::spawn([](std::shared_ptr<TcpConnection> c) -> sim::Task<void> {
    co_await c->stack_.charge_(c->stack_.costs().per_segment_tx,
                               cpu::JobClass::kKernel);
    if (c->state_ == State::kClosed) co_return;
    c->send_control(/*syn=*/false, /*ack=*/true);
  }(self));
}

void TcpConnection::maybe_delayed_ack() {
  if (++unacked_segments_ >= 2) {
    send_ack_now();
    return;
  }
  if (!delack_timer_.pending()) {
    delack_timer_ = stack_.engine().after(
        stack_.params().delayed_ack(), [this] {
          if (state_ != State::kClosed) send_ack_now();
        });
  }
}

void TcpConnection::process_segment(const TcpSegment& seg) {
  switch (state_) {
    case State::kSynSent:
      if (seg.syn && seg.is_ack) {
        state_ = State::kEstablished;
        rto_timer_.cancel();
        rto_backoff_ = 0;
        send_ack_now();
        established_.open();
        if (closing_requested_) state_ = State::kClosing;
        transmit_pump_kick();
      }
      return;
    case State::kSynReceived:
      if (seg.syn && !seg.is_ack) return;  // duplicate SYN; SYN|ACK will rexmit
      state_ = State::kEstablished;
      rto_timer_.cancel();
      rto_backoff_ = 0;
      established_.open();
      if (listener_) listener_->accepted_.push(shared_from_this());
      transmit_pump_kick();
      // Fall through: the completing ACK may carry data.
      break;
    case State::kClosed:
      return;
    default:
      break;
  }

  if (seg.syn && seg.is_ack) {
    // Retransmitted SYN|ACK after our ACK was lost: re-acknowledge.
    send_ack_now();
    return;
  }
  if (seg.ce) ecn_echo_ = true;
  if (seg.cwr) ecn_echo_ = false;
  if (seg.len > 0 || seg.fin) process_payload(seg);
  if (seg.is_ack) process_ack(seg);
}

void TcpConnection::process_payload(const TcpSegment& seg) {
  std::int64_t s = seg.seq;
  std::int64_t e = seg.seq + seg.len;
  if (seg.fin) {
    peer_fin_ = true;
    peer_fin_seq_ = e;
  }
  const bool was_in_order = (s <= rcv_nxt_ && e >= rcv_nxt_);
  if (e > rcv_nxt_ && seg.len > 0) {
    // Merge [s, e) into the sorted out-of-order range vector: absorb an
    // overlapping-or-touching predecessor, then every successor the merged
    // range reaches, and splice the result back in place.
    std::size_t idx = 0;
    while (idx < ooo_.size() && ooo_[idx].start < s) ++idx;
    if (idx > 0 && ooo_[idx - 1].end >= s) {
      --idx;
      s = ooo_[idx].start;
      e = std::max(e, ooo_[idx].end);
      ooo_.erase_at(idx);
    }
    std::size_t last = idx;
    while (last < ooo_.size() && ooo_[last].start <= e) {
      e = std::max(e, ooo_[last].end);
      ++last;
    }
    ooo_.erase_range(idx, last);
    ooo_.insert_at(idx, {s, e});
    // Advance rcv_nxt through any now-contiguous prefix.
    if (!ooo_.empty() && ooo_.front().start <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, ooo_.front().end);
      ooo_.erase_at(0);
    }
  }
  // Deliver newly in-order payload to the application.
  if (rcv_nxt_ > delivered_) {
    sim::Bytes n = rcv_nxt_ - delivered_;
    delivered_ = rcv_nxt_;
    if (rx_handler_) {
      rx_handler_(n);
    } else {
      rx_buffered_ += n;
    }
  }
  const bool fin_ready = peer_fin_ && rcv_nxt_ >= peer_fin_seq_;
  if (!ooo_.empty() && !was_in_order) {
    send_ack_now();  // duplicate ack signalling the hole
  } else if (fin_ready) {
    send_ack_now();
    if (!eof_signaled_) {
      eof_signaled_ = true;
      if (eof_handler_) eof_handler_();
    }
    maybe_finish_close();
  } else if (seg.len > 0) {
    maybe_delayed_ack();
  }
}

void TcpConnection::process_ack(const TcpSegment& seg) {
  const auto& p = stack_.params();
  if (seg.ece && p.ecn) {
    if (snd_una_ >= ecn_reduce_until_) {
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * static_cast<double>(p.mss));
      cwnd_ = ssthresh_;
      DCLUE_TRACE_COUNTER("tcp", "cwnd", stack_.engine().now(), cwnd_,
                          static_cast<std::uint32_t>(id_));
      ecn_reduce_until_ = snd_nxt_;
      cwr_pending_ = true;
    }
  }
  if (seg.ack > snd_una_) {
    on_new_ack(seg.ack);
  } else if (seg.ack == snd_una_ && flight() > 0 && seg.len == 0 && !seg.syn &&
             !seg.fin) {
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) {
      enter_fast_recovery();
    } else if (in_recovery_) {
      cwnd_ += static_cast<double>(p.mss);
      transmit_pump_kick();
    }
  }
}

void TcpConnection::on_new_ack(std::int64_t acked_to) {
  const auto& p = stack_.params();
  const sim::Bytes mss = p.mss;
  const std::int64_t newly = acked_to - snd_una_;
  if (rtt_seq_ >= 0 && acked_to >= rtt_seq_) {
    update_rtt(stack_.engine().now() - rtt_sent_at_);
    rtt_seq_ = -1;
  }
  snd_una_ = acked_to;
  consecutive_rto_ = 0;
  rto_backoff_ = 0;

  if (in_recovery_) {
    if (acked_to >= recover_) {
      in_recovery_ = false;
      cwnd_ = ssthresh_;
      dupacks_ = 0;
    } else {
      // NewReno partial ack: retransmit the next hole, deflate the window.
      retransmit_at(snd_una_);
      cwnd_ = std::max(cwnd_ - static_cast<double>(newly) + static_cast<double>(mss),
                       static_cast<double>(mss));
    }
  } else {
    dupacks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(std::min<std::int64_t>(newly, mss));
    } else {
      cwnd_ += static_cast<double>(mss) * static_cast<double>(mss) / cwnd_;
    }
  }

  // Release senders waiting for full acknowledgement: one compacting pass,
  // resuming satisfied waiters in vector order (the order the erase-and-
  // rescan loop this replaces released them in).
  std::size_t kept = 0;
  for (std::size_t i = 0; i < ack_waiters_.size(); ++i) {
    if (ack_waiters_[i].target <= snd_una_) {
      sim::detail::resume_via_engine(stack_.engine(), ack_waiters_[i].handle);
    } else {
      ack_waiters_[kept++] = ack_waiters_[i];
    }
  }
  ack_waiters_.truncate(kept);

  if (flight() > 0) {
    arm_rto();
  } else {
    rto_timer_.cancel();
  }
  if (fin_sent_ && snd_una_ >= fin_seq_ + 1) maybe_finish_close();
  transmit_pump_kick();
}

void TcpConnection::update_rtt(sim::Duration sample) {
  const auto& p = stack_.params();
  if (srtt_ == 0.0) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
    srtt_ = 0.875 * srtt_ + 0.125 * sample;
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, p.min_rto(), p.max_rto());
}

void TcpConnection::enter_fast_recovery() {
  const auto& p = stack_.params();
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0,
                       2.0 * static_cast<double>(p.mss));
  retransmit_at(snd_una_);
  cwnd_ = ssthresh_ + 3.0 * static_cast<double>(p.mss);
  DCLUE_TRACE_COUNTER("tcp", "cwnd", stack_.engine().now(), cwnd_,
                      static_cast<std::uint32_t>(id_));
  in_recovery_ = true;
  recover_ = snd_nxt_;
}

void TcpConnection::retransmit_at(std::int64_t seq) {
  ++retransmit_count_;
  stack_.retransmits_.record();
  DCLUE_TRACE_INSTANT("tcp", "retransmit", stack_.engine().now(),
                      static_cast<std::uint32_t>(id_));
  rtt_seq_ = -1;  // Karn: do not sample RTT across a retransmission
  const bool is_fin = fin_sent_ && seq == fin_seq_;
  const sim::Bytes len =
      is_fin ? 0
             : std::min<sim::Bytes>(stack_.params().mss, app_total_ - seq);
  const sim::PathLength cost =
      stack_.costs().per_segment_tx +
      static_cast<double>(len) * stack_.costs().per_byte_tx;
  if (cost == 0.0) {
    send_segment(seq, len, is_fin);
    return;
  }
  auto self = shared_from_this();
  sim::spawn([](std::shared_ptr<TcpConnection> c, std::int64_t seq,
                sim::Bytes len, bool fin, sim::PathLength cost) -> sim::Task<void> {
    co_await c->stack_.charge_(cost, cpu::JobClass::kKernel);
    if (c->state_ == State::kClosed) co_return;
    c->send_segment(seq, len, fin);
  }(self, seq, len, is_fin, cost));
}

void TcpConnection::arm_rto() {
  rto_timer_.cancel();
  const auto& p = stack_.params();
  sim::Duration timeout =
      std::min(rto_ * static_cast<double>(1 << std::min(rto_backoff_, 16)),
               p.max_rto());
  // Raw capture: cancelled by every teardown path and by ~TcpConnection.
  rto_timer_ = stack_.engine().after(timeout, [this] { on_rto(); });
}

void TcpConnection::on_rto() {
  if (state_ == State::kClosed) return;
  stack_.rto_fires_.record();
  DCLUE_TRACE_INSTANT("tcp", "rto", stack_.engine().now(),
                      static_cast<std::uint32_t>(id_));
  ++rto_backoff_;
  if (++consecutive_rto_ > stack_.params().max_retransmits) {
    do_reset();
    return;
  }
  if (state_ == State::kSynSent) {
    send_control(/*syn=*/true, /*ack=*/false);
    arm_rto();
    return;
  }
  if (state_ == State::kSynReceived) {
    send_control(/*syn=*/true, /*ack=*/true);
    arm_rto();
    return;
  }
  if (flight() <= 0) return;
  const auto& p = stack_.params();
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0,
                       2.0 * static_cast<double>(p.mss));
  cwnd_ = static_cast<double>(p.mss);
  in_recovery_ = false;
  dupacks_ = 0;
  retransmit_at(snd_una_);
  arm_rto();
}

void TcpConnection::do_reset() {
  state_ = State::kClosed;
  rto_timer_.cancel();
  delack_timer_.cancel();
  tx_signal_.notify();
  established_.open();  // unblock connect()ors; they must check state()
  for (const AckWaiter& w : ack_waiters_) {
    sim::detail::resume_via_engine(stack_.engine(), w.handle);
  }
  ack_waiters_.clear();
  stack_.remove_connection(id_);
  for (auto& handler : reset_handlers_) handler();
}

void TcpConnection::maybe_finish_close() {
  const bool our_side_done = fin_sent_ && snd_una_ >= fin_seq_ + 1;
  const bool peer_side_done = peer_fin_ && rcv_nxt_ >= peer_fin_seq_;
  if (our_side_done && peer_side_done && state_ != State::kClosed) {
    state_ = State::kClosed;
    rto_timer_.cancel();
    delack_timer_.cancel();
    tx_signal_.notify();
    stack_.remove_connection(id_);
  }
}

}  // namespace dclue::net
