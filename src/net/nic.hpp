#pragma once

/// \file nic.hpp
/// Host network interface: binds an address to an uplink and hands received
/// packets to the host's protocol stack. Protocol CPU costs are charged by
/// the TCP layer, not here, so HW- vs SW-offload comparisons live in one
/// place.

#include <utility>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/inline_fn.hpp"

namespace dclue::net {

class Nic : public PacketSink {
 public:
  Nic(Address address, Link* uplink) : address_(address), uplink_(uplink) {}

  [[nodiscard]] Address address() const { return address_; }

  void send(Packet pkt) {
    pkt.src = address_;
    uplink_->deliver(std::move(pkt));
  }

  /// Inline-storage callable: the rx path runs once per delivered segment,
  /// and the installed handler is always a captured stack pointer.
  using RxHandler = sim::InlineFn<void(Packet)>;

  void set_rx_handler(RxHandler fn) { rx_ = std::move(fn); }

  void deliver(Packet pkt) override {
    if (pkt.corrupt) {
      // Frame check sequence: a corrupted frame dies at the NIC, so the
      // stack above only ever sees loss (and recovers via retransmission).
      ++fcs_drops_;
      return;
    }
    if (rx_) rx_(std::move(pkt));
  }

  [[nodiscard]] std::uint64_t fcs_drops() const { return fcs_drops_; }

 private:
  Address address_;
  Link* uplink_;
  RxHandler rx_;
  std::uint64_t fcs_drops_ = 0;
};

}  // namespace dclue::net
