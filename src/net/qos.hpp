#pragma once

/// \file qos.hpp
/// Output queueing disciplines. The paper's §3.4 study uses the two simplest
/// data-center arrangements — tail-drop FIFO for best effort and strict
/// priority for AF21 — but names the full diff-serv mechanism space
/// ("queuing schemes (priority, WFQ, ...), packet drop schemes (tail drop,
/// WRED, ...), traffic policing/shaping") and calls better arrangements
/// future work. This module implements that space: FIFO / strict-priority /
/// weighted-fair queueing schedulers, tail-drop / WRED droppers with
/// optional ECN marking, and per-class token-bucket policing.

#include <array>
#include <cmath>
#include <optional>

#include "net/packet.hpp"
#include "sim/ring.hpp"
#include "sim/rng.hpp"
#include "sim/obs/registry.hpp"
#include "sim/obs/stats.hpp"

namespace dclue::net {

enum class QueueScheduler {
  kFifo,            ///< one logical FIFO across classes
  kStrictPriority,  ///< higher DSCP always first (OPNET's AF default)
  kWfq,             ///< weighted fair queueing by class weight
};

enum class DropPolicy {
  kTailDrop,  ///< the paper's routers
  kWred,      ///< weighted RED (early random drop / ECN mark)
};

struct TokenBucket {
  double rate_bps = 0.0;  ///< 0 = unpoliced
  sim::Bytes burst_bytes = sim::kilobytes(64);
};

struct QosParams {
  QueueScheduler scheduler = QueueScheduler::kStrictPriority;
  DropPolicy drop = DropPolicy::kTailDrop;

  /// Per-class byte limits; AF21 gets the larger queue per OPNET defaults.
  std::array<sim::Bytes, kNumDscp> queue_limit_bytes = {
      sim::kilobytes(128), sim::kilobytes(256)};
  /// WFQ weights (share of bandwidth under contention).
  std::array<double, kNumDscp> wfq_weight = {1.0, 1.0};
  /// WRED thresholds as fractions of the class queue limit.
  double wred_min_fraction = 0.25;
  double wred_max_fraction = 0.75;
  double wred_max_p = 0.1;
  /// ECN: mark (rather than drop) once a class queue holds this many bytes
  /// (tail-drop mode), or mark instead of early-dropping (WRED mode).
  /// <= 0 disables marking.
  sim::Bytes ecn_mark_threshold_bytes = 0;
  /// Ingress policing per class (leaky bucket); rate 0 = unpoliced.
  std::array<TokenBucket, kNumDscp> police = {};
};

/// A multi-class output queue with pluggable scheduler / dropper / policer.
class OutputQueue {
 public:
  explicit OutputQueue(QosParams params = {})
      : params_(params), wred_rng_(0x9e3779b9) {
    for (std::size_t c = 0; c < kNumDscp; ++c) {
      tokens_[c] = static_cast<double>(params_.police[c].burst_bytes);  // full bucket
      token_time_[c] = 0.0;
    }
  }

  /// Enqueue; returns false (and counts a drop) when rejected.
  bool enqueue(Packet pkt, sim::Time now);

  /// Dequeue the next packet per discipline.
  std::optional<Packet> dequeue(sim::Time now);

  [[nodiscard]] bool empty() const {
    for (const auto& q : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }
  [[nodiscard]] sim::Bytes queued_bytes() const {
    sim::Bytes total = 0;
    for (auto b : bytes_) total += b;
    return total;
  }
  [[nodiscard]] sim::Bytes queued_bytes(Dscp cls) const {
    return bytes_[static_cast<std::size_t>(cls)];
  }

  [[nodiscard]] const obs::Counter& drops() const { return drops_; }
  [[nodiscard]] const obs::Counter& policed_drops() const { return policed_; }
  [[nodiscard]] const obs::Counter& ecn_marks() const { return ecn_marks_; }
  [[nodiscard]] const obs::Tally& queue_delay() const { return queue_delay_; }
  [[nodiscard]] const obs::TimeWeightedAvg& depth_bytes() const {
    return depth_bytes_;
  }
  void reset_stats(sim::Time now = 0.0) {
    drops_.reset();
    policed_.reset();
    ecn_marks_.reset();
    queue_delay_.reset();
    depth_bytes_.reset(now);
  }

  /// Bind the queue's collectors under \p prefix ("link.<name>.queue.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    reg.bind(prefix + "drops", &drops_);
    reg.bind(prefix + "policed_drops", &policed_);
    reg.bind(prefix + "ecn_marks", &ecn_marks_);
    reg.bind(prefix + "delay", &queue_delay_);
    reg.bind(prefix + "depth_bytes", &depth_bytes_);
  }

 private:
  struct Entry {
    Packet pkt;
    double wfq_finish = 0.0;
  };

  [[nodiscard]] int next_class(sim::Time now) const;
  bool police_conforms(std::size_t cls, sim::Bytes bytes, sim::Time now);
  /// WRED verdict: 0 = admit, 1 = mark, 2 = drop.
  int wred_verdict(std::size_t cls, const Packet& pkt);

  QosParams params_;
  /// Ring-buffer FIFOs: packets only ever push_back/pop_front, and a ring
  /// that has reached its working-set depth never allocates again.
  std::array<sim::Ring<Entry>, kNumDscp> queues_;
  std::array<sim::Bytes, kNumDscp> bytes_{};
  std::array<double, kNumDscp> wfq_last_finish_{};
  double wfq_virtual_ = 0.0;
  std::array<double, kNumDscp> tokens_{};
  std::array<sim::Time, kNumDscp> token_time_{};
  std::array<double, kNumDscp> wred_avg_{};
  obs::Counter drops_;
  obs::Counter policed_;
  obs::Counter ecn_marks_;
  obs::Tally queue_delay_;
  obs::TimeWeightedAvg depth_bytes_;  ///< total queued bytes over time
  sim::Rng wred_rng_;
};

inline bool OutputQueue::police_conforms(std::size_t cls, sim::Bytes bytes,
                                         sim::Time now) {
  const TokenBucket& tb = params_.police[cls];
  if (tb.rate_bps <= 0.0) return true;
  // Refill.
  tokens_[cls] = std::min(
      static_cast<double>(tb.burst_bytes),
      tokens_[cls] + (now - token_time_[cls]) * tb.rate_bps / 8.0);
  token_time_[cls] = now;
  if (tokens_[cls] >= static_cast<double>(bytes)) {
    tokens_[cls] -= static_cast<double>(bytes);
    return true;
  }
  return false;
}

inline int OutputQueue::wred_verdict(std::size_t cls, const Packet& pkt) {
  // EWMA of the class queue depth (classic RED, weight 1/16).
  wred_avg_[cls] = wred_avg_[cls] * (15.0 / 16.0) +
                   static_cast<double>(bytes_[cls]) / 16.0;
  const double limit = static_cast<double>(params_.queue_limit_bytes[cls]);
  const double min_th = params_.wred_min_fraction * limit;
  const double max_th = params_.wred_max_fraction * limit;
  if (wred_avg_[cls] < min_th) return 0;
  if (wred_avg_[cls] >= max_th) return 2;
  const double p =
      params_.wred_max_p * (wred_avg_[cls] - min_th) / (max_th - min_th);
  if (wred_rng_.uniform() >= p) return 0;
  // Early congestion signal: mark ECN-capable data, drop otherwise.
  return (params_.ecn_mark_threshold_bytes > 0 && pkt.seg.len > 0) ? 1 : 2;
}

inline bool OutputQueue::enqueue(Packet pkt, sim::Time now) {
  const auto cls = static_cast<std::size_t>(pkt.dscp);
  if (!police_conforms(cls, pkt.bytes, now)) {
    policed_.record();
    drops_.record();
    return false;
  }
  if (bytes_[cls] + pkt.bytes > params_.queue_limit_bytes[cls]) {
    drops_.record();
    return false;
  }
  if (params_.drop == DropPolicy::kWred) {
    switch (wred_verdict(cls, pkt)) {
      case 1:
        pkt.seg.ce = true;
        ecn_marks_.record();
        break;
      case 2:
        drops_.record();
        return false;
      default:
        break;
    }
  } else if (params_.ecn_mark_threshold_bytes > 0 && pkt.seg.len > 0 &&
             bytes_[cls] >= params_.ecn_mark_threshold_bytes) {
    pkt.seg.ce = true;
    ecn_marks_.record();
  }

  pkt.enqueued_at = now;
  double finish = 0.0;
  if (params_.scheduler == QueueScheduler::kWfq) {
    const double start = std::max(wfq_virtual_, wfq_last_finish_[cls]);
    finish = start + static_cast<double>(pkt.bytes) /
                         std::max(params_.wfq_weight[cls], 1e-9);
    wfq_last_finish_[cls] = finish;
  }
  bytes_[cls] += pkt.bytes;
  depth_bytes_.record(now, static_cast<double>(queued_bytes()));
  queues_[cls].emplace_back(std::move(pkt), finish);
  return true;
}

inline int OutputQueue::next_class(sim::Time /*now*/) const {
  switch (params_.scheduler) {
    case QueueScheduler::kStrictPriority:
      for (int c = kNumDscp - 1; c >= 0; --c) {
        if (!queues_[static_cast<std::size_t>(c)].empty()) return c;
      }
      return -1;
    case QueueScheduler::kWfq: {
      int best = -1;
      double best_finish = 0.0;
      for (int c = 0; c < kNumDscp; ++c) {
        const auto& q = queues_[static_cast<std::size_t>(c)];
        if (!q.empty() && (best < 0 || q.front().wfq_finish < best_finish)) {
          best = c;
          best_finish = q.front().wfq_finish;
        }
      }
      return best;
    }
    case QueueScheduler::kFifo:
    default: {
      int best = -1;
      sim::Time best_t = 0.0;
      for (int c = 0; c < kNumDscp; ++c) {
        const auto& q = queues_[static_cast<std::size_t>(c)];
        if (!q.empty() && (best < 0 || q.front().pkt.enqueued_at < best_t)) {
          best = c;
          best_t = q.front().pkt.enqueued_at;
        }
      }
      return best;
    }
  }
}

inline std::optional<Packet> OutputQueue::dequeue(sim::Time now) {
  int cls = next_class(now);
  if (cls < 0) return std::nullopt;
  auto& q = queues_[static_cast<std::size_t>(cls)];
  Entry& entry = q.front();  // move the packet straight out of the ring slot
  bytes_[static_cast<std::size_t>(cls)] -= entry.pkt.bytes;
  depth_bytes_.record(now, static_cast<double>(queued_bytes()));
  if (params_.scheduler == QueueScheduler::kWfq) {
    wfq_virtual_ = std::max(wfq_virtual_, entry.wfq_finish);
  }
  queue_delay_.record(now - entry.pkt.enqueued_at);
  std::optional<Packet> out(std::move(entry.pkt));
  q.pop_front();
  return out;
}

}  // namespace dclue::net
