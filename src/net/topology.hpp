#pragma once

/// \file topology.hpp
/// Builds the paper's Fig-1 network: one or more LATAs (sub-clusters), each
/// with an inner router connecting its server nodes, an outer router joining
/// the LATAs, and client hosts (plus optional cross-traffic "extra" hosts)
/// homed at the outer router. Latency experiments adjust the inter-LATA link
/// propagation ("each of the two inter-lata links includes one-half of the
/// additional latency").

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/router.hpp"

namespace dclue::net {

struct TopologyParams {
  int latas = 1;
  int servers_per_lata = 4;
  int client_hosts = 1;         ///< TPC-C client emulators at the outer router
  int extra_client_hosts = 0;   ///< cross-traffic sources at the outer router
  int extra_servers_per_lata = 0;  ///< cross-traffic sinks inside LATAs

  sim::BitRate host_link_rate = sim::gbps(1);
  sim::Duration host_link_prop = sim::microseconds(5);
  sim::BitRate inter_lata_rate = sim::gbps(1);
  sim::Duration inter_lata_prop = sim::microseconds(5);
  /// Additional one-way inter-LATA latency (Figs 12-13); split across the two
  /// links of the path through the outer router.
  sim::Duration extra_inter_lata_latency = 0.0;

  RouterParams inner_router;
  RouterParams outer_router;
  QosParams qos;
};

class Topology {
 public:
  Topology(sim::Engine& engine, const TopologyParams& params);

  [[nodiscard]] int num_servers() const {
    return params_.latas * params_.servers_per_lata;
  }
  [[nodiscard]] int num_clients() const { return params_.client_hosts; }
  [[nodiscard]] int num_extra_clients() const { return params_.extra_client_hosts; }
  [[nodiscard]] int num_extra_servers() const {
    return params_.latas * params_.extra_servers_per_lata;
  }

  [[nodiscard]] Nic& server_nic(int i) { return *server_nics_.at(i); }
  /// A server's access links (host->router and router->host), the hook
  /// points for link-fault injection and test interposers.
  [[nodiscard]] Link& server_uplink(int i) { return *server_uplinks_.at(i); }
  [[nodiscard]] Link& server_downlink(int i) { return *server_downlinks_.at(i); }
  [[nodiscard]] Nic& client_nic(int i) { return *client_nics_.at(i); }
  [[nodiscard]] Nic& extra_client_nic(int i) { return *extra_client_nics_.at(i); }
  [[nodiscard]] Nic& extra_server_nic(int i) { return *extra_server_nics_.at(i); }

  [[nodiscard]] Router& outer_router() { return *outer_router_; }
  [[nodiscard]] Router& inner_router(int lata) { return *inner_routers_.at(lata); }
  /// The LATA-to-outer / outer-to-LATA link pair for cross-LATA stats.
  [[nodiscard]] Link& lata_uplink(int lata) { return *lata_uplinks_.at(lata); }
  [[nodiscard]] Link& lata_downlink(int lata) { return *lata_downlinks_.at(lata); }

  /// Which LATA a server index belongs to.
  [[nodiscard]] int lata_of_server(int i) const { return i / params_.servers_per_lata; }

  /// Total tail drops across every queue in the fabric.
  [[nodiscard]] std::uint64_t total_drops() const;

  void reset_stats();

  /// Register the fabric probes (routers, inter-LATA trunks, total drops)
  /// and a reset hook that keeps the unregistered access links' windows in
  /// step with the registry's.
  void register_metrics(obs::MetricsRegistry& reg);

 private:
  /// Create a host NIC dual-linked to \p router, registering its route.
  Nic* attach_host(Router& router, const char* name_prefix, int index,
                   bool register_on_outer);

  sim::Engine& engine_;
  TopologyParams params_;
  Address next_address_ = 1;

  std::unique_ptr<Router> outer_router_;
  std::vector<std::unique_ptr<Router>> inner_routers_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<Link*> lata_uplinks_;
  std::vector<Link*> lata_downlinks_;
  std::vector<Link*> server_uplinks_;
  std::vector<Link*> server_downlinks_;
  Link* last_attached_up_ = nullptr;    ///< set by attach_host
  Link* last_attached_down_ = nullptr;  ///< set by attach_host
  std::vector<Nic*> server_nics_;
  std::vector<Nic*> client_nics_;
  std::vector<Nic*> extra_client_nics_;
  std::vector<Nic*> extra_server_nics_;
};

}  // namespace dclue::net
