#include "net/router.hpp"

namespace dclue::net {

void Router::deliver(Packet pkt) {
  if (input_q_.size() >= params_.input_queue_packets) {
    input_drops_.record();
    return;
  }
  pkt.enqueued_at = engine_.now();
  input_q_.push_back(std::move(pkt));
  if (!serving_) service_next();
}

void Router::service_next() {
  if (input_q_.empty()) {
    serving_ = false;
    busy_.record(engine_.now(), 0.0);
    return;
  }
  serving_ = true;
  busy_.record(engine_.now(), 1.0);
  engine_.after(service_interval_, [this] {
    Packet pkt = std::move(input_q_.front());
    input_q_.pop_front();
    fwd_delay_.record(engine_.now() - pkt.enqueued_at);
    forwarded_.record();
    const auto dst = static_cast<std::size_t>(pkt.dst);
    Link* out = dst < routes_.size() && routes_[dst] ? routes_[dst]
                                                     : default_route_;
    if (out) {
      if (params_.per_packet_latency > 0.0) {
        engine_.after(params_.per_packet_latency,
                      [out, p = std::move(pkt)]() mutable { out->deliver(std::move(p)); });
      } else {
        out->deliver(std::move(pkt));
      }
    }
    service_next();
  });
}

}  // namespace dclue::net
