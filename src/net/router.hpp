#pragma once

/// \file router.hpp
/// Store-and-forward router modeled after the OPNET "3M Gigabit" device the
/// paper uses: a shared forwarding engine with a finite packet rate feeding
/// per-port output queues. Fig 8 reproduces the saturation that appears when
/// the forwarding rate is cut from 10000 to 4000 packets/sec.

#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/ring.hpp"
#include "sim/obs/stats.hpp"

namespace dclue::net {

struct RouterParams {
  /// Shared forwarding engine packet rate. The paper's "10000 packets/sec" is
  /// the 100x-scaled figure; this default is the corresponding unscaled rate
  /// (cluster configs divide by the scale factor).
  double forwarding_rate_pps = 1'000'000.0;
  sim::Duration per_packet_latency = 0.0; ///< fixed pipeline latency
  std::size_t input_queue_packets = 2'000;
};

class Router : public PacketSink {
 public:
  Router(sim::Engine& engine, std::string name, RouterParams params = {})
      : engine_(engine),
        name_(std::move(name)),
        params_(params),
        service_interval_(1.0 / params.forwarding_rate_pps) {}

  /// Attach an output link (one per port) and the addresses routed to it.
  /// Addresses are small sequential integers, so the table is a flat vector
  /// indexed by address — one bounds check per forwarded packet, no hashing.
  void add_route(Address dst, Link* out) {
    if (routes_.size() <= static_cast<std::size_t>(dst)) {
      routes_.resize(static_cast<std::size_t>(dst) + 1, nullptr);
    }
    routes_[static_cast<std::size_t>(dst)] = out;
  }
  void set_default_route(Link* out) { default_route_ = out; }

  void deliver(Packet pkt) override;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const obs::Counter& forwarded() const { return forwarded_; }
  [[nodiscard]] const obs::Counter& input_drops() const { return input_drops_; }
  [[nodiscard]] const obs::Tally& forwarding_delay() const { return fwd_delay_; }
  [[nodiscard]] double engine_utilization(sim::Time now) const {
    return busy_.average(now);
  }
  void reset_stats(sim::Time now) {
    forwarded_.reset();
    input_drops_.reset();
    fwd_delay_.reset();
    busy_.reset(now);
  }

  /// Bind the router's collectors under \p prefix ("router.<name>.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    reg.bind(prefix + "forwarded", &forwarded_);
    reg.bind(prefix + "input_drops", &input_drops_);
    reg.bind(prefix + "forwarding_delay", &fwd_delay_);
    reg.bind(prefix + "engine_busy", &busy_);
  }

 private:
  void service_next();

  sim::Engine& engine_;
  std::string name_;
  RouterParams params_;
  sim::Duration service_interval_;  ///< 1 / forwarding rate, fixed at build
  std::vector<Link*> routes_;
  Link* default_route_ = nullptr;
  sim::Ring<Packet> input_q_;
  bool serving_ = false;
  obs::Counter forwarded_;
  obs::Counter input_drops_;
  obs::Tally fwd_delay_;
  obs::TimeWeightedAvg busy_;
};

}  // namespace dclue::net
