#pragma once

/// \file link.hpp
/// Point-to-point Ethernet link: an output queue feeding a serializing
/// transmitter with propagation delay. Full duplex is modeled as two
/// independent Links. Latency-impact experiments (Figs 12-13) adjust
/// propagation delay exactly as the paper adjusts link lengths.

#include <string>

#include "net/packet.hpp"
#include "net/qos.hpp"
#include "sim/engine.hpp"
#include "sim/obs/stats.hpp"
#include "sim/rng.hpp"

namespace dclue::net {

class Link : public PacketSink {
 public:
  Link(sim::Engine& engine, std::string name, sim::BitRate rate,
       sim::Duration propagation, QosParams qos = {})
      : engine_(engine),
        name_(std::move(name)),
        rate_(rate),
        propagation_(propagation),
        queue_(qos) {}

  void connect(PacketSink* sink) { sink_ = sink; }

  /// Enqueue for transmission (tail-drop under QoS limits).
  void deliver(Packet pkt) override;

  void set_propagation(sim::Duration d) { propagation_ = d; }
  [[nodiscard]] sim::Duration propagation() const { return propagation_; }
  [[nodiscard]] sim::BitRate rate() const { return rate_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// --- fault injection ---------------------------------------------------
  /// All hooks are gated on one boolean so the clean path costs a single
  /// predictable branch; no RNG is owned or drawn unless a fault is active.
  void set_link_down(bool down) {
    down_ = down;
    refresh_faulted();
  }
  /// Steady degradation: per-packet drop/corrupt probabilities and added
  /// one-way latency with uniform [0, jitter) spread, drawn from \p rng.
  void set_degradation(double drop_rate, double corrupt_rate,
                       sim::Duration extra_latency, sim::Duration jitter,
                       sim::Rng* rng) {
    drop_rate_ = drop_rate;
    corrupt_rate_ = corrupt_rate;
    extra_latency_ = extra_latency;
    jitter_ = jitter;
    fault_rng_ = rng;
    refresh_faulted();
  }
  void clear_degradation() { set_degradation(0.0, 0.0, 0.0, 0.0, nullptr); }
  [[nodiscard]] bool link_down() const { return down_; }
  [[nodiscard]] std::uint64_t fault_drops() const { return fault_drops_; }
  [[nodiscard]] std::uint64_t fault_corrupts() const { return fault_corrupts_; }

  /// --- metrics -----------------------------------------------------------
  [[nodiscard]] double utilization(sim::Time now) const {
    return busy_.average(now);
  }
  [[nodiscard]] sim::Bytes bytes_sent() const {
    return static_cast<sim::Bytes>(bytes_sent_.count());
  }
  [[nodiscard]] const OutputQueue& queue() const { return queue_; }
  [[nodiscard]] OutputQueue& queue() { return queue_; }
  void reset_stats(sim::Time now) {
    busy_.reset(now);
    bytes_sent_.reset();
    queue_.reset_stats(now);
  }

  /// Bind the link's collectors under \p prefix ("link.<name>.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    reg.bind(prefix + "busy", &busy_);
    reg.bind(prefix + "bytes_sent", &bytes_sent_);
    queue_.register_metrics(reg, prefix + "queue.");
  }

 private:
  void start_transmission();

  void refresh_faulted() {
    faulted_ = down_ || drop_rate_ > 0.0 || corrupt_rate_ > 0.0 ||
               extra_latency_ > 0.0 || jitter_ > 0.0;
  }

  sim::Engine& engine_;
  std::string name_;
  sim::BitRate rate_;
  sim::Duration propagation_;
  OutputQueue queue_;
  PacketSink* sink_ = nullptr;
  /// Serialization-time memo: traffic is almost entirely two packet sizes
  /// (full MSS data and header-only acks), so one cached division covers the
  /// vast majority of transmissions. The cached value is the result of the
  /// exact same transmission_time() expression, so timing is bit-identical.
  sim::Bytes tx_memo_bytes_ = -1;
  sim::Duration tx_memo_time_ = 0.0;
  bool transmitting_ = false;
  obs::TimeWeightedAvg busy_;
  obs::Counter bytes_sent_;
  /// Fault state (see set_link_down / set_degradation). faulted_ is the
  /// single gate the hot path tests; it is true iff any knob is active.
  bool faulted_ = false;
  bool down_ = false;
  double drop_rate_ = 0.0;
  double corrupt_rate_ = 0.0;
  sim::Duration extra_latency_ = 0.0;
  sim::Duration jitter_ = 0.0;
  sim::Rng* fault_rng_ = nullptr;  ///< owned by the injector, not the link
  std::uint64_t fault_drops_ = 0;
  std::uint64_t fault_corrupts_ = 0;
};

}  // namespace dclue::net
