#pragma once

/// \file link.hpp
/// Point-to-point Ethernet link: an output queue feeding a serializing
/// transmitter with propagation delay. Full duplex is modeled as two
/// independent Links. Latency-impact experiments (Figs 12-13) adjust
/// propagation delay exactly as the paper adjusts link lengths.

#include <string>

#include "net/packet.hpp"
#include "net/qos.hpp"
#include "sim/engine.hpp"
#include "sim/obs/stats.hpp"

namespace dclue::net {

class Link : public PacketSink {
 public:
  Link(sim::Engine& engine, std::string name, sim::BitRate rate,
       sim::Duration propagation, QosParams qos = {})
      : engine_(engine),
        name_(std::move(name)),
        rate_(rate),
        propagation_(propagation),
        queue_(qos) {}

  void connect(PacketSink* sink) { sink_ = sink; }

  /// Enqueue for transmission (tail-drop under QoS limits).
  void deliver(Packet pkt) override;

  void set_propagation(sim::Duration d) { propagation_ = d; }
  [[nodiscard]] sim::Duration propagation() const { return propagation_; }
  [[nodiscard]] sim::BitRate rate() const { return rate_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// --- metrics -----------------------------------------------------------
  [[nodiscard]] double utilization(sim::Time now) const {
    return busy_.average(now);
  }
  [[nodiscard]] sim::Bytes bytes_sent() const {
    return static_cast<sim::Bytes>(bytes_sent_.count());
  }
  [[nodiscard]] const OutputQueue& queue() const { return queue_; }
  [[nodiscard]] OutputQueue& queue() { return queue_; }
  void reset_stats(sim::Time now) {
    busy_.reset(now);
    bytes_sent_.reset();
    queue_.reset_stats(now);
  }

  /// Bind the link's collectors under \p prefix ("link.<name>.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    reg.bind(prefix + "busy", &busy_);
    reg.bind(prefix + "bytes_sent", &bytes_sent_);
    queue_.register_metrics(reg, prefix + "queue.");
  }

 private:
  void start_transmission();

  sim::Engine& engine_;
  std::string name_;
  sim::BitRate rate_;
  sim::Duration propagation_;
  OutputQueue queue_;
  PacketSink* sink_ = nullptr;
  /// Serialization-time memo: traffic is almost entirely two packet sizes
  /// (full MSS data and header-only acks), so one cached division covers the
  /// vast majority of transmissions. The cached value is the result of the
  /// exact same transmission_time() expression, so timing is bit-identical.
  sim::Bytes tx_memo_bytes_ = -1;
  sim::Duration tx_memo_time_ = 0.0;
  bool transmitting_ = false;
  obs::TimeWeightedAvg busy_;
  obs::Counter bytes_sent_;
};

}  // namespace dclue::net
