#pragma once

/// \file packet.hpp
/// Wire-level datatypes. Every byte the model moves — IPC control and data,
/// iSCSI PDUs, client-server requests, FTP cross traffic — travels as TCP
/// segments inside IP/Ethernet framing, because the whole point of the paper
/// is a *unified* Ethernet fabric.

#include <cstdint>

#include "sim/units.hpp"

namespace dclue::net {

/// Flat node address (hosts and router ports share one space).
using Address = std::uint32_t;
inline constexpr Address kNoAddress = 0xffffffff;

/// Diff-serv code point groups used in the study (§3.4): everything defaults
/// to best effort; the interfering FTP traffic is optionally promoted to
/// AF21, which OPNET's default implementation maps to priority treatment.
enum class Dscp : std::uint8_t { kBestEffort = 0, kAF21 = 1 };
inline constexpr int kNumDscp = 2;

/// TCP segment. Payload content is not simulated (the database layer keeps
/// the real data); TCP moves byte *counts* with exact sequencing semantics.
struct TcpSegment {
  std::uint64_t conn_id = 0;
  std::uint16_t dst_port = 0;  ///< listener rendezvous (meaningful on SYN)
  std::int64_t seq = 0;      ///< first payload byte's sequence number
  std::int64_t ack = 0;      ///< cumulative ack
  sim::Bytes len = 0;        ///< payload bytes
  bool syn = false;
  bool fin = false;
  bool is_ack = false;
  bool ece = false;          ///< ECN echo (receiver -> sender)
  bool cwr = false;          ///< congestion window reduced (sender -> receiver)
  bool ce = false;           ///< congestion experienced (set by routers)
};

/// TCP/IP + Ethernet framing overhead per segment.
inline constexpr sim::Bytes kHeaderBytes = 58;

struct Packet {
  Address src = kNoAddress;
  Address dst = kNoAddress;
  Dscp dscp = Dscp::kBestEffort;
  /// Set by a degraded link's fault hook; the receiving NIC drops the frame
  /// on its FCS check, so corruption is never visible above L2. Sits in
  /// padding after dscp — no size growth on the hot path.
  bool corrupt = false;
  sim::Bytes bytes = 0;  ///< on-wire size including headers
  TcpSegment seg;
  sim::Time enqueued_at = 0.0;  ///< set by queues for delay accounting
};

/// Anything that can accept a packet: links deliver into routers and NICs.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet pkt) = 0;
};

}  // namespace dclue::net
