#pragma once

/// \file fusion.hpp
/// Cache fusion: the paper's §2.1 directory-based coherence protocol tying
/// together buffer caches, the directory service, global locks, remote log
/// flushes, and the storage path (local SCSI vs remote iSCSI). This is the
/// "A/B/C" exchange: A misses, asks directory home B, B forwards to supplier
/// C, C ships the block to A as an 8 KB+ data message, A confirms to B.

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/directory.hpp"
#include "cluster/ipc.hpp"
#include "core/config.hpp"
#include "core/node_stats.hpp"
#include "db/buffer_cache.hpp"
#include "db/lock_manager.hpp"
#include "db/mvcc.hpp"
#include "proto/iscsi.hpp"
#include "storage/disk_array.hpp"

namespace dclue::cluster {

/// Versioning data shipped along with fused blocks ("the larger part comes
/// because of additional versioning data").
inline constexpr sim::Bytes kVersionExtraBytes = 1024;

/// Storage home for pages not tied to a warehouse (item table, index pages):
/// deterministic hash spread across nodes. Shared between the access path
/// and cache prewarming so both agree.
constexpr int page_hash_home(db::PageId page, int num_nodes) {
  std::uint64_t h = page * 0x9e3779b97f4a7c15ULL;
  return static_cast<int>((h >> 17) % static_cast<std::uint64_t>(num_nodes));
}

/// Disk block address for a page: per-table regions, so the elevator works
/// per table as in the paper.
constexpr std::int64_t block_address(db::PageId page) {
  const auto table = static_cast<std::int64_t>(page >> 60);
  const bool index = db::is_index_page(page);
  const auto page_no = static_cast<std::int64_t>(db::page_number(page));
  // Clustered page numbers are sparse (warehouse bits up high); fold the
  // high bits in rather than truncating, or every district's pages would
  // alias onto a handful of blocks (and spindles).
  const auto folded = page_no ^ (page_no >> 17) ^ (page_no >> 34) ^ (page_no >> 51);
  return (table << 18) | (index ? (1 << 17) : 0) | (folded & 0x1ffff);
}

struct FusionDeps {
  sim::Engine* engine = nullptr;
  int node_id = 0;
  int num_nodes = 1;
  IpcService* ipc = nullptr;
  db::BufferCache* cache = nullptr;
  DirectoryService* directory = nullptr;  ///< this node's homed portion
  db::LockManager* locks = nullptr;       ///< this node's homed portion
  db::VersionManager* versions = nullptr;
  storage::BlockDevice* data_disk = nullptr;
  /// iSCSI initiators indexed by target node; [node_id] unused.
  std::vector<proto::IscsiInitiator*> iscsi;
  IpcService::Charge charge;
  core::PathLengths pl;
  core::NodeStats* stats = nullptr;
  /// Directory / lock mastering function (partition-affine; see
  /// cluster/partition.hpp). Falls back to hashing when unset.
  std::function<int(db::PageId)> dir_home_fn;
};

class FusionLayer {
 public:
  explicit FusionLayer(FusionDeps deps);

  /// Bring \p page into the local buffer cache with the requested mode.
  /// \p storage_home: node whose disks hold the page (warehouse partition).
  /// \p allocate: the page is being appended to (inserts); if no node holds
  /// it there is nothing to read from disk — it is born in the cache.
  sim::Task<void> access_page(db::PageId page, bool exclusive, int storage_home,
                              bool allocate = false);

  /// Global exclusive locks, homed with the page's directory node (the home
  /// is computed by the caller from the page and carried with the name).
  sim::Task<bool> lock_try(db::LockName name, int home, db::TxnToken txn);
  sim::Task<bool> lock_wait(db::LockName name, int home, db::TxnToken txn);
  sim::Task<void> lock_release(db::LockName name, int home, db::TxnToken txn);

  /// Ship a log flush to the central log node (Fig 9).
  sim::Task<void> remote_log_flush(int log_node, sim::Bytes bytes);
  /// Installed on the log node: performs the actual durable write.
  void set_log_writer(std::function<sim::Task<void>(sim::Bytes)> fn) {
    log_writer_ = std::move(fn);
  }

  [[nodiscard]] int dir_home(db::PageId page) const {
    if (d_.dir_home_fn) return d_.dir_home_fn(page);
    return page_hash_home(page, d_.num_nodes);
  }

 private:
  struct DirRequestBody {
    db::PageId page;
    bool exclusive;
    bool upgrade_only;           ///< requester already holds a shared copy
    std::uint64_t data_req_id;   ///< correlation id for the block transfer
  };
  struct DirReplyBody {
    bool has_supplier;
    int supplier;
  };
  struct BlockForwardBody {
    db::PageId page;
    int requester;
    std::uint64_t data_req_id;
  };
  struct PageBody {
    db::PageId page;
  };
  struct LockBody {
    db::LockName name;
    db::TxnToken txn;
    bool wait;
  };
  struct LockReplyBody {
    bool granted;
  };
  struct BytesBody {
    sim::Bytes bytes;
  };

  void note_remote(db::PageId page);
  void register_handlers();
  sim::Task<void> fetch_miss(db::PageId page, bool exclusive, int storage_home,
                             bool upgrade_only, bool allocate);
  sim::Task<void> disk_fetch(db::PageId page, int storage_home);
  void write_back(db::PageId page, int storage_home);
  void process_evictions(const db::BufferCache::EvictedList& evicted);
  void serve_block(db::PageId page, int requester, std::uint64_t data_req_id);
  sim::DetachedTask handle_dir_request(Envelope env);
  sim::DetachedTask handle_lock_acquire(Envelope env);
  sim::DetachedTask handle_log_flush(Envelope env);

  FusionDeps d_;
  std::function<sim::Task<void>(sim::Bytes)> log_writer_;
  std::unordered_map<db::PageId, std::shared_ptr<sim::Gate>> inflight_;
};

}  // namespace dclue::cluster
