#include "cluster/fusion.hpp"

#include <cassert>

namespace dclue::cluster {

FusionLayer::FusionLayer(FusionDeps deps) : d_(std::move(deps)) {
  register_handlers();
}

void FusionLayer::note_remote(db::PageId page) {
  const auto t = static_cast<std::size_t>(page >> 60) & 15;
  if ((page >> 55) & 1) {
    d_.stats->remote_index_by_table[t].record();
  } else {
    d_.stats->remote_by_table[t].record();
  }
}

void FusionLayer::register_handlers() {
  d_.ipc->set_handler(kDirRequest,
                      [this](Envelope env) { handle_dir_request(std::move(env)); });
  d_.ipc->set_handler(kBlockForward, [this](Envelope env) {
    auto body = std::static_pointer_cast<BlockForwardBody>(env.body);
    serve_block(body->page, body->requester, body->data_req_id);
  });
  d_.ipc->set_handler(kInvalidate, [this](Envelope env) {
    auto body = std::static_pointer_cast<PageBody>(env.body);
    d_.cache->invalidate(body->page);
  });
  d_.ipc->set_handler(kDirConfirm, [this](Envelope env) {
    auto body = std::static_pointer_cast<PageBody>(env.body);
    d_.directory->confirm(body->page, env.src_node);
  });
  d_.ipc->set_handler(kDirEvict, [this](Envelope env) {
    auto body = std::static_pointer_cast<PageBody>(env.body);
    d_.directory->evict(body->page, env.src_node);
  });
  d_.ipc->set_handler(kLockAcquire,
                      [this](Envelope env) { handle_lock_acquire(std::move(env)); });
  d_.ipc->set_handler(kLockRelease, [this](Envelope env) {
    auto body = std::static_pointer_cast<LockBody>(env.body);
    d_.locks->release(body->name, body->txn);
  });
  d_.ipc->set_handler(kLogFlush,
                      [this](Envelope env) { handle_log_flush(std::move(env)); });
}

// ---------------------------------------------------------------------------
// Page access
// ---------------------------------------------------------------------------

sim::Task<void> FusionLayer::access_page(db::PageId page, bool exclusive,
                                         int storage_home, bool allocate) {
  struct StageGauge {
    obs::Gauge* g;
    explicit StageGauge(obs::Gauge* p) : g(p) { g->record_delta(1.0); }
    ~StageGauge() { g->record_delta(-1.0); }
  } gauge(&d_.stats->in_fusion);
  const db::PageMode mode =
      exclusive ? db::PageMode::kExclusive : db::PageMode::kShared;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (d_.cache->contains(page, mode)) {
      d_.cache->touch(page);
      d_.stats->buffer_hits.record();
      co_return;
    }
    // Coalesce concurrent fetches of the same page.
    auto it = inflight_.find(page);
    if (it != inflight_.end()) {
      auto gate = it->second;
      d_.stats->in_inflight_wait.record_delta(1.0);
      co_await gate->wait();
      d_.stats->in_inflight_wait.record_delta(-1.0);
      continue;  // re-check mode; the in-flight fetch may have been shared
    }
    const bool upgrade_only = d_.cache->resident(page) && exclusive;
    d_.stats->buffer_misses.record();
    auto gate = std::make_shared<sim::Gate>(*d_.engine);
    inflight_[page] = gate;
    co_await d_.charge(d_.pl.buffer_miss, cpu::JobClass::kApplication);
    co_await fetch_miss(page, exclusive, storage_home, upgrade_only, allocate);
    auto evicted = d_.cache->insert(page, mode);
    process_evictions(evicted);
    inflight_.erase(page);
    gate->open();
    co_return;
  }
}

sim::Task<void> FusionLayer::fetch_miss(db::PageId page, bool exclusive,
                                        int storage_home, bool upgrade_only,
                                        bool allocate) {
  const int home = dir_home(page);
  bool has_supplier = false;

  if (home == d_.node_id) {
    // Local directory: the lookup is a table operation, no messaging.
    auto result = d_.directory->lookup(page, d_.node_id, exclusive);
    for (int h : result.invalidate) {
      if (h == d_.node_id) continue;
      d_.ipc->send_control(h, kInvalidate, std::make_shared<PageBody>(PageBody{page}));
    }
    if (!upgrade_only && result.has_supplier) {
      const std::uint64_t data_req = d_.ipc->new_req_id();
      d_.ipc->send_control(
          result.supplier, kBlockForward,
          std::make_shared<BlockForwardBody>(
              BlockForwardBody{page, d_.node_id, data_req}));
      d_.stats->in_block_wait.record_delta(1.0);
      auto data = co_await d_.ipc->await_reply(data_req);
      d_.stats->in_block_wait.record_delta(-1.0);
      if (data) {
        d_.stats->remote_fetches.record();
        note_remote(page);
        co_return;
      }
      // Supplier crashed before transferring: fall back to the disk read.
    } else {
      has_supplier = result.has_supplier;
    }
  } else {
    const std::uint64_t data_req = d_.ipc->new_req_id();
    // Hoisted out of the co_await expression: GCC 12 double-destroys
    // non-trivial temporaries inside co_await call expressions.
    auto req_body = std::make_shared<DirRequestBody>(
        DirRequestBody{page, exclusive, upgrade_only, data_req});
    d_.stats->in_dir_rpc.record_delta(1.0);
    auto reply_any = co_await d_.ipc->rpc(home, kDirRequest, req_body);
    d_.stats->in_dir_rpc.record_delta(-1.0);
    if (!reply_any) {
      // Directory home crashed mid-RPC. Drop the data correlation id (a
      // straggler transfer must not park in the pending table forever) and
      // fall back to the disk read below.
      d_.ipc->discard_reply(data_req);
    } else {
      auto reply = std::static_pointer_cast<DirReplyBody>(reply_any);
      if (!upgrade_only && reply->has_supplier) {
        d_.stats->in_block_wait.record_delta(1.0);
        auto data = co_await d_.ipc->await_reply(data_req);
        d_.stats->in_block_wait.record_delta(-1.0);
        if (data) {
          d_.stats->remote_fetches.record();
          note_remote(page);
          // "A eventually informs B of successful retrieval."
          d_.ipc->send_control(home, kDirConfirm,
                               std::make_shared<PageBody>(PageBody{page}));
          co_return;
        }
        // Supplier crashed before transferring: read from disk instead.
      }
      has_supplier = reply->has_supplier;
    }
  }

  if (upgrade_only) co_return;  // permission granted; data already local
  (void)has_supplier;
  if (allocate) co_return;  // fresh append page: born in cache, no disk read
  // Negative response: "A obtains block X from the disk (local or remote)."
  co_await disk_fetch(page, storage_home);
  if (home != d_.node_id) {
    d_.ipc->send_control(home, kDirConfirm,
                         std::make_shared<PageBody>(PageBody{page}));
  }
}

sim::Task<void> FusionLayer::disk_fetch(db::PageId page, int storage_home) {
  struct StageGauge {
    obs::Gauge* g;
    explicit StageGauge(obs::Gauge* p) : g(p) { g->record_delta(1.0); }
    ~StageGauge() { g->record_delta(-1.0); }
  } gauge(&d_.stats->in_disk);
  d_.stats->disk_reads.record();
  {
    const auto t = static_cast<std::size_t>(page >> 60) & 15;
    if (db::is_index_page(page)) {
      d_.stats->disk_index_by_table[t].record();
    } else {
      d_.stats->disk_by_table[t].record();
    }
  }
  if (storage_home == d_.node_id || d_.num_nodes == 1) {
    co_await d_.charge(d_.pl.local_io, cpu::JobClass::kKernel);
    co_await d_.data_disk->read(block_address(page), db::kPageBytes);
  } else {
    d_.stats->iscsi_reads.record();
    co_await d_.iscsi[static_cast<std::size_t>(storage_home)]->read(
        block_address(page), db::kPageBytes);
  }
}

void FusionLayer::write_back(db::PageId page, int storage_home) {
  // Lazy dirty-page write-back: background disk load, nobody waits on it.
  sim::spawn([](FusionLayer* self, db::PageId page,
                int storage_home) -> sim::Task<void> {
    if (storage_home == self->d_.node_id || self->d_.num_nodes == 1) {
      co_await self->d_.data_disk->write(block_address(page), db::kPageBytes);
    } else {
      co_await self->d_.iscsi[static_cast<std::size_t>(storage_home)]->write(
          block_address(page), db::kPageBytes);
    }
  }(this, page, storage_home));
}

void FusionLayer::process_evictions(const db::BufferCache::EvictedList& evicted) {
  for (db::PageId page : evicted) {
    const int home = dir_home(page);
    if (home == d_.node_id) {
      d_.directory->evict(page, d_.node_id);
    } else {
      d_.ipc->send_control(home, kDirEvict,
                           std::make_shared<PageBody>(PageBody{page}));
    }
  }
}

void FusionLayer::serve_block(db::PageId page, int requester,
                              std::uint64_t data_req_id) {
  // Block transfers carry the 8 KB page plus versioning data.
  const sim::Bytes bytes = kBlockBaseBytes + kVersionExtraBytes;
  d_.ipc->send_data(requester, kBlockTransfer, bytes,
                    std::make_shared<PageBody>(PageBody{page}), data_req_id);
}

sim::DetachedTask FusionLayer::handle_dir_request(Envelope env) {
  auto body = std::static_pointer_cast<DirRequestBody>(env.body);
  const int requester = env.src_node;
  auto result = d_.directory->lookup(body->page, requester, body->exclusive);
  for (int h : result.invalidate) {
    if (h == requester) continue;
    if (h == d_.node_id) {
      d_.cache->invalidate(body->page);
    } else {
      d_.ipc->send_control(h, kInvalidate,
                           std::make_shared<PageBody>(PageBody{body->page}));
    }
  }
  if (!body->upgrade_only && result.has_supplier) {
    if (result.supplier == d_.node_id) {
      serve_block(body->page, requester, body->data_req_id);
    } else {
      d_.ipc->send_control(result.supplier, kBlockForward,
                           std::make_shared<BlockForwardBody>(BlockForwardBody{
                               body->page, requester, body->data_req_id}));
    }
  }
  d_.ipc->send_control(requester, kDirReply,
                       std::make_shared<DirReplyBody>(
                           DirReplyBody{result.has_supplier, result.supplier}),
                       env.req_id);
  co_return;
}

// ---------------------------------------------------------------------------
// Global locks
// ---------------------------------------------------------------------------

sim::Task<bool> FusionLayer::lock_try(db::LockName name, int home,
                                      db::TxnToken txn) {
  co_await d_.charge(d_.pl.lock_op, cpu::JobClass::kApplication);
  if (home == d_.node_id) co_return d_.locks->try_acquire(name, txn);
  auto body = std::make_shared<LockBody>(LockBody{name, txn, false});
  auto reply = co_await d_.ipc->rpc(home, kLockAcquire, body);
  // Null reply: the lock home crashed mid-RPC. Treat as not granted; the
  // executor's release-and-retry path handles it like any lock failure.
  if (!reply) co_return false;
  co_return std::static_pointer_cast<LockReplyBody>(reply)->granted;
}

sim::Task<bool> FusionLayer::lock_wait(db::LockName name, int home,
                                       db::TxnToken txn) {
  co_await d_.charge(d_.pl.lock_op, cpu::JobClass::kApplication);
  if (home == d_.node_id) co_return co_await d_.locks->acquire_wait(name, txn, 0.0);
  auto body = std::make_shared<LockBody>(LockBody{name, txn, true});
  auto reply = co_await d_.ipc->rpc(home, kLockAcquire, body);
  if (!reply) co_return false;  // lock home crashed; caller retries or aborts
  co_return std::static_pointer_cast<LockReplyBody>(reply)->granted;
}

sim::Task<void> FusionLayer::lock_release(db::LockName name, int home,
                                          db::TxnToken txn) {
  co_await d_.charge(d_.pl.lock_op, cpu::JobClass::kApplication);
  if (home == d_.node_id) {
    d_.locks->release(name, txn);
  } else {
    d_.ipc->send_control(home, kLockRelease,
                         std::make_shared<LockBody>(LockBody{name, txn, false}));
  }
}

sim::DetachedTask FusionLayer::handle_lock_acquire(Envelope env) {
  auto body = std::static_pointer_cast<LockBody>(env.body);
  bool granted;
  if (body->wait) {
    granted = co_await d_.locks->acquire_wait(body->name, body->txn, 0.0);
  } else {
    granted = d_.locks->try_acquire(body->name, body->txn);
  }
  d_.ipc->send_control(env.src_node, kLockReply,
                       std::make_shared<LockReplyBody>(LockReplyBody{granted}),
                       env.req_id);
}

// ---------------------------------------------------------------------------
// Centralized logging (Fig 9)
// ---------------------------------------------------------------------------

sim::Task<void> FusionLayer::remote_log_flush(int log_node, sim::Bytes bytes) {
  auto body = std::make_shared<BytesBody>(BytesBody{bytes});
  auto reply = co_await d_.ipc->rpc(log_node, kLogFlush, body);
  (void)reply;
}

sim::DetachedTask FusionLayer::handle_log_flush(Envelope env) {
  auto body = std::static_pointer_cast<BytesBody>(env.body);
  if (log_writer_) co_await log_writer_(body->bytes);
  d_.ipc->send_control(env.src_node, kLogFlushAck,
                       std::make_shared<BytesBody>(*body), env.req_id);
}

}  // namespace dclue::cluster
