#pragma once

/// \file ipc.hpp
/// Inter-node IPC for the clustered DBMS: typed control messages (~250 B, the
/// paper's figure) and block data messages (8 KB+) over the per-node-pair
/// IPC TCP connection, with request/response correlation. Every message send
/// and receive charges application-level handling path length on the node's
/// CPUs, on top of the TCP costs charged by the stack — both the "overhead"
/// the paper's Fig 11 measures.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/node_stats.hpp"
#include "cpu/processor.hpp"
#include "proto/channel.hpp"
#include "sim/inline_fn.hpp"
#include "sim/sync.hpp"

namespace dclue::cluster {

enum IpcType : std::uint32_t {
  kDirRequest = 1,
  kDirReply,
  kBlockForward,   ///< directory -> supplier: "send the block to requester"
  kBlockTransfer,  ///< supplier -> requester: the data message
  kDirConfirm,
  kDirEvict,
  kInvalidate,
  kLockAcquire,
  kLockReply,
  kLockRelease,
  kLogFlush,
  kLogFlushAck,
};

inline constexpr sim::Bytes kControlMsgBytes = 250;
inline constexpr sim::Bytes kBlockBaseBytes = 8192;

/// One slot per IpcType (values start at 1; slot 0 is unused).
inline constexpr std::size_t kNumIpcTypes = 13;

[[nodiscard]] constexpr const char* ipc_type_name(std::uint32_t type) {
  switch (type) {
    case kDirRequest:    return "dir_request";
    case kDirReply:      return "dir_reply";
    case kBlockForward:  return "block_forward";
    case kBlockTransfer: return "block_transfer";
    case kDirConfirm:    return "dir_confirm";
    case kDirEvict:      return "dir_evict";
    case kInvalidate:    return "invalidate";
    case kLockAcquire:   return "lock_acquire";
    case kLockReply:     return "lock_reply";
    case kLockRelease:   return "lock_release";
    case kLogFlush:      return "log_flush";
    case kLogFlushAck:   return "log_flush_ack";
    default:             return "unknown";
  }
}

/// Correlation envelope carried by every IPC message.
struct Envelope {
  std::uint64_t req_id = 0;
  int src_node = -1;
  std::shared_ptr<void> body;
};

class IpcService {
 public:
  /// Handler for incoming non-reply messages.
  using Handler = std::function<void(Envelope)>;
  /// Charges path length to this node's CPUs. Same inline-storage type as
  /// net::CpuCharge so the node wiring passes one callable to both layers.
  using Charge =
      sim::InlineFn<sim::Task<void>(sim::PathLength, cpu::JobClass)>;

  IpcService(sim::Engine& engine, int node_id, core::NodeStats& stats,
             sim::PathLength handler_pl, Charge charge)
      : engine_(engine),
        node_id_(node_id),
        stats_(stats),
        handler_pl_(handler_pl),
        charge_(std::move(charge)) {}

  /// Bind the channel toward \p peer and start its reader loop.
  void attach_peer(int peer, std::shared_ptr<proto::MsgChannel> channel);

  void set_handler(IpcType type, Handler handler) {
    handlers_[type] = std::move(handler);
  }

  /// One-way control message (~250 B).
  void send_control(int dst, IpcType type, std::shared_ptr<void> body,
                    std::uint64_t req_id = 0);

  /// Data message (block transfer, \p bytes >= 8 KB).
  void send_data(int dst, IpcType type, sim::Bytes bytes,
                 std::shared_ptr<void> body, std::uint64_t req_id);

  /// Control RPC: send and await the correlated reply body.
  sim::Task<std::shared_ptr<void>> rpc(int dst, IpcType type,
                                       std::shared_ptr<void> body);

  /// Await an async reply routed by \p req_id (e.g. a 3-way block transfer
  /// where the data comes from a different node than the request went to).
  sim::Task<std::shared_ptr<void>> await_reply(std::uint64_t req_id);

  /// Allocate a correlation id for a multi-party exchange.
  std::uint64_t new_req_id() { return next_req_id_++; }

  /// Fail every in-flight request/response exchange: waiters resume with a
  /// null body (their degraded-path fallback); replies that arrived for
  /// exchanges whose waiter is itself being failed are discarded. Called on
  /// node crash (cluster-wide) and on an IPC channel reset. Returns the
  /// number of exchanges failed.
  std::size_t fail_all_pending();

  /// Drop a correlation id allocated for an exchange that was abandoned
  /// before its await (e.g. the setup RPC failed); keeps an early-arriving
  /// reply from parking in pending_ forever.
  void discard_reply(std::uint64_t req_id) { pending_.erase(req_id); }

  [[nodiscard]] std::uint64_t failed_rpcs() const { return failed_rpcs_; }
  [[nodiscard]] std::uint64_t dropped_sends() const { return dropped_sends_; }
  [[nodiscard]] std::size_t rpcs_pending() const { return pending_.size(); }

  [[nodiscard]] int node_id() const { return node_id_; }
  [[nodiscard]] bool connected_to(int peer) const {
    return peers_.contains(peer);
  }
  [[nodiscard]] std::uint64_t sent_of_type(IpcType type) const {
    return sent_by_type_[static_cast<std::size_t>(type)].count();
  }

  /// Bind the per-message-class send counters (the cache-fusion / lock /
  /// log traffic mix) under \p prefix ("node0.ipc.sent.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    for (std::uint32_t t = 1; t < kNumIpcTypes; ++t) {
      reg.bind(prefix + ipc_type_name(t), &sent_by_type_[t]);
    }
  }

 private:
  sim::DetachedTask reader_loop(int peer, std::shared_ptr<proto::MsgChannel> ch);
  void dispatch(Envelope env, std::uint32_t type);

  struct Pending {
    std::unique_ptr<sim::Gate> gate;
    std::shared_ptr<void> body;
    bool arrived = false;
  };

  sim::Engine& engine_;
  int node_id_;
  core::NodeStats& stats_;
  sim::PathLength handler_pl_;
  Charge charge_;
  std::unordered_map<int, std::shared_ptr<proto::MsgChannel>> peers_;
  std::unordered_map<IpcType, Handler> handlers_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_req_id_ = 1;
  std::array<obs::Counter, kNumIpcTypes> sent_by_type_;
  std::uint64_t failed_rpcs_ = 0;
  std::uint64_t dropped_sends_ = 0;
};

}  // namespace dclue::cluster
