#pragma once

/// \file partition.hpp
/// Warehouse partitioning and page homing. The database is partitioned in
/// equal blocks of warehouses per node (§2.2); a page's *storage* home is
/// the node whose disks hold it, and — as in RAC's resource affinity — the
/// directory/lock master for a partitioned page is co-located with its
/// partition, so a perfectly affine workload (alpha = 1.0) generates almost
/// no IPC. Pages with no warehouse identity (item table) are hash-mastered
/// across the cluster.
///
/// Every warehouse-keyed table is key-clustered (see db::TableSpec), so both
/// data pages (page_no = key / rows_per_page) and index leaf pages
/// (page_no = key / keys_per_leaf) preserve the warehouse bits of the key,
/// which this map reconstructs.

#include <algorithm>

#include "cluster/fusion.hpp"
#include "db/tpcc_schema.hpp"

namespace dclue::cluster {

class PartitionMap {
 public:
  PartitionMap(const db::TpccDatabase& db, int nodes) : db_(&db), nodes_(nodes) {}

  [[nodiscard]] int nodes() const { return nodes_; }

  [[nodiscard]] int owner_of_warehouse(std::int64_t w) const {
    const std::int64_t total = db_->scale().warehouses;
    const std::int64_t idx = std::clamp<std::int64_t>(w - 1, 0, total - 1);
    return static_cast<int>(idx * nodes_ / total);
  }

  /// Directory / lock master (and storage home) for a page.
  [[nodiscard]] int home_of_page(db::PageId page) const {
    if (nodes_ == 1) return 0;
    const db::TableId table = db::table_of_page(page);
    if (table == db::TableId::kItem) return page_hash_home(page, nodes_);

    const bool index = db::is_index_page(page);
    const auto page_no = static_cast<std::int64_t>(db::page_number(page));
    // Reconstruct the LAST key coverable by the page. Key runs start at the
    // bottom of each warehouse's block, so when a page straddles a block
    // boundary its populated rows belong to the *higher* warehouse — the
    // end-of-page key recovers exactly that one.
    const std::int64_t keys_per_page =
        index ? 32 : rows_per_page(table);  // Table::kIndexKeysPerLeaf
    const std::int64_t key = (page_no + 1) * keys_per_page - 1;
    return owner_of_warehouse(std::max<std::int64_t>(key >> key_shift(table), 1));
  }

  /// Bit position of the warehouse id within each table's composite key.
  [[nodiscard]] static int key_shift(db::TableId table) {
    switch (table) {
      case db::TableId::kWarehouse:
        return 0;
      case db::TableId::kDistrict:
        return 8;
      case db::TableId::kCustomer:
        return 28;
      case db::TableId::kStock:
        return 20;
      case db::TableId::kOrder:
      case db::TableId::kNewOrder:
        return 40;
      case db::TableId::kOrderLine:
        return 44;
      case db::TableId::kHistory:
        return 32;
      default:
        return 0;
    }
  }

 private:
  [[nodiscard]] static std::int64_t rows_per_page(db::TableId table) {
    switch (table) {
      case db::TableId::kWarehouse:
        return 1;  // padded hot rows
      case db::TableId::kDistrict:
        return db::kPageBytes / db::TpccSpecs::district.row_bytes;
      case db::TableId::kCustomer:
        return db::kPageBytes / db::TpccSpecs::customer.row_bytes;
      case db::TableId::kStock:
        return db::kPageBytes / db::TpccSpecs::stock.row_bytes;
      case db::TableId::kOrder:
        return db::kPageBytes / db::TpccSpecs::order.row_bytes;
      case db::TableId::kNewOrder:
        return db::kPageBytes / db::TpccSpecs::new_order.row_bytes;
      case db::TableId::kOrderLine:
        return db::kPageBytes / db::TpccSpecs::order_line.row_bytes;
      case db::TableId::kHistory:
        return db::kPageBytes / db::TpccSpecs::history.row_bytes;
      default:
        return 1;
    }
  }

  const db::TpccDatabase* db_;
  int nodes_;
};

}  // namespace dclue::cluster
