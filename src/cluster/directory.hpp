#pragma once

/// \file directory.hpp
/// Cache-fusion directory (the "B" role in the paper's §2.1 protocol). Pages
/// are hash-homed across nodes; each node runs one DirectoryService instance
/// for the pages it homes. The directory knows which nodes hold a page and
/// which (if any) holds it exclusively, and picks the data supplier for
/// remote fetches.
///
/// Hot-path layout: the page table is an open-addressing sim::FlatMap and
/// holder sets are inline sim::SmallVecs (a page is resident on a handful of
/// nodes, not the whole cluster), so the lookup/confirm/evict cycle driven
/// by every remote fetch allocates nothing once the table is warm.

#include <algorithm>

#include "db/table.hpp"
#include "sim/flat_map.hpp"
#include "sim/small_vec.hpp"

namespace dclue::cluster {

class DirectoryService {
 public:
  /// Node ids holding a page; inline capacity covers typical sharing fanout.
  using HolderList = sim::SmallVec<int, 4>;

  struct LookupResult {
    bool has_supplier = false;
    int supplier = -1;
    HolderList invalidate;  ///< holders to invalidate (exclusive reqs)
  };

  /// Look up \p page on behalf of \p requester. The requester is recorded as
  /// an (in-flight) holder immediately so concurrent lookups can be served
  /// from it once its copy lands. For exclusive requests, all other holders
  /// are scheduled for invalidation.
  LookupResult lookup(db::PageId page, int requester, bool exclusive) {
    Entry& entry = entries_[page];
    LookupResult result;
    // Prefer the exclusive owner as supplier, else any holder.
    if (entry.exclusive_owner >= 0 && entry.exclusive_owner != requester) {
      result.has_supplier = true;
      result.supplier = entry.exclusive_owner;
    } else {
      for (int h : entry.holders) {
        if (h != requester) {
          result.has_supplier = true;
          result.supplier = h;
          break;
        }
      }
    }
    if (exclusive) {
      for (int h : entry.holders) {
        if (h != requester) result.invalidate.push_back(h);
      }
      entry.holders.clear();
      entry.holders.push_back(requester);
      entry.exclusive_owner = requester;
    } else {
      if (std::find(entry.holders.begin(), entry.holders.end(), requester) ==
          entry.holders.end()) {
        entry.holders.push_back(requester);
      }
      if (entry.exclusive_owner >= 0 && entry.exclusive_owner != requester) {
        // Shared request demotes the exclusive owner to a plain holder.
        entry.exclusive_owner = -1;
      }
    }
    return result;
  }

  /// The requester confirms successful retrieval ("A eventually informs B").
  void confirm(db::PageId page, int holder) {
    Entry& entry = entries_[page];
    if (std::find(entry.holders.begin(), entry.holders.end(), holder) ==
        entry.holders.end()) {
      entry.holders.push_back(holder);
    }
  }

  /// A holder evicted its copy ("if A had to evict a block ... it informs B").
  void evict(db::PageId page, int holder) {
    auto it = entries_.find(page);
    if (it == entries_.end()) return;
    HolderList& holders = it->value.holders;
    holders.truncate(static_cast<std::size_t>(
        std::remove(holders.begin(), holders.end(), holder) -
        holders.begin()));
    if (it->value.exclusive_owner == holder) it->value.exclusive_owner = -1;
    if (holders.empty()) entries_.erase_compact(it);
  }

  [[nodiscard]] std::size_t entries() const { return entries_.size(); }
  [[nodiscard]] int holder_count(db::PageId page) const {
    auto it = entries_.find(page);
    return it == entries_.end() ? 0 : static_cast<int>(it->value.holders.size());
  }

  /// Crash cleanup: forget \p node as holder / exclusive owner of every
  /// page it held (its cache is gone, it can no longer supply blocks).
  /// Returns the number of entries the node was removed from.
  std::size_t purge_holder(int node) {
    std::size_t purged = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      HolderList& holders = it->value.holders;
      const auto removed = std::remove(holders.begin(), holders.end(), node);
      const bool touched = removed != holders.end() ||
                           it->value.exclusive_owner == node;
      holders.truncate(static_cast<std::size_t>(removed - holders.begin()));
      if (it->value.exclusive_owner == node) it->value.exclusive_owner = -1;
      if (touched) ++purged;
      if (holders.empty()) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return purged;
  }

  /// The directory node itself crashed: its table restarts empty (holders
  /// re-register through confirm/lookup traffic after recovery).
  void clear() { entries_.clear(); }

  [[nodiscard]] const sim::ProbeStats& probe_stats() const {
    return entries_.probe_stats();
  }

 private:
  struct Entry {
    HolderList holders;
    int exclusive_owner = -1;
  };
  sim::FlatMap<db::PageId, Entry> entries_;
};

}  // namespace dclue::cluster
