#pragma once

/// \file directory.hpp
/// Cache-fusion directory (the "B" role in the paper's §2.1 protocol). Pages
/// are hash-homed across nodes; each node runs one DirectoryService instance
/// for the pages it homes. The directory knows which nodes hold a page and
/// which (if any) holds it exclusively, and picks the data supplier for
/// remote fetches.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "db/table.hpp"

namespace dclue::cluster {

class DirectoryService {
 public:
  struct LookupResult {
    bool has_supplier = false;
    int supplier = -1;
    std::vector<int> invalidate;  ///< holders to invalidate (exclusive reqs)
  };

  /// Look up \p page on behalf of \p requester. The requester is recorded as
  /// an (in-flight) holder immediately so concurrent lookups can be served
  /// from it once its copy lands. For exclusive requests, all other holders
  /// are scheduled for invalidation.
  LookupResult lookup(db::PageId page, int requester, bool exclusive) {
    auto& entry = entries_[page];
    LookupResult result;
    // Prefer the exclusive owner as supplier, else any holder.
    if (entry.exclusive_owner >= 0 && entry.exclusive_owner != requester) {
      result.has_supplier = true;
      result.supplier = entry.exclusive_owner;
    } else {
      for (int h : entry.holders) {
        if (h != requester) {
          result.has_supplier = true;
          result.supplier = h;
          break;
        }
      }
    }
    if (exclusive) {
      for (int h : entry.holders) {
        if (h != requester) result.invalidate.push_back(h);
      }
      entry.holders.clear();
      entry.holders.push_back(requester);
      entry.exclusive_owner = requester;
    } else {
      if (std::find(entry.holders.begin(), entry.holders.end(), requester) ==
          entry.holders.end()) {
        entry.holders.push_back(requester);
      }
      if (entry.exclusive_owner >= 0 && entry.exclusive_owner != requester) {
        // Shared request demotes the exclusive owner to a plain holder.
        entry.exclusive_owner = -1;
      }
    }
    return result;
  }

  /// The requester confirms successful retrieval ("A eventually informs B").
  void confirm(db::PageId page, int holder) {
    auto& entry = entries_[page];
    if (std::find(entry.holders.begin(), entry.holders.end(), holder) ==
        entry.holders.end()) {
      entry.holders.push_back(holder);
    }
  }

  /// A holder evicted its copy ("if A had to evict a block ... it informs B").
  void evict(db::PageId page, int holder) {
    auto it = entries_.find(page);
    if (it == entries_.end()) return;
    auto& holders = it->second.holders;
    holders.erase(std::remove(holders.begin(), holders.end(), holder),
                  holders.end());
    if (it->second.exclusive_owner == holder) it->second.exclusive_owner = -1;
    if (holders.empty()) entries_.erase(it);
  }

  [[nodiscard]] std::size_t entries() const { return entries_.size(); }
  [[nodiscard]] int holder_count(db::PageId page) const {
    auto it = entries_.find(page);
    return it == entries_.end() ? 0 : static_cast<int>(it->second.holders.size());
  }

  /// Crash cleanup: forget \p node as holder / exclusive owner of every
  /// page it held (its cache is gone, it can no longer supply blocks).
  /// Returns the number of entries the node was removed from.
  std::size_t purge_holder(int node) {
    std::size_t purged = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto& holders = it->second.holders;
      const auto removed =
          std::remove(holders.begin(), holders.end(), node);
      const bool touched = removed != holders.end() ||
                           it->second.exclusive_owner == node;
      holders.erase(removed, holders.end());
      if (it->second.exclusive_owner == node) it->second.exclusive_owner = -1;
      if (touched) ++purged;
      if (holders.empty()) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return purged;
  }

  /// The directory node itself crashed: its table restarts empty (holders
  /// re-register through confirm/lookup traffic after recovery).
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::vector<int> holders;
    int exclusive_owner = -1;
  };
  std::unordered_map<db::PageId, Entry> entries_;
};

}  // namespace dclue::cluster
