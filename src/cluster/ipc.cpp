#include "cluster/ipc.hpp"

#include "sim/obs/trace.hpp"

namespace dclue::cluster {

void IpcService::attach_peer(int peer, std::shared_ptr<proto::MsgChannel> channel) {
  peers_[peer] = channel;
  reader_loop(peer, std::move(channel));
}

void IpcService::send_control(int dst, IpcType type, std::shared_ptr<void> body,
                              std::uint64_t req_id) {
  auto it = peers_.find(dst);
  if (it == peers_.end()) {
    // Peer channel gone (reset under a long outage). Dropping the send is the
    // crash-consistent behaviour: the waiter times out or is failed by the
    // fault path, never blocked on an unreachable peer.
    ++dropped_sends_;
    return;
  }
  stats_.ipc_control_sent.record();
  stats_.ipc_control_bytes.record(kControlMsgBytes);
  sent_by_type_[static_cast<std::size_t>(type)].record();
  DCLUE_TRACE_INSTANT("ipc", ipc_type_name(type), engine_.now(),
                      static_cast<std::uint32_t>(node_id_));
  proto::Message msg;
  msg.type = type;
  msg.bytes = kControlMsgBytes;
  msg.payload = std::make_shared<Envelope>(Envelope{req_id, node_id_, std::move(body)});
  it->second->send(std::move(msg));
}

void IpcService::send_data(int dst, IpcType type, sim::Bytes bytes,
                           std::shared_ptr<void> body, std::uint64_t req_id) {
  auto it = peers_.find(dst);
  if (it == peers_.end()) {
    ++dropped_sends_;
    return;
  }
  stats_.ipc_data_sent.record();
  stats_.ipc_data_bytes.record(static_cast<std::uint64_t>(bytes));
  sent_by_type_[static_cast<std::size_t>(type)].record();
  DCLUE_TRACE_INSTANT("ipc", ipc_type_name(type), engine_.now(),
                      static_cast<std::uint32_t>(node_id_));
  proto::Message msg;
  msg.type = type;
  msg.bytes = bytes;
  msg.payload = std::make_shared<Envelope>(Envelope{req_id, node_id_, std::move(body)});
  it->second->send(std::move(msg));
}

sim::Task<std::shared_ptr<void>> IpcService::rpc(int dst, IpcType type,
                                                 std::shared_ptr<void> body) {
  const std::uint64_t id = new_req_id();
  send_control(dst, type, std::move(body), id);
  co_return co_await await_reply(id);
}

sim::Task<std::shared_ptr<void>> IpcService::await_reply(std::uint64_t req_id) {
  auto& slot = pending_[req_id];
  // The reply may already have arrived (3-way exchanges where the data
  // message from C can beat B's control reply back to us).
  if (slot.arrived) {
    auto body = std::move(slot.body);
    pending_.erase(req_id);
    co_return body;
  }
  slot.gate = std::make_unique<sim::Gate>(engine_);
  co_await slot.gate->wait();
  auto body = std::move(pending_[req_id].body);
  pending_.erase(req_id);
  co_return body;
}

sim::DetachedTask IpcService::reader_loop(int peer,
                                          std::shared_ptr<proto::MsgChannel> ch) {
  for (;;) {
    proto::Message msg = co_await ch->inbox().receive();
    if (msg.type >= proto::kChannelClosed) {
      // The paper avoids DBMS connection resets by raising the TCP
      // retransmission limit; if one happens anyway, the peer is gone.
      // Deliberately over-approximate: fail every in-flight exchange, not
      // just this peer's (correlation ids do not record the peer). Waiters
      // toward healthy peers take their degraded fallback once — safe,
      // deterministic, and resets are rare even under injected faults.
      fail_all_pending();
      peers_.erase(peer);
      co_return;
    }
    // Application-level IPC handling cost (the receive interrupts
    // application processing; TCP per-segment costs were already charged).
    co_await charge_(handler_pl_, cpu::JobClass::kKernel);
    if (msg.bytes <= kControlMsgBytes) {
      stats_.control_msg_delay.record(engine_.now() - msg.sent_at);
    }
    auto env = std::static_pointer_cast<Envelope>(msg.payload);
    dispatch(std::move(*env), msg.type);
  }
}

std::size_t IpcService::fail_all_pending() {
  // Snapshot ids first: Gate::open defers resumption through the engine, but
  // waiters erase their own slots and may start new exchanges, so the map
  // must not be iterated while being mutated.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, slot] : pending_) ids.push_back(id);
  std::size_t failed = 0;
  for (const std::uint64_t id : ids) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    Pending& slot = it->second;
    if (slot.gate) {
      // A parked waiter: resume it with a null body. The waiter erases the
      // slot when it runs.
      slot.body = nullptr;
      slot.arrived = true;
      slot.gate->open();
    } else {
      // Reply arrived before its await, or never will: the requester is
      // blocked inside another exchange of the same protocol step (which
      // this loop also fails), so it takes its fallback and never awaits
      // this id. Drop the slot.
      pending_.erase(it);
    }
    ++failed;
  }
  failed_rpcs_ += failed;
  return failed;
}

void IpcService::dispatch(Envelope env, std::uint32_t type) {
  switch (type) {
    case kDirReply:
    case kLockReply:
    case kLogFlushAck:
    case kBlockTransfer: {
      auto& slot = pending_[env.req_id];
      slot.body = std::move(env.body);
      slot.arrived = true;
      if (slot.gate) slot.gate->open();
      return;
    }
    default: {
      auto it = handlers_.find(static_cast<IpcType>(type));
      if (it != handlers_.end()) it->second(std::move(env));
      return;
    }
  }
}

}  // namespace dclue::cluster
