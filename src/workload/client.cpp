#include "workload/client.hpp"

namespace dclue::workload {

sim::DetachedTask TerminalFleet::open_loop_arrivals() {
  sim::Rng rng = rngs_.stream("open-loop",
                              static_cast<std::uint64_t>(params_.first_terminal_index));
  if (params_.start_gate) co_await params_.start_gate->wait();
  for (;;) {
    co_await sim::delay_for(engine_, rng.exponential(1.0 / params_.open_loop_rate));
    if (inflight_ >= params_.max_inflight) {
      ++admission_drops_;
      continue;
    }
    // Arrivals cycle through the warehouse space like the terminal pool.
    const std::int64_t w =
        static_cast<std::int64_t>((params_.first_terminal_index + next_arrival_++) %
                                  static_cast<std::uint64_t>(params_.warehouses)) +
        1;
    const int server = rng.chance(params_.affinity)
                           ? params_.owner_of_warehouse(w)
                           : static_cast<int>(rng.uniform_int(0, params_.nodes - 1));
    one_business_txn(w, server);
  }
}

sim::DetachedTask TerminalFleet::one_business_txn(std::int64_t w, int server) {
  ++inflight_;
  const sim::Time t0 = engine_.now();
  TpccInputGenerator gen(
      scale_, rngs_.stream("open-gen", next_arrival_ * 131 +
                                           static_cast<std::uint64_t>(
                                               params_.first_terminal_index)));
  auto conn = stack_.connect(params_.server_addrs[static_cast<std::size_t>(server)],
                             kDbPort);
  auto channel = std::make_shared<proto::MsgChannel>(conn);
  ++stuck_connecting;
  co_await conn->established().wait();
  --stuck_connecting;
  if (conn->state() == net::TcpConnection::State::kClosed) {
    ++conn_failures_;
    --inflight_;
    co_return;
  }
  bool ok = true;
  for (const TxnInput& input : gen.business_transaction(w)) {
    proto::Message req;
    req.type = kClientRequest;
    req.bytes = kRequestBytes;
    req.payload = std::make_shared<ClientRequestBody>(ClientRequestBody{input});
    channel->send(std::move(req));
    ++stuck_receiving;
    proto::Message reply = co_await channel->inbox().receive();
    --stuck_receiving;
    if (reply.type >= proto::kChannelClosed) {
      ok = false;
      break;
    }
  }
  if (ok) {
    ++completed_;
    bt_time_.record(engine_.now() - t0);
    if (conn->state() != net::TcpConnection::State::kClosed) conn->close();
  } else {
    ++conn_failures_;
  }
  --inflight_;
}

sim::DetachedTask TerminalFleet::terminal_loop(int t) {
  const int global_index = params_.first_terminal_index + t;
  sim::Rng rng = rngs_.stream("terminal", static_cast<std::uint64_t>(global_index));
  TpccInputGenerator gen(scale_,
                         rngs_.stream("terminal-gen",
                                      static_cast<std::uint64_t>(global_index)));
  // Fixed warehouse binding per the TPC-C terminal rules.
  const std::int64_t w = global_index % params_.warehouses + 1;
  const int home = params_.owner_of_warehouse(w);

  if (params_.start_gate) co_await params_.start_gate->wait();
  for (;;) {
    co_await sim::delay_for(engine_, rng.exponential(params_.think_time));
    // Affinity routing: right server with probability alpha, random otherwise.
    const int server = rng.chance(params_.affinity)
                           ? home
                           : static_cast<int>(rng.uniform_int(0, params_.nodes - 1));
    auto conn = stack_.connect(params_.server_addrs[static_cast<std::size_t>(server)],
                               kDbPort);
    auto channel = std::make_shared<proto::MsgChannel>(conn);
    co_await conn->established().wait();
    if (conn->state() == net::TcpConnection::State::kClosed) {
      ++conn_failures_;
      continue;
    }
    bool ok = true;
    for (const TxnInput& input : gen.business_transaction(w)) {
      proto::Message req;
      req.type = kClientRequest;
      req.bytes = kRequestBytes;
      req.payload = std::make_shared<ClientRequestBody>(ClientRequestBody{input});
      channel->send(std::move(req));
      proto::Message reply = co_await channel->inbox().receive();
      if (reply.type >= proto::kChannelClosed) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++completed_;
      if (conn->state() != net::TcpConnection::State::kClosed) conn->close();
    } else {
      ++conn_failures_;
    }
  }
}

}  // namespace dclue::workload
