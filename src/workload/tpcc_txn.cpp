#include "workload/tpcc_txn.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "sim/obs/trace.hpp"

namespace dclue::workload {

/// Trace span labels indexed by TxnType (string literals: the tracer stores
/// pointers, not copies).
constexpr const char* kTxnTraceNames[kNumTxnTypes] = {
    "new_order", "payment", "order_status", "delivery", "stock_level"};

using db::key_i;
using db::key_w;
using db::key_wd;
using db::key_wdc;
using db::key_wdo;
using db::key_wdool;
using db::key_wi;

// ---------------------------------------------------------------------------
// Input generation (TPC-C clause 2)
// ---------------------------------------------------------------------------

TxnInput TpccInputGenerator::generate(TxnType type, std::int64_t home_w) {
  TxnInput in;
  in.type = type;
  in.w = home_w;
  in.d = rng_.uniform_int(1, scale_.districts_per_warehouse);
  in.c = rng_.nurand(255, 1, scale_.customers_per_district);
  switch (type) {
    case TxnType::kNewOrder: {
      const int n_lines = static_cast<int>(rng_.uniform_int(5, 15));
      for (int i = 0; i < n_lines; ++i) {
        OrderLineInput line;
        line.item = rng_.nurand(std::min<std::int64_t>(8191, scale_.items - 1), 1,
                                scale_.items);
        // 1% of lines are supplied by a remote warehouse.
        line.supply_w = (scale_.warehouses > 1 && rng_.chance(0.01))
                            ? rng_.uniform_int(1, scale_.warehouses)
                            : home_w;
        line.quantity = static_cast<int>(rng_.uniform_int(1, 10));
        in.lines.push_back(line);
      }
      in.rollback = rng_.chance(0.01);
      break;
    }
    case TxnType::kPayment: {
      in.amount = rng_.uniform(1.0, 5000.0);
      // 15% of payments are for a customer of a remote warehouse.
      if (scale_.warehouses > 1 && rng_.chance(0.15)) {
        do {
          in.c_w = rng_.uniform_int(1, scale_.warehouses);
        } while (in.c_w == home_w && scale_.warehouses > 1);
        in.c_d = rng_.uniform_int(1, scale_.districts_per_warehouse);
      } else {
        in.c_w = home_w;
        in.c_d = in.d;
      }
      break;
    }
    case TxnType::kStockLevel:
      in.threshold = static_cast<int>(rng_.uniform_int(10, 20));
      break;
    default:
      break;
  }
  return in;
}

std::vector<TxnInput> TpccInputGenerator::business_transaction(std::int64_t home_w) {
  // New-order first, then companions drawn so that the long-run mix matches
  // 43/43/5/5/4: one payment per new-order, and the minor transactions with
  // probability (share / new-order share).
  std::vector<TxnInput> seq;
  seq.push_back(generate(TxnType::kNewOrder, home_w));
  seq.push_back(generate(TxnType::kPayment, home_w));
  if (rng_.chance(kTxnMix[2] / kTxnMix[0])) {
    seq.push_back(generate(TxnType::kOrderStatus, home_w));
  }
  if (rng_.chance(kTxnMix[3] / kTxnMix[0])) {
    seq.push_back(generate(TxnType::kDelivery, home_w));
  }
  if (rng_.chance(kTxnMix[4] / kTxnMix[0])) {
    seq.push_back(generate(TxnType::kStockLevel, home_w));
  }
  return seq;
}

// ---------------------------------------------------------------------------
// Row access primitives
// ---------------------------------------------------------------------------

using cluster::page_hash_home;

template <typename Row>
sim::Task<Row*> TpccExecutor::read_row(TxnCtx& ctx, db::Table<Row>& table,
                                       db::Key key, std::int64_t w) {
  const db::PageId index_page = table.index_page_of(key);
  const int idx_home = w >= 0 ? storage_home(w)
                              : page_hash_home(index_page, env_.num_nodes);
  co_await env_.proc->compute(env_.pl.index_probe, cpu::JobClass::kApplication,
                              ctx.tid);
  co_await env_.fusion->access_page(index_page, false, idx_home);
  auto id = table.find_id(key);
  if (!id) co_return nullptr;
  const db::PageId page = table.page_for(key, *id);
  const int home = w >= 0 ? storage_home(w) : page_hash_home(page, env_.num_nodes);
  co_await env_.fusion->access_page(page, false, home);
  const int hops =
      env_.versions->chain_hops(page, table.subpage_for(key, *id), ctx.snapshot);
  co_await env_.proc->compute(
      env_.pl.row_read + hops * env_.pl.version_hop, cpu::JobClass::kApplication,
      ctx.tid);
  co_return &table.row(*id);
}

template <typename Row>
sim::Task<void> TpccExecutor::write_row(TxnCtx& ctx, db::Table<Row>& table,
                                        db::Key key, std::int64_t w,
                                        std::function<void(Row&)> apply) {
  const db::PageId index_page = table.index_page_of(key);
  const int home = w >= 0 ? storage_home(w) : page_hash_home(index_page, env_.num_nodes);
  co_await env_.proc->compute(env_.pl.index_probe, cpu::JobClass::kApplication,
                              ctx.tid);
  co_await env_.fusion->access_page(index_page, false, home);
  auto id = table.find_id(key);
  if (!id) co_return;  // row vanished (e.g. concurrent delivery)
  const db::PageId page = table.page_for(key, *id);
  co_await env_.fusion->access_page(page, true, home);
  const int subpage = table.subpage_for(key, *id);
  co_await env_.proc->compute(env_.pl.row_update, cpu::JobClass::kApplication,
                              ctx.tid);
  // Phase 1: intention latch only; the global lock conversion happens at
  // commit, in sequence order.
  ctx.locks.push_back({db::lock_name(page, subpage), env_.fusion->dir_home(page)});
  ctx.writes.push_back({page, subpage, table.spec().subpage_bytes});
  ctx.log_bytes += table.spec().row_bytes + 64;  // record header
  ctx.applies.push_back([&table, id, apply = std::move(apply)] {
    apply(table.row(*id));
  });
}

template <typename Row>
sim::Task<void> TpccExecutor::insert_row(TxnCtx& ctx, db::Table<Row>& table,
                                         db::Key predicted_key, std::int64_t w,
                                         std::function<void()> apply) {
  const db::PageId page = table.spec().clustered
                              ? table.data_page_of_key(predicted_key)
                              : table.append_page();
  const int home = w >= 0 ? storage_home(w) : page_hash_home(page, env_.num_nodes);
  co_await env_.proc->compute(env_.pl.index_probe, cpu::JobClass::kApplication,
                              ctx.tid);
  // Both the index leaf and the data page may be freshly created by this
  // insert (leaf split / extent allocation): nothing to read from disk.
  co_await env_.fusion->access_page(table.index_page_of(predicted_key), false, home,
                                    /*allocate=*/true);
  co_await env_.fusion->access_page(page, true, home, /*allocate=*/true);
  co_await env_.proc->compute(env_.pl.row_insert, cpu::JobClass::kApplication,
                              ctx.tid);
  // Inserts latch the append page only for the duration of the operation
  // (heap/leaf insertion), not until commit — cross-transaction ordering of
  // new rows is already serialized by the district row lock. A commit-length
  // lock here would falsely serialize every new-order in the cluster.
  ctx.log_bytes += table.spec().row_bytes + 64;
  ctx.applies.push_back(std::move(apply));
}

// ---------------------------------------------------------------------------
// Transaction bodies (phase 1)
// ---------------------------------------------------------------------------

sim::Task<void> TpccExecutor::new_order(const TxnInput& in, TxnCtx& ctx) {
  auto& db = *env_.db;
  co_await read_row(ctx, db.warehouse, key_w(in.w), in.w);
  co_await read_row(ctx, db.customer, key_wdc(in.w, in.d, in.c), in.w);
  // District: allocate the order id under the write lock at apply time.
  // (All lambdas below are named locals: GCC 12 double-destroys non-trivial
  // temporaries appearing inside co_await call expressions.)
  auto o_id = std::make_shared<std::int64_t>(0);
  std::function<void(db::DistrictRow&)> bump_order_id =
      [o_id](db::DistrictRow& r) { *o_id = r.next_o_id++; };
  co_await write_row<db::DistrictRow>(ctx, db.district, key_wd(in.w, in.d), in.w,
                                      bump_order_id);
  for (const auto& line : in.lines) {
    co_await read_row(ctx, db.item, key_i(line.item), -1);
    std::function<void(db::StockRow&)> take_stock =
        [qty = line.quantity](db::StockRow& s) {
          s.quantity = static_cast<std::int16_t>(s.quantity - qty);
          if (s.quantity < 10) s.quantity = static_cast<std::int16_t>(s.quantity + 91);
          s.ytd += qty;
          ++s.order_cnt;
        };
    co_await write_row<db::StockRow>(ctx, db.stock,
                                     key_wi(line.supply_w, line.item),
                                     line.supply_w, take_stock);
  }
  // Order + new-order + order-lines are inserted once the order id is known.
  const std::int64_t o_pred = db.district.find(key_wd(in.w, in.d))->next_o_id;
  const TxnInput input_copy = in;
  std::function<void()> insert_order_rows = [&db, input_copy, o_id] {
        db::OrderRow row;
        row.c_id = static_cast<std::int32_t>(input_copy.c);
        row.ol_cnt = static_cast<std::int8_t>(input_copy.lines.size());
        db.order.insert(key_wdo(input_copy.w, input_copy.d, *o_id), row);
        db.new_order.insert(key_wdo(input_copy.w, input_copy.d, *o_id),
                            db::NewOrderRow{});
        for (std::size_t i = 0; i < input_copy.lines.size(); ++i) {
          db::OrderLineRow line;
          line.i_id = static_cast<std::int32_t>(input_copy.lines[i].item);
          line.supply_w = static_cast<std::int32_t>(input_copy.lines[i].supply_w);
          line.quantity = static_cast<std::int8_t>(input_copy.lines[i].quantity);
          db.order_line.insert(
              key_wdool(input_copy.w, input_copy.d, *o_id,
                        static_cast<std::int64_t>(i + 1)),
              line);
        }
        // Index maintenance for order-status's customer->last-order lookup.
        if (auto* cust = db.customer.find(
                key_wdc(input_copy.w, input_copy.d, input_copy.c))) {
          cust->last_o_id = static_cast<std::int32_t>(*o_id);
        }
      };
  co_await insert_row<db::OrderRow>(ctx, db.order, key_wdo(in.w, in.d, o_pred),
                                    in.w, insert_order_rows);
  std::function<void()> noop = [] {};
  co_await insert_row<db::NewOrderRow>(ctx, db.new_order,
                                       key_wdo(in.w, in.d, o_pred), in.w, noop);
  // Order lines land on the district's order-line pages.
  for (std::size_t i = 0; i < in.lines.size(); ++i) {
    co_await insert_row<db::OrderLineRow>(
        ctx, db.order_line,
        key_wdool(in.w, in.d, o_pred, static_cast<std::int64_t>(i + 1)), in.w,
        noop);
  }
}

sim::Task<void> TpccExecutor::payment(const TxnInput& in, TxnCtx& ctx) {
  auto& db = *env_.db;
  const double amount = in.amount;
  std::function<void(db::WarehouseRow&)> pay_wh =
      [amount](db::WarehouseRow& r) { r.ytd += amount; };
  co_await write_row<db::WarehouseRow>(ctx, db.warehouse, key_w(in.w), in.w,
                                       pay_wh);
  std::function<void(db::DistrictRow&)> pay_d =
      [amount](db::DistrictRow& r) { r.ytd += amount; };
  co_await write_row<db::DistrictRow>(ctx, db.district, key_wd(in.w, in.d), in.w,
                                      pay_d);
  std::function<void(db::CustomerRow&)> pay_c = [amount](db::CustomerRow& r) {
    r.balance -= amount;
    r.ytd_payment += amount;
    ++r.payment_cnt;
  };
  co_await write_row<db::CustomerRow>(ctx, db.customer,
                                      key_wdc(in.c_w, in.c_d, in.c), in.c_w,
                                      pay_c);
  auto& dbref = db;
  const std::int64_t hw = in.w;
  std::function<void()> insert_history = [&dbref, hw] {
    dbref.history.insert(db::key_history(hw, dbref.next_history_id++),
                         db::HistoryRow{});
  };
  co_await insert_row<db::HistoryRow>(ctx, db.history,
                                      db::key_history(in.w, db.next_history_id),
                                      in.w, insert_history);
}

sim::Task<void> TpccExecutor::order_status(const TxnInput& in, TxnCtx& ctx) {
  auto& db = *env_.db;
  auto* cust = co_await read_row(ctx, db.customer, key_wdc(in.w, in.d, in.c), in.w);
  if (!cust || cust->last_o_id == 0) co_return;
  const std::int64_t o = cust->last_o_id;
  auto* order = co_await read_row(ctx, db.order, key_wdo(in.w, in.d, o), in.w);
  if (!order) co_return;
  for (int ol = 1; ol <= order->ol_cnt; ++ol) {
    co_await read_row(ctx, db.order_line, key_wdool(in.w, in.d, o, ol), in.w);
  }
}

sim::Task<void> TpccExecutor::delivery(const TxnInput& in, TxnCtx& ctx) {
  auto& db = *env_.db;
  for (std::int64_t d = 1; d <= env_.db->scale().districts_per_warehouse; ++d) {
    // Oldest undelivered order in this district (ordered index scan).
    co_await env_.proc->compute(env_.pl.index_probe, cpu::JobClass::kApplication,
                                ctx.tid);
    const db::PageId no_index = db.new_order.index_page_of(key_wdo(in.w, d, 0));
    co_await env_.fusion->access_page(no_index, false, storage_home(in.w));
    auto it = db.new_order.lower_bound(key_wdo(in.w, d, 0));
    if (!it.valid() || it.key() >= key_wdo(in.w, d + 1, 0)) continue;
    const db::Key no_key = it.key();
    const std::int64_t o = static_cast<std::int64_t>(no_key & 0xffffffff);

    // Remove the new-order row (erase is applied at commit).
    std::function<void(db::NewOrderRow&)> no_noop = [](db::NewOrderRow&) {};
    co_await write_row<db::NewOrderRow>(ctx, db.new_order, no_key, in.w, no_noop);
    ctx.applies.push_back([&db, no_key] { db.new_order.erase(no_key); });

    auto* order = co_await read_row(ctx, db.order, key_wdo(in.w, d, o), in.w);
    if (!order) continue;
    const int ol_cnt = order->ol_cnt;
    const std::int64_t c_id = order->c_id;
    std::function<void(db::OrderRow&)> set_carrier = [](db::OrderRow& r) {
      r.carrier_id = 5;
    };
    co_await write_row<db::OrderRow>(ctx, db.order, key_wdo(in.w, d, o), in.w,
                                     set_carrier);
    std::function<void(db::OrderLineRow&)> mark_delivered =
        [](db::OrderLineRow& r) { r.delivered = true; };
    for (int ol = 1; ol <= ol_cnt; ++ol) {
      co_await write_row<db::OrderLineRow>(
          ctx, db.order_line, key_wdool(in.w, d, o, ol), in.w, mark_delivered);
    }
    std::function<void(db::CustomerRow&)> bump_delivery =
        [](db::CustomerRow& r) { ++r.delivery_cnt; };
    co_await write_row<db::CustomerRow>(ctx, db.customer,
                                        key_wdc(in.w, d, c_id), in.w,
                                        bump_delivery);
  }
}

sim::Task<void> TpccExecutor::stock_level(const TxnInput& in, TxnCtx& ctx) {
  auto& db = *env_.db;
  auto* dist = co_await read_row(ctx, db.district, key_wd(in.w, in.d), in.w);
  if (!dist) co_return;
  const std::int64_t next_o = dist->next_o_id;
  std::set<std::int64_t> items;
  for (std::int64_t o = std::max<std::int64_t>(1, next_o - 20); o < next_o; ++o) {
    auto* order = co_await read_row(ctx, db.order, key_wdo(in.w, in.d, o), in.w);
    if (!order) continue;
    for (int ol = 1; ol <= order->ol_cnt; ++ol) {
      auto* line =
          co_await read_row(ctx, db.order_line, key_wdool(in.w, in.d, o, ol), in.w);
      if (line) items.insert(line->i_id);
    }
  }
  int low = 0;
  for (std::int64_t item : items) {
    auto* stock = co_await read_row(ctx, db.stock, key_wi(in.w, item), in.w);
    if (stock && stock->quantity < in.threshold) ++low;
  }
  (void)low;
}

// ---------------------------------------------------------------------------
// Execution driver: phase 1 -> phase 2 (ordered lock conversion) -> apply
// ---------------------------------------------------------------------------

sim::Task<bool> TpccExecutor::execute(const TxnInput& input, cpu::ThreadId tid) {
  if (env_.alive && !*env_.alive) {
    // Crash-stop: a dead node's server loop may still see queued requests;
    // they abort immediately without touching any shared state.
    env_.stats->txns_aborted.record();
    co_return false;
  }
  TxnCtx ctx;
  ctx.token = next_token_ * static_cast<std::uint64_t>(env_.num_nodes) +
              static_cast<std::uint64_t>(env_.node_id);
  ++next_token_;
  ctx.snapshot = *env_.global_clock;
  ctx.tid = tid;

  const sim::Time t_begin = env_.engine->now();
  co_await env_.proc->compute(env_.pl.txn_begin, cpu::JobClass::kApplication, tid);
  env_.stats->in_phase1.record_delta(1.0);
  co_await run_txn(input, ctx);
  env_.stats->in_phase1.record_delta(-1.0);
  ctx.phase1_done = env_.engine->now();
  ctx.started = t_begin;

  if (input.rollback) {
    // Spec-mandated new-order rollback: nothing applied, latches dropped.
    co_await env_.proc->compute(env_.pl.txn_begin, cpu::JobClass::kApplication, tid);
    env_.stats->txns_aborted.record();
    co_return false;
  }
  const bool committed = co_await commit(ctx);
  if (committed) {
    env_.stats->txns_committed.record();
    if (input.type == TxnType::kNewOrder) env_.stats->new_orders_committed.record();
    // Latency budget of this transaction, by phase and by type.
    const sim::Duration total = env_.engine->now() - ctx.started;
    env_.stats->t_total.record(total);
    env_.stats->t_by_type[static_cast<std::size_t>(input.type)].record(total);
    env_.stats->t_phase1.record(ctx.phase1_done - ctx.started);
    env_.stats->t_locks.record(ctx.lock_time);
    env_.stats->t_log.record(ctx.log_time);
    env_.stats->t_apply.record(ctx.apply_time);
    DCLUE_TRACE_SPAN("txn", kTxnTraceNames[static_cast<std::size_t>(input.type)],
                     ctx.started, env_.engine->now(),
                     static_cast<std::uint32_t>(env_.node_id));
  } else {
    env_.stats->txns_aborted.record();
    DCLUE_TRACE_INSTANT("txn", "abort", env_.engine->now(),
                        static_cast<std::uint32_t>(env_.node_id));
  }
  co_return committed;
}

sim::Task<bool> TpccExecutor::run_txn(const TxnInput& input, TxnCtx& ctx) {
  switch (input.type) {
    case TxnType::kNewOrder:
      co_await new_order(input, ctx);
      break;
    case TxnType::kPayment:
      co_await payment(input, ctx);
      break;
    case TxnType::kOrderStatus:
      co_await order_status(input, ctx);
      break;
    case TxnType::kDelivery:
      co_await delivery(input, ctx);
      break;
    case TxnType::kStockLevel:
      co_await stock_level(input, ctx);
      break;
  }
  co_return true;
}

sim::Task<void> TpccExecutor::release_all(TxnCtx& ctx, std::size_t count) {
  for (std::size_t i = 0; i < count && i < ctx.locks.size(); ++i) {
    co_await env_.fusion->lock_release(ctx.locks[i].name, ctx.locks[i].home,
                                       ctx.token);
  }
}

sim::Task<bool> TpccExecutor::commit(TxnCtx& ctx) {
  // Convert latches to locks in sequence order, deduplicated (several row
  // ops in one sub-page need one lock).
  std::vector<LockRef> ordered;
  ordered.reserve(ctx.locks.size());
  for (const LockRef& ref : ctx.locks) {
    if (std::find(ordered.begin(), ordered.end(), ref) == ordered.end()) {
      ordered.push_back(ref);
    }
  }
  ctx.locks = std::move(ordered);

  constexpr int kMaxRetries = 8;
  const sim::Time locks_begin = env_.engine->now();
  for (int attempt = 0;; ++attempt) {
    // The node may have crashed while this transaction was in phase 1 or
    // asleep between retries; abort before acquiring anything.
    if (env_.alive && !*env_.alive) co_return false;
    std::size_t acquired = 0;
    bool all_granted = true;
    for (std::size_t i = 0; i < ctx.locks.size(); ++i) {
      env_.stats->lock_acquisitions.record();
      bool granted = co_await env_.fusion->lock_try(ctx.locks[i].name,
                                                    ctx.locks[i].home, ctx.token);
      if (!granted && i == 0) {
        // Wait on the first lock in the sequence (holding nothing: safe).
        env_.stats->lock_waits.record();
        const sim::Time t0 = env_.engine->now();
        env_.stats->in_lock_wait.record_delta(1.0);
        granted = co_await env_.fusion->lock_wait(ctx.locks[i].name,
                                                  ctx.locks[i].home, ctx.token);
        env_.stats->in_lock_wait.record_delta(-1.0);
        env_.stats->lock_wait_time.record(env_.engine->now() - t0);
        DCLUE_TRACE_SPAN("lock", "lock_wait", t0, env_.engine->now(),
                         static_cast<std::uint32_t>(env_.node_id));
      }
      if (granted) {
        ++acquired;
        continue;
      }
      // Later failure: release everything and retry after a delay.
      env_.stats->lock_failures.record();
      co_await release_all(ctx, acquired);
      all_granted = false;
      break;
    }
    if (all_granted) break;
    if (attempt >= kMaxRetries) co_return false;
    co_await sim::delay_for(*env_.engine,
                            env_.rng->exponential(env_.lock_retry_delay));
  }

  ctx.lock_time = env_.engine->now() - locks_begin;

  // Final liveness check before any write becomes visible: a node that
  // crashed during lock acquisition releases promptly and applies nothing,
  // so committed state never contains a dead node's writes.
  if (env_.alive && !*env_.alive) {
    co_await release_all(ctx, ctx.locks.size());
    co_return false;
  }

  // Apply: versions, real row mutations, WAL.
  const sim::Time apply_begin = env_.engine->now();
  const db::Timestamp ts = ++(*env_.global_clock);
  for (const auto& w : ctx.writes) {
    env_.versions->create_version(w.page, w.subpage, ts, w.bytes);
  }
  for (auto& apply : ctx.applies) apply();
  if (ctx.log_bytes > 0) {
    env_.stats->dirty_bytes_accum += ctx.log_bytes;
    env_.log->append(std::max<sim::Bytes>(ctx.log_bytes, 512));
    env_.stats->in_log_flush.record_delta(1.0);
    const sim::Time log_begin = env_.engine->now();
    co_await env_.log->flush();
    ctx.log_time = env_.engine->now() - log_begin;
    env_.stats->in_log_flush.record_delta(-1.0);
  }
  co_await env_.proc->compute(env_.pl.txn_commit, cpu::JobClass::kApplication,
                              ctx.tid);
  co_await release_all(ctx, ctx.locks.size());
  // Apply covers versioning, row mutation, commit work and lock release;
  // the WAL flush is reported separately.
  ctx.apply_time = env_.engine->now() - apply_begin - ctx.log_time;
  co_return true;
}

}  // namespace dclue::workload
