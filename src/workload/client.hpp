#pragma once

/// \file client.hpp
/// Closed-loop TPC-C terminal emulation. Terminals live on client hosts at
/// the outer router; each is bound to one warehouse and issues *business
/// transactions* — a sequence starting with a new-order — over a TCP
/// connection established per business transaction (§2.3), routed to the
/// warehouse's home server with probability `affinity` and to a uniformly
/// random server otherwise.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/tcp.hpp"
#include "proto/channel.hpp"
#include "sim/rng.hpp"
#include "workload/tpcc_txn.hpp"

namespace dclue::workload {

enum ClientMsgType : std::uint32_t {
  kClientRequest = 300,
  kClientReply,
};
inline constexpr sim::Bytes kRequestBytes = 300;
inline constexpr sim::Bytes kReplyBytes = 1200;
inline constexpr std::uint16_t kDbPort = 5432;

struct ClientRequestBody {
  TxnInput input;
};
struct ClientReplyBody {
  bool committed = false;
};

struct TerminalFleetParams {
  int terminals = 0;
  int first_terminal_index = 0;  ///< global index base (warehouse binding)
  sim::Duration think_time = 0.0;  ///< scaled
  /// Open-loop mode (the paper's latency/QoS studies "do not place any
  /// bound on the number of threads"): business transactions arrive as a
  /// Poisson process at this rate (per fleet, scaled) regardless of
  /// completions. 0 = closed loop.
  double open_loop_rate = 0.0;
  /// Safety valve for open-loop overload (the admission control the paper
  /// says "needs to be in place"): arrivals beyond this many in-flight
  /// business transactions are dropped.
  int max_inflight = 400;
  double affinity = 1.0;
  std::int64_t warehouses = 1;
  int nodes = 1;
  std::vector<net::Address> server_addrs;  ///< indexed by node id
  std::function<int(std::int64_t)> owner_of_warehouse;
  sim::Gate* start_gate = nullptr;  ///< cluster-ready barrier
};

class TerminalFleet {
 public:
  TerminalFleet(sim::Engine& engine, net::TcpStack& stack, db::TpccScale scale,
                TerminalFleetParams params, sim::RngFactory rngs)
      : engine_(engine),
        stack_(stack),
        scale_(scale),
        params_(std::move(params)),
        rngs_(rngs) {}

  void start() {
    if (params_.open_loop_rate > 0.0) {
      open_loop_arrivals();
      return;
    }
    for (int t = 0; t < params_.terminals; ++t) terminal_loop(t);
  }

  [[nodiscard]] std::uint64_t business_txns_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t connection_failures() const { return conn_failures_; }
  [[nodiscard]] std::uint64_t admission_drops() const { return admission_drops_; }
  [[nodiscard]] const obs::Tally& bt_time() const { return bt_time_; }
  [[nodiscard]] std::uint64_t arrivals() const { return next_arrival_; }
  [[nodiscard]] int inflight() const { return inflight_; }

 private:
  sim::DetachedTask terminal_loop(int t);
  sim::DetachedTask open_loop_arrivals();
  sim::DetachedTask one_business_txn(std::int64_t w, int server);

  sim::Engine& engine_;
  net::TcpStack& stack_;
  db::TpccScale scale_;
  TerminalFleetParams params_;
  sim::RngFactory rngs_;
  std::uint64_t completed_ = 0;
  std::uint64_t conn_failures_ = 0;
  std::uint64_t admission_drops_ = 0;
  int inflight_ = 0;
  std::uint64_t next_arrival_ = 0;
  obs::Tally bt_time_;

 public:
  // Debug visibility: where in the protocol in-flight business txns sit.
  int stuck_connecting = 0;
  int stuck_receiving = 0;
};

}  // namespace dclue::workload
