#pragma once

/// \file tpcc_txn.hpp
/// The five TPC-C transactions executed against the clustered database:
/// real B+-tree lookups and row mutations, with buffer-cache/cache-fusion
/// page accesses, the paper's two-phase locking (phase 1 latches while data
/// is brought in; phase 2 converts latches to global locks in order, waiting
/// only on the first and release-retrying on later conflicts), MVCC version
/// creation, and WAL commit.

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/fusion.hpp"
#include "core/config.hpp"
#include "core/node_stats.hpp"
#include "cpu/processor.hpp"
#include "db/log_manager.hpp"
#include "db/tpcc_schema.hpp"
#include "sim/rng.hpp"

namespace dclue::workload {

enum class TxnType : std::uint8_t {
  kNewOrder = 0,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};
inline constexpr int kNumTxnTypes = 5;
/// Nominal mix: 43/43/5/5/4 (§2.2).
inline constexpr double kTxnMix[kNumTxnTypes] = {0.43, 0.43, 0.05, 0.05, 0.04};

struct OrderLineInput {
  std::int64_t item = 0;
  std::int64_t supply_w = 0;
  int quantity = 0;
};

struct TxnInput {
  TxnType type = TxnType::kNewOrder;
  std::int64_t w = 1;  ///< home warehouse of the issuing terminal
  std::int64_t d = 1;
  std::int64_t c = 1;
  std::vector<OrderLineInput> lines;  ///< new-order
  double amount = 0.0;                ///< payment
  std::int64_t c_w = 1;               ///< payment: customer's warehouse (15% remote)
  std::int64_t c_d = 1;
  int threshold = 15;                 ///< stock-level
  bool rollback = false;              ///< 1% of new-orders abort by spec
};

/// Generates spec-conformant transaction inputs for a terminal bound to one
/// warehouse.
class TpccInputGenerator {
 public:
  TpccInputGenerator(const db::TpccScale& scale, sim::Rng rng)
      : scale_(scale), rng_(std::move(rng)) {}

  TxnInput generate(TxnType type, std::int64_t home_w);
  /// A business transaction: new-order first, then the rest of the mix in
  /// proportion (§2.3: "a sequence of TPC-C transactions starting with the
  /// new-order in the proportions specified").
  std::vector<TxnInput> business_transaction(std::int64_t home_w);

 private:
  db::TpccScale scale_;
  sim::Rng rng_;
};

/// Everything a transaction needs from its executing node.
struct NodeEnv {
  sim::Engine* engine = nullptr;
  int node_id = 0;
  int num_nodes = 1;
  db::TpccDatabase* db = nullptr;
  cluster::FusionLayer* fusion = nullptr;
  db::VersionManager* versions = nullptr;
  db::LogManager* log = nullptr;
  cpu::Processor* proc = nullptr;
  core::NodeStats* stats = nullptr;
  core::PathLengths pl;
  std::uint64_t* global_clock = nullptr;  ///< cluster logical timestamp
  /// Storage partition: which node's disks hold warehouse w's data.
  std::function<int(std::int64_t)> storage_home_of_warehouse;
  sim::Rng* rng = nullptr;  ///< node-local stream (retry backoff)
  /// Mean delay before retrying phase 2 after a lock failure (scaled).
  sim::Duration lock_retry_delay = sim::milliseconds(0.5);
  /// Node liveness (null = always alive). A dead node's executor aborts at
  /// the next check and never applies writes, modeling crash-stop.
  const bool* alive = nullptr;
};

/// Executes transactions on one node. One instance per node; invoked by the
/// request-handling threads.
class TpccExecutor {
 public:
  explicit TpccExecutor(NodeEnv env) : env_(std::move(env)) {}

  /// Run one transaction to commit or abort; returns true on commit.
  sim::Task<bool> execute(const TxnInput& input, cpu::ThreadId tid);

 private:
  struct PendingWrite {
    db::PageId page;
    int subpage;
    sim::Bytes bytes;
  };
  struct LockRef {
    db::LockName name;
    int home;
    bool operator==(const LockRef&) const = default;
  };
  struct TxnCtx {
    std::uint64_t token = 0;
    db::Timestamp snapshot = 0;
    cpu::ThreadId tid = 0;
    std::vector<LockRef> locks;  ///< phase-1 latches, in access order
    std::vector<PendingWrite> writes;
    std::vector<std::function<void()>> applies;  ///< run after locks granted
    sim::Bytes log_bytes = 0;
    // Latency breakdown bookkeeping.
    sim::Time started = 0.0;
    sim::Time phase1_done = 0.0;
    sim::Duration lock_time = 0.0;
    sim::Duration log_time = 0.0;
    sim::Duration apply_time = 0.0;
  };

  sim::Task<bool> run_txn(const TxnInput& input, TxnCtx& ctx);
  sim::Task<void> new_order(const TxnInput& in, TxnCtx& ctx);
  sim::Task<void> payment(const TxnInput& in, TxnCtx& ctx);
  sim::Task<void> order_status(const TxnInput& in, TxnCtx& ctx);
  sim::Task<void> delivery(const TxnInput& in, TxnCtx& ctx);
  sim::Task<void> stock_level(const TxnInput& in, TxnCtx& ctx);

  /// Phase 2 + apply + log + release. Returns false if the transaction had
  /// to abort (lock retry budget exhausted or spec rollback).
  sim::Task<bool> commit(TxnCtx& ctx);
  sim::Task<void> release_all(TxnCtx& ctx, std::size_t count);

  // --- row access primitives (phase 1) -------------------------------------
  template <typename Row>
  sim::Task<Row*> read_row(TxnCtx& ctx, db::Table<Row>& table, db::Key key,
                           std::int64_t w);
  template <typename Row>
  sim::Task<void> write_row(TxnCtx& ctx, db::Table<Row>& table, db::Key key,
                            std::int64_t w, std::function<void(Row&)> apply);
  template <typename Row>
  sim::Task<void> insert_row(TxnCtx& ctx, db::Table<Row>& table,
                             db::Key predicted_key, std::int64_t w,
                             std::function<void()> apply);

  [[nodiscard]] int storage_home(std::int64_t w) const {
    return env_.storage_home_of_warehouse(w);
  }

  NodeEnv env_;
  std::uint64_t next_token_ = 1;
};

}  // namespace dclue::workload
