#include "storage/disk.hpp"

#include <cmath>

namespace dclue::storage {

sim::Task<bool> Disk::submit(std::int64_t block, sim::Bytes bytes, bool is_write) {
  bool failed = false;
  auto gate = std::make_unique<sim::Gate>(engine_);
  sim::Gate* gate_ptr = gate.get();
  queue_.emplace(block, Request{block, bytes, is_write, engine_.now(),
                                std::move(gate), &failed});
  work_.notify();
  co_await gate_ptr->wait();
  co_return !failed;
}

std::multimap<std::int64_t, Disk::Request>::iterator Disk::pick_next() {
  auto it = queue_.lower_bound(head_);
  if (it == queue_.end()) it = queue_.begin();  // C-LOOK wrap
  return it;
}

sim::Duration Disk::service_time_for(const Request& req) const {
  const double distance = std::abs(static_cast<double>(req.block - head_));
  const double norm = std::min(distance / static_cast<double>(params_.span_blocks), 1.0);
  sim::Duration seek = 0.0;
  sim::Duration rotation;
  if (distance == 0.0) {
    // Sequential: the head is already on track; assume near-immediate
    // rotational alignment (track-buffer / back-to-back transfer).
    rotation = params_.avg_rotation() * 0.1;
  } else {
    seek = params_.min_seek +
           (params_.avg_seek - params_.min_seek) * std::sqrt(norm) * 2.0;
    rotation = params_.avg_rotation();
  }
  const sim::Duration transfer =
      static_cast<double>(req.bytes) / params_.transfer_bytes_per_s;
  return params_.controller_overhead + seek + rotation + transfer;
}

sim::DetachedTask Disk::service_loop() {
  for (;;) {
    while (queue_.empty()) {
      busy_.record(engine_.now(), 0.0);
      co_await work_.wait();
    }
    busy_.record(engine_.now(), 1.0);
    auto it = pick_next();
    Request req = std::move(it->second);
    queue_.erase(it);
    sim::Duration service = service_time_for(req);
    if (fault_latency_factor_ != 1.0) service *= fault_latency_factor_;
    // The head ends one block past the transferred range.
    head_ = req.block + (req.bytes + 8191) / 8192;
    co_await sim::delay_for(engine_, service);
    if (fault_error_rate_ > 0.0 && fault_rng_->chance(fault_error_rate_)) {
      ++io_errors_;
      if (req.failed) *req.failed = true;
    }
    ops_.record();
    service_.record(service);
    latency_.record(engine_.now() - req.submitted);
    req.done->open();
  }
}

}  // namespace dclue::storage
