#pragma once

/// \file disk_array.hpp
/// Striped multi-spindle disk subsystem. A 50 K tpm-C TPC-C node is backed
/// by a large array of spindles (real submissions of the era used hundreds);
/// modeling the data store as one disk would understate IO parallelism by
/// orders of magnitude. Blocks are striped across spindles, so the per-table
/// elevator behaviour of each spindle is preserved.

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <string>
#include <vector>

#include "storage/disk.hpp"

namespace dclue::storage {

class DiskArray : public BlockDevice {
 public:
  DiskArray(sim::Engine& engine, std::string name, int spindles,
            DiskParams params) {
    for (int i = 0; i < spindles; ++i) {
      disks_.push_back(std::make_unique<Disk>(
          engine, name + "-" + std::to_string(i), params));
    }
  }

  sim::Task<bool> read(std::int64_t block, sim::Bytes bytes) override {
    ++block_reads_[block];
    return spindle(block).read(block / stride(), bytes);
  }
  /// Debug/ablation aid: most frequently read blocks.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>> hot_blocks(
      std::size_t n) const {
    std::vector<std::pair<std::int64_t, std::uint64_t>> v(block_reads_.begin(),
                                                          block_reads_.end());
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (v.size() > n) v.resize(n);
    return v;
  }
  sim::Task<bool> write(std::int64_t block, sim::Bytes bytes) override {
    return spindle(block).write(block / stride(), bytes);
  }

  /// Apply / clear a fault across every spindle (the injector degrades the
  /// whole array — a controller-path fault, not a single platter).
  void set_fault(double latency_factor, double error_rate, sim::Rng* rng) {
    for (auto& d : disks_) d->set_fault(latency_factor, error_rate, rng);
  }
  void clear_fault() {
    for (auto& d : disks_) d->clear_fault();
  }
  [[nodiscard]] std::uint64_t io_errors() const {
    std::uint64_t total = 0;
    for (const auto& d : disks_) total += d->io_errors();
    return total;
  }

  [[nodiscard]] std::uint64_t ops_completed() const override {
    std::uint64_t total = 0;
    for (const auto& d : disks_) total += d->ops_completed();
    return total;
  }
  [[nodiscard]] double avg_utilization() const {
    double u = 0.0;
    for (const auto& d : disks_) u += d->utilization();
    return u / static_cast<double>(disks_.size());
  }
  /// Mean request latency (queueing + service) across spindles.
  [[nodiscard]] obs::Tally latency() const {
    obs::Tally t;
    for (const auto& d : disks_) t.merge(d->latency());
    return t;
  }
  [[nodiscard]] obs::Tally service_time() const {
    obs::Tally t;
    for (const auto& d : disks_) t.merge(d->service_time());
    return t;
  }
  [[nodiscard]] int spindles() const { return static_cast<int>(disks_.size()); }
  [[nodiscard]] double max_utilization() const {
    double m = 0.0;
    for (const auto& d : disks_) m = std::max(m, d->utilization());
    return m;
  }
  [[nodiscard]] std::uint64_t max_ops() const {
    std::uint64_t m = 0;
    for (const auto& d : disks_) m = std::max(m, d->ops_completed());
    return m;
  }
  void reset_stats() {
    for (auto& d : disks_) d->reset_stats();
  }

  /// Register array-level aggregates under \p prefix ("node0.disk.data.").
  /// Per-spindle collectors stay internal (a 96-spindle array would flood
  /// the registry); their windows follow the registry via a reset hook, and
  /// the aggregates are sampled at snapshot time.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    reg.on_reset([this](sim::Time) { reset_stats(); });
    reg.gauge_fn(prefix + "ops",
                 [this] { return static_cast<double>(ops_completed()); });
    reg.gauge_fn(prefix + "avg_utilization",
                 [this] { return avg_utilization(); });
    reg.gauge_fn(prefix + "max_utilization",
                 [this] { return max_utilization(); });
    reg.gauge_fn(prefix + "latency_mean",
                 [this] { return latency().mean(); });
    reg.gauge_fn(prefix + "service_time_mean",
                 [this] { return service_time().mean(); });
  }

 private:
  [[nodiscard]] std::int64_t stride() const {
    return static_cast<std::int64_t>(disks_.size());
  }
  Disk& spindle(std::int64_t block) {
    return *disks_[static_cast<std::size_t>(block % stride())];
  }

  std::vector<std::unique_ptr<Disk>> disks_;
  std::unordered_map<std::int64_t, std::uint64_t> block_reads_;
};

}  // namespace dclue::storage
