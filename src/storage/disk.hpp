#pragma once

/// \file disk.hpp
/// Mechanical disk model: controller overhead, distance-dependent seek,
/// rotational latency, and media transfer, with elevator (C-LOOK) request
/// scheduling as in the paper ("Normal disk IO optimizations such as
/// elevator algorithm are implemented"). Log devices are written
/// sequentially, which the seek model rewards automatically. Disk IO is
/// "simulated in terms of latency and path-length" — the CPU path-length
/// part is charged by the storage users, not here.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/obs/registry.hpp"
#include "sim/obs/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dclue::storage {

/// Anything that serves block IO (single disk or a striped array). Ops
/// complete with true on success; false means an injected IO error (the op
/// still consumed its full service time). Callers that model retry live
/// above (proto::IscsiTarget); most internal users ignore the result.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;
  virtual sim::Task<bool> read(std::int64_t block, sim::Bytes bytes) = 0;
  virtual sim::Task<bool> write(std::int64_t block, sim::Bytes bytes) = 0;
  [[nodiscard]] virtual std::uint64_t ops_completed() const = 0;
};

struct DiskParams {
  sim::Duration controller_overhead = sim::microseconds(200);
  sim::Duration min_seek = sim::microseconds(500);
  sim::Duration avg_seek = sim::milliseconds(4.5);
  double rpm = 10'000.0;
  double transfer_bytes_per_s = 60e6;
  std::int64_t span_blocks = 1 << 22;  ///< addressable 8 KB blocks

  [[nodiscard]] sim::Duration avg_rotation() const { return 30.0 / rpm; }

  /// Slow the mechanics down by \p f (the paper's 100x methodology).
  [[nodiscard]] DiskParams scaled(double f) const {
    DiskParams p = *this;
    p.controller_overhead *= f;
    p.min_seek *= f;
    p.avg_seek *= f;
    p.rpm /= f;
    p.transfer_bytes_per_s /= f;
    return p;
  }
};

class Disk : public BlockDevice {
 public:
  Disk(sim::Engine& engine, std::string name, DiskParams params)
      : engine_(engine), name_(std::move(name)), params_(params), work_(engine) {
    service_loop();
  }
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Awaitable block read / write. \p block orders the elevator.
  sim::Task<bool> read(std::int64_t block, sim::Bytes bytes) override {
    return submit(block, bytes, false);
  }
  sim::Task<bool> write(std::int64_t block, sim::Bytes bytes) override {
    return submit(block, bytes, true);
  }

  /// Fault injection: multiply mechanical service time by \p latency_factor
  /// and fail completed ops with probability \p error_rate (drawn from
  /// \p rng, owned by the injector). Both default-off; the clean path pays
  /// two compares per op and draws no randomness.
  void set_fault(double latency_factor, double error_rate, sim::Rng* rng) {
    fault_latency_factor_ = latency_factor;
    fault_error_rate_ = error_rate;
    fault_rng_ = rng;
  }
  void clear_fault() { set_fault(1.0, 0.0, nullptr); }
  [[nodiscard]] std::uint64_t io_errors() const { return io_errors_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t ops_completed() const override { return ops_.count(); }
  [[nodiscard]] const obs::Tally& latency() const { return latency_; }
  [[nodiscard]] const obs::Tally& service_time() const { return service_; }
  [[nodiscard]] double utilization() const { return busy_.average(engine_.now()); }
  void reset_stats() {
    ops_.reset();
    latency_.reset();
    service_.reset();
    busy_.reset(engine_.now());
  }

  /// Bind this spindle's collectors under \p prefix ("node0.disk.log.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    reg.bind(prefix + "ops", &ops_);
    reg.bind(prefix + "latency", &latency_);
    reg.bind(prefix + "service_time", &service_);
    reg.bind(prefix + "busy", &busy_);
  }

 private:
  struct Request {
    std::int64_t block;
    sim::Bytes bytes;
    bool is_write;
    sim::Time submitted;
    std::unique_ptr<sim::Gate> done;
    /// Points into the submitting coroutine's frame (alive until the gate
    /// opens); set by the service loop on an injected IO error.
    bool* failed = nullptr;
  };

  sim::Task<bool> submit(std::int64_t block, sim::Bytes bytes, bool is_write);
  sim::DetachedTask service_loop();
  [[nodiscard]] sim::Duration service_time_for(const Request& req) const;
  /// C-LOOK: next request at or above the head, wrapping to the lowest.
  [[nodiscard]] std::multimap<std::int64_t, Request>::iterator pick_next();

  sim::Engine& engine_;
  std::string name_;
  DiskParams params_;
  sim::Signal work_;
  std::multimap<std::int64_t, Request> queue_;
  std::int64_t head_ = 0;
  obs::Counter ops_;
  obs::Tally latency_;
  obs::Tally service_;
  obs::TimeWeightedAvg busy_;
  double fault_latency_factor_ = 1.0;
  double fault_error_rate_ = 0.0;
  sim::Rng* fault_rng_ = nullptr;
  std::uint64_t io_errors_ = 0;
};

}  // namespace dclue::storage
