#pragma once

/// \file inline_fn.hpp
/// Small-buffer-only callable. `std::function` on the per-segment path
/// (NIC rx handler, CpuCharge, TCP rx handler) costs a potential heap
/// allocation at assignment and a double indirection per call; every
/// callable actually installed there captures a pointer or two. InlineFn
/// reuses the engine arena's inline-callback technique (DESIGN.md §"Engine
/// internals") as a standalone type: the callable lives in a fixed inline
/// buffer, invocation is one indirect call, and there is no heap fallback —
/// a capture that outgrows the buffer is a compile error, not a silent
/// allocation (the capacity rule: raise Capacity at the member that needs
/// it, and only there).

#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace dclue::sim {

template <typename Signature, std::size_t Capacity = 96>
class InlineFn;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFn<R(Args...), Capacity> {
 public:
  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT: match std::function conversions

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& fn) {  // NOLINT: implicit, like std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for InlineFn — raise Capacity at this "
                  "member (see DESIGN.md, datapath capacity rule)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    invoke_ = &invoke_impl<Fn>;
    ops_ = &ops_for<Fn>;
  }

  InlineFn(const InlineFn& other) { copy_from(other); }
  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(const InlineFn& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  ~InlineFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) ops_->destroy(storage_);
    invoke_ = nullptr;
    ops_ = nullptr;
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    void (*copy)(unsigned char* dst, const unsigned char* src);
    void (*move)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char* p);
  };

  template <typename Fn>
  static R invoke_impl(unsigned char* p, Args... args) {
    return (*std::launder(reinterpret_cast<Fn*>(p)))(
        std::forward<Args>(args)...);
  }

  template <typename Fn>
  static constexpr Ops ops_for = {
      /*copy=*/[](unsigned char* dst, const unsigned char* src) {
        if constexpr (std::is_copy_constructible_v<Fn>) {
          ::new (static_cast<void*>(dst))
              Fn(*std::launder(reinterpret_cast<const Fn*>(src)));
        } else {
          (void)dst;
          (void)src;
          std::abort();  // copying an InlineFn holding a move-only callable
        }
      },
      /*move=*/
      [](unsigned char* dst, unsigned char* src) {
        ::new (static_cast<void*>(dst))
            Fn(std::move(*std::launder(reinterpret_cast<Fn*>(src))));
        std::launder(reinterpret_cast<Fn*>(src))->~Fn();
      },
      /*destroy=*/
      [](unsigned char* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  void copy_from(const InlineFn& other) {
    if (other.ops_ == nullptr) return;
    other.ops_->copy(storage_, other.storage_);
    invoke_ = other.invoke_;
    ops_ = other.ops_;
  }
  void move_from(InlineFn& other) noexcept {
    if (other.ops_ == nullptr) return;
    other.ops_->move(storage_, other.storage_);
    invoke_ = other.invoke_;
    ops_ = other.ops_;
    other.invoke_ = nullptr;
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) mutable unsigned char storage_[Capacity];
  R (*invoke_)(unsigned char*, Args...) = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace dclue::sim
