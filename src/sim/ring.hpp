#pragma once

/// \file ring.hpp
/// Power-of-two growable ring buffer: the FIFO behind every packet queue
/// (router input queues, per-class QoS queues). `std::deque` pays a map of
/// heap nodes and an indirection per access; steady-state packet flow is
/// strictly push_back/pop_front, which a ring serves from one contiguous
/// allocation with mask arithmetic. Growth doubles the capacity and
/// re-packs elements in FIFO order, so after the warm-up transient a queue
/// that has reached its working-set depth never allocates again.

#include <cstddef>
#include <new>
#include <utility>

namespace dclue::sim {

template <typename T>
class Ring {
 public:
  Ring() = default;
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;
  Ring(Ring&& other) noexcept
      : buf_(std::exchange(other.buf_, nullptr)),
        cap_(std::exchange(other.cap_, 0)),
        head_(std::exchange(other.head_, 0)),
        size_(std::exchange(other.size_, 0)) {}
  Ring& operator=(Ring&& other) noexcept {
    if (this != &other) {
      destroy();
      buf_ = std::exchange(other.buf_, nullptr);
      cap_ = std::exchange(other.cap_, 0);
      head_ = std::exchange(other.head_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ~Ring() { destroy(); }

  void push_back(T v) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(buf_ + ((head_ + size_) & (cap_ - 1))))
        T(std::move(v));
    ++size_;
  }

  /// Construct in place at the back (skips the move a push_back would do).
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* p = ::new (static_cast<void*>(buf_ + ((head_ + size_) & (cap_ - 1))))
        T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }

  void pop_front() {
    buf_[head_].~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  /// FIFO-order access: operator[](0) is the front.
  [[nodiscard]] T& operator[](std::size_t i) {
    return buf_[(head_ + i) & (cap_ - 1)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) & (cap_ - 1)];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  void clear() {
    while (size_ > 0) pop_front();
  }

 private:
  void destroy() {
    clear();
    ::operator delete(static_cast<void*>(buf_),
                      std::align_val_t{alignof(T)});
    buf_ = nullptr;
    cap_ = 0;
  }

  void grow() {
    const std::size_t ncap = cap_ == 0 ? kInitialCapacity : cap_ * 2;
    T* nbuf = static_cast<T*>(
        ::operator new(ncap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(nbuf + i))
          T(std::move(buf_[(head_ + i) & (cap_ - 1)]));
      buf_[(head_ + i) & (cap_ - 1)].~T();
    }
    ::operator delete(static_cast<void*>(buf_),
                      std::align_val_t{alignof(T)});
    buf_ = nbuf;
    cap_ = ncap;
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 16;

  T* buf_ = nullptr;
  std::size_t cap_ = 0;   ///< always 0 or a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dclue::sim
