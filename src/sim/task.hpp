#pragma once

/// \file task.hpp
/// C++20 coroutine task type for the simulation. Model code (transactions,
/// protocol exchanges, disk requests) is written as straight-line coroutines
/// that `co_await` simulated delays, locks, messages, and CPU work. The
/// entire simulation is single-threaded; no synchronization is needed.

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"

namespace dclue::sim {

template <typename T = void>
class Task;

namespace detail {

/// Routes coroutine-frame allocation through the thread-local FramePool.
/// Declared on the promise types, so the compiler's frame new/delete calls
/// recycle frames instead of hitting malloc per spawned activity (the
/// datapath creates several per simulated segment). The sized delete gives
/// the pool the class back without a header.
struct PooledFrame {
  static void* operator new(std::size_t n) {
    return FramePool::local().allocate(n);
  }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::local().deallocate(p, n);
  }
};

struct PromiseBase : PooledFrame {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }

  std::exception_ptr exception;
};

}  // namespace detail

/// A lazily-started coroutine returning T. Awaiting it starts it and resumes
/// the awaiter when it completes (symmetric transfer, so long co_await chains
/// do not grow the machine stack).
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  T await_resume() {
    if (handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
    return std::move(*handle_.promise().value);
  }

 private:
  friend class TaskRunner;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) handle_.destroy();
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
  }

 private:
  friend struct DetachedTask;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) handle_.destroy();
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Fire-and-forget root coroutine: owns a Task<void> to completion and then
/// destroys itself. An unhandled exception in detached model code is a bug in
/// the model, so it terminates the process with the active exception visible.
struct DetachedTask {
  struct promise_type : detail::PooledFrame {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// Start \p task now as an independent activity (the moral equivalent of
/// spawning a process in OPNET). The task body runs until its first suspend.
inline DetachedTask spawn(Task<void> task) {
  co_await std::move(task);
}

/// Awaitable that suspends the current coroutine for \p delay simulated
/// seconds: `co_await delay_for(engine, 5_ms);`
class DelayAwaiter {
 public:
  DelayAwaiter(Engine& engine, Duration delay) : engine_(engine), delay_(delay) {}
  bool await_ready() const noexcept { return delay_ <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) {
    engine_.after(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Engine& engine_;
  Duration delay_;
};

inline DelayAwaiter delay_for(Engine& engine, Duration delay) {
  return DelayAwaiter{engine, delay};
}

}  // namespace dclue::sim
