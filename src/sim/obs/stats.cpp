#include "sim/obs/stats.hpp"

namespace dclue::obs {

double Histogram::quantile(double q) const {
  const std::uint64_t total = tally_.count();
  if (total == 0) return 0.0;
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    acc += bins_[i];
    if (acc > target) {
      double width = (hi_ - lo_) / static_cast<double>(bins_.size());
      return bin_lo(i) + width / 2.0;
    }
  }
  return hi_;
}

}  // namespace dclue::obs
