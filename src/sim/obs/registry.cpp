#include "sim/obs/registry.hpp"

#include <cassert>
#include <cstdio>

namespace dclue::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:      return "counter";
    case MetricKind::kGauge:        return "gauge";
    case MetricKind::kAccum:        return "accum";
    case MetricKind::kTally:        return "tally";
    case MetricKind::kTimeWeighted: return "time_weighted";
    case MetricKind::kHistogram:    return "histogram";
    case MetricKind::kGaugeFn:      return "gauge";
  }
  return "unknown";
}

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void Snapshot::append_json(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out += "[";
  bool first = true;
  for (const MetricValue& m : metrics) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad;
    out += "  {\"name\": \"";
    out += m.name;
    out += "\", \"kind\": \"";
    out += metric_kind_name(m.kind);
    out += "\", \"value\": ";
    append_double(out, m.value);
    if (m.kind == MetricKind::kTally || m.kind == MetricKind::kHistogram) {
      out += ", \"count\": ";
      append_u64(out, m.count);
      out += ", \"sum\": ";
      append_double(out, m.sum);
      out += ", \"mean\": ";
      append_double(out, m.mean);
      out += ", \"min\": ";
      append_double(out, m.min);
      out += ", \"max\": ";
      append_double(out, m.max);
      out += ", \"stddev\": ";
      append_double(out, m.stddev);
    }
    if (m.kind == MetricKind::kHistogram) {
      out += ", \"p50\": ";
      append_double(out, m.p50);
      out += ", \"p95\": ";
      append_double(out, m.p95);
      out += ", \"p99\": ";
      append_double(out, m.p99);
    }
    out += "}";
  }
  out += "\n";
  out += pad;
  out += "]";
}

void MetricsRegistry::add_entry(std::string name, MetricKind kind, void* ptr) {
  entries_.push_back(Entry{std::move(name), kind, ptr, {}});
}

Counter& MetricsRegistry::counter(std::string name) {
  Counter& c = counters_.emplace_back();
  add_entry(std::move(name), MetricKind::kCounter, &c);
  return c;
}

Gauge& MetricsRegistry::gauge(std::string name) {
  Gauge& g = gauges_.emplace_back();
  add_entry(std::move(name), MetricKind::kGauge, &g);
  return g;
}

Accum& MetricsRegistry::accum(std::string name) {
  Accum& a = accums_.emplace_back();
  add_entry(std::move(name), MetricKind::kAccum, &a);
  return a;
}

Tally& MetricsRegistry::tally(std::string name) {
  Tally& t = tallies_.emplace_back();
  add_entry(std::move(name), MetricKind::kTally, &t);
  return t;
}

TimeWeightedAvg& MetricsRegistry::time_weighted(std::string name) {
  TimeWeightedAvg& tw = time_weighted_.emplace_back();
  add_entry(std::move(name), MetricKind::kTimeWeighted, &tw);
  return tw;
}

Histogram& MetricsRegistry::histogram(std::string name, double lo, double hi,
                                      std::size_t bins) {
  Histogram& h = histograms_.emplace_back(lo, hi, bins);
  add_entry(std::move(name), MetricKind::kHistogram, &h);
  return h;
}

void MetricsRegistry::gauge_fn(std::string name, std::function<double()> fn) {
  entries_.push_back(Entry{std::move(name), MetricKind::kGaugeFn, nullptr,
                           std::move(fn)});
}

void MetricsRegistry::bind(std::string name, Counter* c) {
  add_entry(std::move(name), MetricKind::kCounter, c);
}
void MetricsRegistry::bind(std::string name, Gauge* g) {
  add_entry(std::move(name), MetricKind::kGauge, g);
}
void MetricsRegistry::bind(std::string name, Accum* a) {
  add_entry(std::move(name), MetricKind::kAccum, a);
}
void MetricsRegistry::bind(std::string name, Tally* t) {
  add_entry(std::move(name), MetricKind::kTally, t);
}
void MetricsRegistry::bind(std::string name, TimeWeightedAvg* tw) {
  add_entry(std::move(name), MetricKind::kTimeWeighted, tw);
}
void MetricsRegistry::bind(std::string name, Histogram* h) {
  add_entry(std::move(name), MetricKind::kHistogram, h);
}

void MetricsRegistry::on_reset(std::function<void(sim::Time)> hook) {
  reset_hooks_.push_back(std::move(hook));
}

void MetricsRegistry::reset_window(sim::Time now) {
  for (const auto& hook : reset_hooks_) hook(now);
  for (Entry& e : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        static_cast<Counter*>(e.ptr)->reset();
        break;
      case MetricKind::kAccum:
        static_cast<Accum*>(e.ptr)->reset();
        break;
      case MetricKind::kTally:
        static_cast<Tally*>(e.ptr)->reset();
        break;
      case MetricKind::kTimeWeighted:
        static_cast<TimeWeightedAvg*>(e.ptr)->reset(now);
        break;
      case MetricKind::kHistogram:
        static_cast<Histogram*>(e.ptr)->reset();
        break;
      case MetricKind::kGauge:
      case MetricKind::kGaugeFn:
        break;  // levels persist across window boundaries
    }
  }
}

Snapshot MetricsRegistry::snapshot(sim::Time now) const {
  Snapshot snap;
  snap.taken_at = now;
  snap.metrics.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricValue m;
    m.name = e.name;
    m.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter: {
        const auto* c = static_cast<const Counter*>(e.ptr);
        m.value = static_cast<double>(c->count());
        m.count = c->count();
        break;
      }
      case MetricKind::kGauge:
        m.value = static_cast<const Gauge*>(e.ptr)->value();
        break;
      case MetricKind::kAccum:
        m.value = static_cast<const Accum*>(e.ptr)->value();
        break;
      case MetricKind::kTally: {
        const auto* t = static_cast<const Tally*>(e.ptr);
        m.value = t->mean();
        m.count = t->count();
        m.sum = t->sum();
        m.mean = t->mean();
        m.min = t->min();
        m.max = t->max();
        m.stddev = t->stddev();
        break;
      }
      case MetricKind::kTimeWeighted:
        m.value = static_cast<const TimeWeightedAvg*>(e.ptr)->average(now);
        break;
      case MetricKind::kHistogram: {
        const auto* h = static_cast<const Histogram*>(e.ptr);
        const Tally& t = h->tally();
        m.value = t.mean();
        m.count = t.count();
        m.sum = t.sum();
        m.mean = t.mean();
        m.min = t.min();
        m.max = t.max();
        m.stddev = t.stddev();
        m.p50 = h->quantile(0.50);
        m.p95 = h->quantile(0.95);
        m.p99 = h->quantile(0.99);
        break;
      }
      case MetricKind::kGaugeFn:
        m.kind = MetricKind::kGauge;
        m.value = e.fn();
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

}  // namespace dclue::obs
