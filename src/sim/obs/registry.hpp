#pragma once

/// \file registry.hpp
/// The MetricsRegistry: one registration / lookup / snapshot / reset surface
/// for every collector in the simulation.
///
/// Two ownership styles coexist:
///   - registry-owned metrics, created by the typed factory methods
///     (`counter("tcp.rto_fires")` returns a stable `Counter&` backed by a
///     deque, so handles never invalidate), and
///   - bound metrics, where a subsystem keeps the collector as a member for
///     hot-path locality and hands the registry a non-owning pointer via
///     `bind()`. Binding is how NodeStats, links, disks etc. join the
///     registry without an indirection on their increment paths.
///
/// `gauge_fn` registers a sampled gauge: the callback runs at snapshot time
/// and the value is never reset — use it for externally-accumulated totals
/// (terminal fleet counters) and occupancy readings (cache pages, lock table
/// size).
///
/// `reset_window(now)` restarts the measurement window exactly the way the
/// pre-registry per-subsystem reset chains did: Counter/Accum/Tally/Histogram
/// clear, TimeWeightedAvg restarts its integral keeping the current level,
/// Gauge and gauge_fn keep their values.
///
/// Registration order is preserved and snapshots list metrics in that order,
/// keeping every consumer (reports, goldens) deterministic.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/obs/stats.hpp"
#include "sim/units.hpp"

namespace dclue::obs {

enum class MetricKind : std::uint8_t {
  kCounter,
  kGauge,
  kAccum,
  kTally,
  kTimeWeighted,
  kHistogram,
  kGaugeFn,
};

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

/// One metric's state at snapshot time. Scalar kinds fill `value` only;
/// distribution kinds (tally, histogram) fill the sample-statistics block and
/// histograms additionally carry quantiles.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< count / level / sum / mean / time-average, per kind
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// A point-in-time copy of the whole registry. Detached from the live
/// collectors: safe to keep after the cluster is torn down, safe to ship
/// across threads.
struct Snapshot {
  sim::Time taken_at = 0.0;
  std::vector<MetricValue> metrics;

  /// Linear lookup by exact name; nullptr when absent.
  [[nodiscard]] const MetricValue* find(std::string_view name) const;

  /// Append the snapshot as a JSON array of metric objects (one line per
  /// metric) at the given indent. Doubles print with %.17g so round-trips
  /// are exact.
  void append_json(std::string& out, int indent) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // -- registry-owned metrics (stable references; deque-backed) -----------
  Counter& counter(std::string name);
  Gauge& gauge(std::string name);
  Accum& accum(std::string name);
  Tally& tally(std::string name);
  TimeWeightedAvg& time_weighted(std::string name);
  Histogram& histogram(std::string name, double lo, double hi, std::size_t bins);

  /// Sampled gauge: `fn` runs at snapshot time; never reset.
  void gauge_fn(std::string name, std::function<double()> fn);

  // -- bound metrics (subsystem-owned; registry holds a non-owning pointer,
  //    the collector must outlive the registry entry) ----------------------
  void bind(std::string name, Counter* c);
  void bind(std::string name, Gauge* g);
  void bind(std::string name, Accum* a);
  void bind(std::string name, Tally* t);
  void bind(std::string name, TimeWeightedAvg* tw);
  void bind(std::string name, Histogram* h);

  /// Window-reset hook for subsystems with internal per-instance collectors
  /// that are exposed through aggregate gauge_fn entries (e.g. a 96-spindle
  /// disk array): the hook runs during reset_window() so the subsystem's
  /// window restarts with everything else without registering hundreds of
  /// per-instance entries.
  void on_reset(std::function<void(sim::Time)> hook);

  /// Restart the measurement window for every resettable metric (and run
  /// the on_reset hooks).
  void reset_window(sim::Time now);

  [[nodiscard]] Snapshot snapshot(sim::Time now) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    void* ptr = nullptr;  ///< typed per `kind`; null for gauge_fn entries
    std::function<double()> fn;
  };

  void add_entry(std::string name, MetricKind kind, void* ptr);

  // Owned pools. Deques keep references stable across growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Accum> accums_;
  std::deque<Tally> tallies_;
  std::deque<TimeWeightedAvg> time_weighted_;
  std::deque<Histogram> histograms_;

  std::vector<Entry> entries_;  ///< registration order
  std::vector<std::function<void(sim::Time)>> reset_hooks_;
};

}  // namespace dclue::obs
