#include "sim/obs/trace.hpp"

#include <cstdio>

namespace dclue::obs {

namespace {

thread_local Tracer* g_tracer = nullptr;

void append_event(std::string& out, const TraceEvent& e, std::uint32_t pid,
                  bool& first) {
  char buf[256];
  const double ts_us = e.ts * 1e6;
  int n = 0;
  switch (e.ph) {
    case 'X':
      n = std::snprintf(buf, sizeof buf,
                        "%s  {\"ph\": \"X\", \"cat\": \"%s\", \"name\": \"%s\", "
                        "\"ts\": %.6f, \"dur\": %.6f, \"pid\": %u, \"tid\": %u}",
                        first ? "\n" : ",\n", e.cat, e.name, ts_us, e.aux * 1e6,
                        pid, e.tid);
      break;
    case 'C':
      n = std::snprintf(buf, sizeof buf,
                        "%s  {\"ph\": \"C\", \"cat\": \"%s\", \"name\": \"%s\", "
                        "\"ts\": %.6f, \"pid\": %u, \"tid\": %u, "
                        "\"args\": {\"value\": %.17g}}",
                        first ? "\n" : ",\n", e.cat, e.name, ts_us, pid, e.tid,
                        e.aux);
      break;
    default:  // 'i'
      n = std::snprintf(buf, sizeof buf,
                        "%s  {\"ph\": \"i\", \"s\": \"t\", \"cat\": \"%s\", "
                        "\"name\": \"%s\", \"ts\": %.6f, \"pid\": %u, "
                        "\"tid\": %u}",
                        first ? "\n" : ",\n", e.cat, e.name, ts_us, pid, e.tid);
      break;
  }
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  first = false;
}

}  // namespace

Tracer* tracer() noexcept { return g_tracer; }

Tracer* set_tracer(Tracer* t) noexcept {
  Tracer* prev = g_tracer;
  g_tracer = t;
  return prev;
}

std::string Tracer::to_json() const {
  std::string out;
  out.reserve(64 + 96 * (events_.size() + foreign_.size()));
  out += "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events_) append_event(out, e, pid_, first);
  for (const ForeignEvent& f : foreign_) append_event(out, f.ev, f.pid, first);
  out += first ? "]" : "\n]";
  out += ", \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

void Tracer::append(const Tracer& other) {
  foreign_.reserve(foreign_.size() + other.events_.size() +
                   other.foreign_.size());
  for (const TraceEvent& e : other.events_) {
    foreign_.push_back({e, other.pid_});
  }
  foreign_.insert(foreign_.end(), other.foreign_.begin(), other.foreign_.end());
}

}  // namespace dclue::obs
