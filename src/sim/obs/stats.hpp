#pragma once

/// \file stats.hpp
/// Online statistics collectors — the primitive layer of the observability
/// subsystem. The model reports everything the paper plots (messages per
/// transaction, lock-wait times, CPI, active threads) and all of those "fall
/// out of the actual functioning of the simulation", so every subsystem
/// accumulates into these collectors rather than exposing tuned constants.
///
/// Conventions (uniform across the whole registry surface):
///   - mutators are `record*` and take the sample,
///   - getters are plain snake_case nouns (`count()`, `mean()`, `value()`),
///   - `reset()` / `reset(now)` restarts the measurement window.
///
/// Collectors are registered with (or created by) obs::MetricsRegistry so a
/// single snapshot/reset surface covers the whole simulation; see
/// registry.hpp.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/units.hpp"

namespace dclue::obs {

/// Sample statistics via Welford's online algorithm.
class Tally {
 public:
  void record(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = Tally{}; }

  /// Combine another tally into this one (parallel-Welford merge).
  void merge(const Tally& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant quantity (queue lengths,
/// active thread counts, utilization). The window reset keeps the current
/// level — only the integral restarts.
class TimeWeightedAvg {
 public:
  /// Set the level at `now` (the previous level is integrated up to `now`).
  void record(sim::Time now, double value) {
    accumulate(now);
    value_ = value;
  }
  /// Step the level by `delta` at `now`.
  void record_delta(sim::Time now, double delta) { record(now, value_ + delta); }

  [[nodiscard]] double current() const { return value_; }

  /// Average over [window start, now].
  [[nodiscard]] double average(sim::Time now) const {
    double span = now - start_;
    if (span <= 0.0) return value_;
    return (integral_ + value_ * (now - last_)) / span;
  }

  /// Restart the measurement window (e.g. at the end of warmup).
  void reset(sim::Time now) {
    start_ = now;
    last_ = now;
    integral_ = 0.0;
  }

 private:
  void accumulate(sim::Time now) {
    integral_ += value_ * (now - last_);
    last_ = now;
  }

  sim::Time start_ = 0.0;
  sim::Time last_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
};

/// Monotone event counter, reset at window boundaries.
class Counter {
 public:
  void record(std::uint64_t n = 1) { count_ += n; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  void reset() { count_ = 0; }

 private:
  std::uint64_t count_ = 0;
};

/// Windowed sum of a real-valued quantity (bytes, cycles, instructions) —
/// a Counter for doubles. Reset at window boundaries like Counter.
class Accum {
 public:
  void record(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Instantaneous level (cache occupancy, in-flight transaction stage). NOT
/// cleared by window resets: the level persists across the warmup boundary,
/// matching the physical quantity it mirrors.
class Gauge {
 public:
  void record(double value) { value_ = value; }
  void record_delta(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the end
/// bins. Used for latency distributions in the experiment reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins, 0) {}

  void record(double x) {
    tally_.record(x);
    double f = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(f * static_cast<double>(bins_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(idx)];
  }

  /// Approximate quantile from bin midpoints. Empty histogram reports 0;
  /// q >= 1 (or any q past the last occupied bin) reports the upper bound.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const Tally& tally() const { return tally_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return bins_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
  }

  void reset() {
    tally_.reset();
    std::fill(bins_.begin(), bins_.end(), 0);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  Tally tally_;
};

}  // namespace dclue::obs
