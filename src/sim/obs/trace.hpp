#pragma once

/// \file trace.hpp
/// Event tracer emitting Chrome trace-event JSON (load the output in
/// chrome://tracing or Perfetto). Spans ("X" complete events), instants
/// ("i") and counter tracks ("C") are recorded against simulated time;
/// timestamps convert to microseconds on export.
///
/// Overhead contract — the disabled path must preserve the zero-allocation
/// datapath guarantees (0.00 heap allocs/segment, 5.333 events/segment in
/// bench/micro_datapath):
///
///   - compile-time kill switch: build with -DDCLUE_TRACING_ENABLED=0
///     (cmake -DDCLUE_TRACING=OFF) and every DCLUE_TRACE_* macro expands to
///     `((void)0)` — the probe arguments are never evaluated,
///   - runtime kill switch: tracing is OFF by default; each probe is one
///     thread-local load plus a null check when no tracer is installed.
///     No engine events, no allocations, no stores on the disabled path.
///
/// Probe sites pass string literals for `cat`/`name` (the tracer stores the
/// pointers, not copies) and the current simulated time; the only allocation
/// with tracing ON is the event vector's amortized growth.
///
/// The tracer handle is thread-local so the parallel sweep pool
/// (sim/sweep.hpp) can trace one point per worker without synchronization;
/// install with TracerScope (RAII) around a simulation run.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hpp"

#ifndef DCLUE_TRACING_ENABLED
#define DCLUE_TRACING_ENABLED 1
#endif

namespace dclue::obs {

/// One Chrome trace event. `cat`/`name` must be string literals (or
/// otherwise outlive the tracer).
struct TraceEvent {
  const char* cat;
  const char* name;
  double ts;      ///< simulated seconds
  double aux;     ///< duration (span) or value (counter); unused for instants
  std::uint32_t tid;
  char ph;        ///< 'X' span, 'i' instant, 'C' counter
};

class Tracer {
 public:
  explicit Tracer(std::uint32_t pid = 0) : pid_(pid) {}

  /// Span covering [start, end] in simulated time ("X" complete event).
  void record_span(const char* cat, const char* name, sim::Time start,
                   sim::Time end, std::uint32_t tid = 0) {
    events_.push_back({cat, name, start, end - start, tid, 'X'});
  }

  /// Point event ("i" instant, thread scope).
  void record_instant(const char* cat, const char* name, sim::Time ts,
                      std::uint32_t tid = 0) {
    events_.push_back({cat, name, ts, 0.0, tid, 'i'});
  }

  /// Counter-track sample ("C"); one series per (name, tid).
  void record_counter(const char* cat, const char* name, sim::Time ts,
                      double value, std::uint32_t tid = 0) {
    events_.push_back({cat, name, ts, value, tid, 'C'});
  }

  [[nodiscard]] std::uint32_t pid() const { return pid_; }
  void set_pid(std::uint32_t pid) { pid_ = pid; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Serialize as a Chrome trace: {"traceEvents": [...]}. Timestamps are
  /// exported in microseconds of simulated time.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Append another tracer's events (e.g. per-worker tracers merged into
  /// one file; each keeps its pid in the merged stream).
  void append(const Tracer& other);

 private:
  struct ForeignEvent {
    TraceEvent ev;
    std::uint32_t pid;
  };

  std::vector<TraceEvent> events_;
  std::vector<ForeignEvent> foreign_;  ///< from append(); preserve source pid
  std::uint32_t pid_;
};

/// Current thread's tracer; null when tracing is off (the default).
[[nodiscard]] Tracer* tracer() noexcept;

/// Install `t` (may be null) as the current thread's tracer; returns the
/// previous one. Prefer TracerScope.
Tracer* set_tracer(Tracer* t) noexcept;

/// RAII: install a tracer for the current scope, restore the previous one
/// on exit.
class TracerScope {
 public:
  explicit TracerScope(Tracer* t) noexcept : prev_(set_tracer(t)) {}
  ~TracerScope() { set_tracer(prev_); }
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  Tracer* prev_;
};

}  // namespace dclue::obs

// ---------------------------------------------------------------------------
// Probe macros. With DCLUE_TRACING_ENABLED=0 the arguments are not evaluated.
// ---------------------------------------------------------------------------

#if DCLUE_TRACING_ENABLED
#define DCLUE_TRACE_SPAN(cat, name, t0, t1, tid)                        \
  do {                                                                  \
    if (::dclue::obs::Tracer* dclue_tr_ = ::dclue::obs::tracer())       \
      dclue_tr_->record_span((cat), (name), (t0), (t1), (tid));         \
  } while (0)
#define DCLUE_TRACE_INSTANT(cat, name, now, tid)                        \
  do {                                                                  \
    if (::dclue::obs::Tracer* dclue_tr_ = ::dclue::obs::tracer())       \
      dclue_tr_->record_instant((cat), (name), (now), (tid));           \
  } while (0)
#define DCLUE_TRACE_COUNTER(cat, name, now, value, tid)                 \
  do {                                                                  \
    if (::dclue::obs::Tracer* dclue_tr_ = ::dclue::obs::tracer())       \
      dclue_tr_->record_counter((cat), (name), (now), (value), (tid));  \
  } while (0)
#else
#define DCLUE_TRACE_SPAN(cat, name, t0, t1, tid) ((void)0)
#define DCLUE_TRACE_INSTANT(cat, name, now, tid) ((void)0)
#define DCLUE_TRACE_COUNTER(cat, name, now, value, tid) ((void)0)
#endif
