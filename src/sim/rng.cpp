#include "sim/rng.hpp"

#include <cmath>

namespace dclue::sim {
namespace {

/// splitmix64: the standard seed-spreading finalizer.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::pick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::int64_t Rng::nurand(std::int64_t a, std::int64_t x, std::int64_t y) {
  // Constant C is fixed per stream; any value in [0, a] is spec-conformant.
  const std::int64_t c = a / 2;
  return (((uniform_int(0, a) | uniform_int(x, y)) + c) % (y - x + 1)) + x;
}

Rng RngFactory::stream(std::string_view name, std::uint64_t index) const {
  std::uint64_t s = splitmix64(master_seed_ ^ fnv1a(name));
  s = splitmix64(s ^ (index * 0x9e3779b97f4a7c15ULL + 1));
  return Rng{s};
}

}  // namespace dclue::sim
