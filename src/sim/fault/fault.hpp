#pragma once

/// \file fault.hpp
/// Deterministic, schedule-driven fault injection. A FaultPlan is a flat,
/// time-ordered list of fault events — link flaps, steady link degradation
/// (drop/corrupt/latency/jitter), node crash/restart pairs, and disk latency
/// spikes with IO errors. Plans come from one of two places:
///
///   - parse_fault_spec(): a compact "key=value,key=value" spec string that
///     rides in ClusterConfig (so a plan survives config serialization and
///     parallel-sweep shipping), turned into a plan by generate_plan() using
///     a seeded Rng stream. Same (spec, num_nodes, seed) => bit-identical
///     schedule, so any invariant failure is a one-command repro.
///   - hand-built event lists in tests.
///
/// Determinism contract: the generator draws from the Rng in one fixed order
/// (crashes, degradation windows, flaps, disk spikes), and the finished plan
/// is stable-sorted by (time, kind, target). fingerprint() hashes the whole
/// schedule so tests can assert two runs saw the identical fault sequence.

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "sim/units.hpp"

namespace dclue::sim::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown = 0,   ///< both access links of the target node go dark
  kLinkUp,         ///< flap recovery
  kLinkDegrade,    ///< steady drop/corrupt/latency/jitter on the access links
  kLinkClear,      ///< end of degradation window
  kNodeCrash,      ///< crash-stop: links down, volatile state lost
  kNodeRestart,    ///< links up, log replay, rejoin when recovery completes
  kDiskDegrade,    ///< service-time multiplier + IO error rate on both disks
  kDiskClear,      ///< end of disk spike
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. Fields beyond (at, kind, target) are meaningful only
/// for the kinds that carry parameters; they stay at their defaults otherwise
/// so the fingerprint is stable.
struct FaultEvent {
  Time at = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  int target = 0;  ///< server node index
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  Duration extra_latency = 0.0;
  Duration jitter = 0.0;
  double disk_latency_factor = 1.0;
  double disk_error_rate = 0.0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  /// FNV-1a over every field of every event, in schedule order.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Generator knobs, parsed from the spec string. Times are in simulated
/// seconds. start/span default to "caller decides": Cluster fills them from
/// (warmup, measure) so faults land inside the measurement window.
struct FaultSpec {
  int flaps = 0;                    ///< link-outage episodes per node
  Duration flap_down = 0.5;         ///< mean outage length
  double drop_rate = 0.0;           ///< steady segment drop probability
  double corrupt_rate = 0.0;        ///< steady segment corruption probability
  Duration extra_latency = 0.0;     ///< added one-way latency while degraded
  Duration jitter = 0.0;            ///< uniform [0, jitter) extra per packet
  int crashes = 0;                  ///< node crash/restart episodes
  Duration crash_down = 3.0;        ///< mean time from crash to restart
  int disk_spikes = 0;              ///< disk degradation episodes
  double disk_latency_factor = 8.0; ///< service-time multiplier while spiked
  double disk_error_rate = 0.0;     ///< IO error probability while spiked
  Duration disk_spike_len = 2.0;    ///< mean spike length
  Time start = -1.0;                ///< window start; < 0 = caller supplies
  Duration span = 0.0;              ///< window length; <= 0 = caller supplies
};

/// Parse "flaps=2,drop=0.01,crashes=1,..." — keys: flaps, flap_down, drop,
/// corrupt, latency, jitter, crashes, crash_down, disk_spikes, disk_factor,
/// disk_err, disk_spike_len, start, span. Unknown keys abort (a typo in a
/// fault spec must never silently run the happy path).
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view spec);

/// Expand a spec into a concrete schedule for \p num_nodes server nodes.
/// Crash episodes are assigned round-robin from the highest node index down;
/// flap episodes skip crashed nodes so a restart never races a flap on the
/// same access link. All randomness comes from \p rng.
[[nodiscard]] FaultPlan generate_plan(const FaultSpec& spec, int num_nodes,
                                      Rng& rng);

}  // namespace dclue::sim::fault
