#include "sim/fault/fault.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>

namespace dclue::sim::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kLinkClear: return "link_clear";
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kNodeRestart: return "node_restart";
    case FaultKind::kDiskDegrade: return "disk_degrade";
    case FaultKind::kDiskClear: return "disk_clear";
  }
  return "unknown";
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double v) { mix(h, std::bit_cast<std::uint64_t>(v)); }

[[noreturn]] void spec_error(std::string_view spec, const std::string& what) {
  std::fprintf(stderr, "fault spec \"%.*s\": %s\n",
               static_cast<int>(spec.size()), spec.data(), what.c_str());
  std::abort();
}

}  // namespace

std::uint64_t FaultPlan::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const FaultEvent& e : events) {
    mix(h, e.at);
    mix(h, static_cast<std::uint64_t>(e.kind));
    mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.target)));
    mix(h, e.drop_rate);
    mix(h, e.corrupt_rate);
    mix(h, e.extra_latency);
    mix(h, e.jitter);
    mix(h, e.disk_latency_factor);
    mix(h, e.disk_error_rate);
  }
  return h;
}

FaultSpec parse_fault_spec(std::string_view spec) {
  FaultSpec out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view field = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos)
      spec_error(spec, "field without '=': " + std::string(field));
    const std::string_view key = field.substr(0, eq);
    const std::string value_str(field.substr(eq + 1));
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || *end != '\0')
      spec_error(spec, "bad value for " + std::string(key));
    if (key == "flaps") out.flaps = static_cast<int>(value);
    else if (key == "flap_down") out.flap_down = value;
    else if (key == "drop") out.drop_rate = value;
    else if (key == "corrupt") out.corrupt_rate = value;
    else if (key == "latency") out.extra_latency = value;
    else if (key == "jitter") out.jitter = value;
    else if (key == "crashes") out.crashes = static_cast<int>(value);
    else if (key == "crash_down") out.crash_down = value;
    else if (key == "disk_spikes") out.disk_spikes = static_cast<int>(value);
    else if (key == "disk_factor") out.disk_latency_factor = value;
    else if (key == "disk_err") out.disk_error_rate = value;
    else if (key == "disk_spike_len") out.disk_spike_len = value;
    else if (key == "start") out.start = value;
    else if (key == "span") out.span = value;
    else spec_error(spec, "unknown key " + std::string(key));
  }
  return out;
}

FaultPlan generate_plan(const FaultSpec& spec, int num_nodes, Rng& rng) {
  FaultPlan plan;
  if (num_nodes <= 0) return plan;
  const Time start = spec.start < 0.0 ? 0.0 : spec.start;
  const Duration span = spec.span > 0.0 ? spec.span : 1.0;
  const Time end = start + span;

  // Crash/restart pairs first (fixed draw order keeps schedules stable when
  // other knobs change). Round-robin from the top node index down; flaps
  // below skip crashed nodes so a restart never races a flap on one link.
  std::vector<bool> crashed(static_cast<std::size_t>(num_nodes), false);
  std::vector<Time> busy_until(static_cast<std::size_t>(num_nodes), start);
  for (int k = 0; k < spec.crashes; ++k) {
    const int node = num_nodes - 1 - (k % num_nodes);
    Time at = busy_until[static_cast<std::size_t>(node)] +
              rng.uniform(0.05, 0.35) * span;
    // Leave room for the restart and recovery inside the window.
    at = std::min(at, start + 0.7 * span);
    const Duration down = spec.crash_down * rng.uniform(0.6, 1.4);
    plan.events.push_back({at, FaultKind::kNodeCrash, node});
    plan.events.push_back({at + down, FaultKind::kNodeRestart, node});
    busy_until[static_cast<std::size_t>(node)] = at + down + 0.1 * span;
    crashed[static_cast<std::size_t>(node)] = true;
  }

  // Steady degradation covers the whole window, with a small per-node
  // stagger so nodes do not change state on the same event tick. The stagger
  // is drawn even when no degradation knob is set, so the flap/spike draws
  // below land identically across a sweep that varies only the drop rate
  // (controlled comparison: one knob changes one thing).
  const bool degraded = spec.drop_rate > 0.0 || spec.corrupt_rate > 0.0 ||
                        spec.extra_latency > 0.0 || spec.jitter > 0.0;
  for (int node = 0; node < num_nodes; ++node) {
    const Time at = start + rng.uniform(0.0, 0.05) * span;
    if (!degraded) continue;
    FaultEvent e{at, FaultKind::kLinkDegrade, node};
    e.drop_rate = spec.drop_rate;
    e.corrupt_rate = spec.corrupt_rate;
    e.extra_latency = spec.extra_latency;
    e.jitter = spec.jitter;
    plan.events.push_back(e);
    plan.events.push_back({end, FaultKind::kLinkClear, node});
  }

  // Link flaps: sequential episodes per node, never overlapping.
  if (spec.flaps > 0) {
    for (int node = 0; node < num_nodes; ++node) {
      if (crashed[static_cast<std::size_t>(node)]) continue;
      const double gap = span / (2.0 * spec.flaps + 1.0);
      Time t = start;
      for (int k = 0; k < spec.flaps; ++k) {
        t += rng.exponential(gap);
        const Duration down = spec.flap_down * rng.uniform(0.5, 1.5);
        if (t >= end) break;
        plan.events.push_back({t, FaultKind::kLinkDown, node});
        plan.events.push_back({std::min(t + down, end), FaultKind::kLinkUp, node});
        t += down + 0.5 * gap;
      }
    }
  }

  // Disk latency spikes, round-robin from node 0 up.
  for (int k = 0; k < spec.disk_spikes; ++k) {
    const int node = k % num_nodes;
    const Time at = start + rng.uniform(0.1, 0.8) * span;
    const Duration len = spec.disk_spike_len * rng.uniform(0.5, 1.5);
    FaultEvent e{at, FaultKind::kDiskDegrade, node};
    e.disk_latency_factor = spec.disk_latency_factor;
    e.disk_error_rate = spec.disk_error_rate;
    plan.events.push_back(e);
    plan.events.push_back({std::min(at + len, end), FaultKind::kDiskClear, node});
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return std::tuple(a.at, static_cast<int>(a.kind), a.target) <
                            std::tuple(b.at, static_cast<int>(b.kind), b.target);
                   });
  return plan;
}

}  // namespace dclue::sim::fault
