#pragma once

/// \file sweep.hpp
/// Parallel sweep pool. Every figure in the paper is a sweep over independent
/// configuration points (cluster size, router rate, DB scale factor, ...) and
/// each point is a deterministic function of its ClusterConfig — so points
/// can run concurrently, one Engine per worker thread, with results that are
/// bit-identical to a serial sweep. Workers claim indices from a shared
/// atomic counter (the simplest form of work stealing), which keeps long
/// points from serializing behind short ones.
///
/// The knob is `REPRO_JOBS`: unset or "1" = serial (the default, so existing
/// scripts behave exactly as before), N = N worker threads, "0" = one per
/// hardware thread.

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace dclue::sim {

/// Worker count from the REPRO_JOBS environment variable (see file comment).
inline int sweep_jobs() {
  const char* v = std::getenv("REPRO_JOBS");
  if (v == nullptr || v[0] == '\0') return 1;
  const int n = std::atoi(v);
  if (n < 0) return 1;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return n;
}

/// Run body(i) for every i in [0, n). With jobs <= 1 the calls happen inline
/// in index order; otherwise a pool of jthreads drains an atomic index
/// counter. Each body call must be independent of the others (no shared
/// mutable state) — the simulation library guarantees this per Engine.
template <typename F>
void parallel_for_n(std::size_t n, int jobs, F&& body) {
  if (n == 0) return;
  std::size_t workers = jobs <= 1 ? 1 : static_cast<std::size_t>(jobs);
  if (workers > n) workers = n;
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&next, n, &body] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < n; i = next.fetch_add(1, std::memory_order_relaxed)) {
          body(i);
        }
      });
    }
  }  // jthread joins here; all results are visible after this point
}

/// Map fn over [0, n) into a vector. Output order matches input order no
/// matter how the work was scheduled, so sweep output is reproducible.
template <typename R, typename F>
std::vector<R> sweep_map(std::size_t n, int jobs, F&& fn) {
  std::vector<R> out(n);
  parallel_for_n(n, jobs, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace dclue::sim
