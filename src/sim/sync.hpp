#pragma once

/// \file sync.hpp
/// Awaitable coordination primitives for simulation coroutines: one-shot
/// gates, counting semaphores, typed mailboxes, and a wait-group. Resumption
/// is deferred through the engine (never inline from the signaling site) so
/// that model code observes a consistent "events fire from the scheduler"
/// discipline and waker/wakee ordering stays deterministic.

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace dclue::sim {

namespace detail {
inline void resume_via_engine(Engine& engine, std::coroutine_handle<> h) {
  engine.after(0.0, [h] { h.resume(); });
}
}  // namespace detail

/// One-shot gate: waiters suspend until open() is called; waiting on an open
/// gate does not suspend. Used for request/response completion signalling.
class Gate {
 public:
  explicit Gate(Engine& engine) : engine_(engine) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  void open() {
    if (open_) return;
    open_ = true;
    for (auto h : waiters_) detail::resume_via_engine(engine_, h);
    waiters_.clear();
  }

  [[nodiscard]] bool is_open() const { return open_; }

  auto wait() {
    struct Awaiter {
      Gate& gate;
      bool await_ready() const noexcept { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) { gate.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  bool open_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wakeup. Models finite resources (version
/// overflow space, connection backlog, ...).
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial) : engine_(engine), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      detail::resume_via_engine(engine_, h);
    } else {
      ++count_;
    }
  }

  [[nodiscard]] std::size_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded typed queue with awaitable receive. The workhorse for message
/// delivery between protocol layers and for server request queues.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(engine) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void push(T item) {
    // Hand the item directly to the oldest waiter (if any) so that a
    // try_receive() racing with the deferred wakeup cannot steal it.
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot = std::move(item);
      detail::resume_via_engine(engine_, w->handle);
      return;
    }
    items_.push_back(std::move(item));
  }

  /// Awaitable receive; completes with the oldest item.
  auto receive() {
    struct Awaiter : Waiter {
      Mailbox& box;
      explicit Awaiter(Mailbox& b) : box(b) {}
      bool await_ready() const noexcept { return !box.items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        box.waiters_.push_back(this);
      }
      T await_resume() {
        if (this->slot) return std::move(*this->slot);
        T item = std::move(box.items_.front());
        box.items_.pop_front();
        return item;
      }
    };
    return Awaiter{*this};
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
  };
  Engine& engine_;
  std::deque<T> items_;
  std::deque<Waiter*> waiters_;
};

/// Single-waiter condition with memory: notify() wakes the waiter if one is
/// suspended, otherwise arms the signal so the next wait() returns at once.
/// Used for "more work may be available" pumps (e.g. TCP transmit loops).
class Signal {
 public:
  explicit Signal(Engine& engine) : engine_(engine) {}

  void notify() {
    if (waiter_) {
      auto h = waiter_;
      waiter_ = {};
      detail::resume_via_engine(engine_, h);
    } else {
      armed_ = true;
    }
  }

  auto wait() {
    struct Awaiter {
      Signal& sig;
      bool await_ready() {
        if (sig.armed_) {
          sig.armed_ = false;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sig.waiter_ = h; }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  bool armed_ = false;
  std::coroutine_handle<> waiter_;
};

/// Join-point for a known number of spawned activities.
class WaitGroup {
 public:
  explicit WaitGroup(Engine& engine) : gate_(engine) {}

  void add(int n = 1) { outstanding_ += n; }
  void done() {
    if (--outstanding_ == 0) gate_.open();
  }
  auto wait() { return gate_.wait(); }

 private:
  Gate gate_;
  int outstanding_ = 0;
};

}  // namespace dclue::sim
