#pragma once

/// \file small_vec.hpp
/// Inline small vector for trivially copyable elements. Used where the
/// datapath keeps tiny ordered sets that were previously node-based
/// containers: TCP out-of-order [start,end) hole ranges (was std::map — a
/// heap node per hole) and per-connection ack waiters (was a vector of
/// unique_ptr<Gate>). The common case (a handful of elements) lives
/// entirely inside the owning object; only pathological depths spill to
/// one heap block.

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

namespace dclue::sim {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable elements");

 public:
  SmallVec() = default;
  SmallVec(const SmallVec& other) { assign(other); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear_storage();
      assign(other);
    }
    return *this;
  }
  /// Move steals the heap buffer when the source spilled; inline contents
  /// are memcpy'd (elements are trivially copyable by contract).
  SmallVec(SmallVec&& other) noexcept { steal(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear_storage();
      steal(other);
    }
    return *this;
  }
  ~SmallVec() { clear_storage(); }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data_[size_++] = v;
  }

  /// Insert \p v before index \p pos (shifting the tail up).
  void insert_at(std::size_t pos, const T& v) {
    assert(pos <= size_);
    if (size_ == cap_) grow(cap_ * 2);
    std::memmove(data_ + pos + 1, data_ + pos, (size_ - pos) * sizeof(T));
    data_[pos] = v;
    ++size_;
  }

  /// Erase elements [first, last) by index.
  void erase_range(std::size_t first, std::size_t last) {
    assert(first <= last && last <= size_);
    std::memmove(data_ + first, data_ + last, (size_ - last) * sizeof(T));
    size_ -= last - first;
  }

  void erase_at(std::size_t pos) { erase_range(pos, pos + 1); }

  /// Drop elements from index \p n to the end.
  void truncate(std::size_t n) {
    assert(n <= size_);
    size_ = n;
  }

  void clear() { size_ = 0; }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& front() { return data_[0]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void steal(SmallVec& other) {
    if (other.data_ != other.inline_data()) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.cap_ = N;
      other.size_ = 0;
    } else {
      std::memcpy(inline_data(), other.data_, other.size_ * sizeof(T));
      data_ = inline_data();
      cap_ = N;
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  void assign(const SmallVec& other) {
    if (other.size_ > cap_) grow(other.size_);
    std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void grow(std::size_t ncap) {
    if (ncap < 2 * N) ncap = 2 * N;
    T* nbuf = static_cast<T*>(
        ::operator new(ncap * sizeof(T), std::align_val_t{alignof(T)}));
    std::memcpy(nbuf, data_, size_ * sizeof(T));
    clear_heap();
    data_ = nbuf;
    cap_ = ncap;
  }

  void clear_heap() {
    if (data_ != inline_data()) {
      ::operator delete(static_cast<void*>(data_),
                        std::align_val_t{alignof(T)});
    }
  }

  void clear_storage() {
    clear_heap();
    data_ = inline_data();
    cap_ = N;
    size_ = 0;
  }

  [[nodiscard]] T* inline_data() {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace dclue::sim
