#pragma once

/// \file units.hpp
/// Simulation time and unit helpers. Simulated time is a double in seconds;
/// all model inputs are expressed through these helpers so that intent
/// (milliseconds vs microseconds, Mb/s vs MB/s) is visible at the call site.

#include <cstdint>

namespace dclue::sim {

/// Simulated time in seconds since the start of the run.
using Time = double;

/// A duration in simulated seconds.
using Duration = double;

constexpr Duration seconds(double v) { return v; }
constexpr Duration milliseconds(double v) { return v * 1e-3; }
constexpr Duration microseconds(double v) { return v * 1e-6; }
constexpr Duration nanoseconds(double v) { return v * 1e-9; }

/// Data sizes. All sizes in the model are byte counts held in 64-bit ints.
using Bytes = std::int64_t;

constexpr Bytes kilobytes(double v) { return static_cast<Bytes>(v * 1024); }
constexpr Bytes megabytes(double v) { return static_cast<Bytes>(v * 1024 * 1024); }

/// Link and channel rates in bits per second.
using BitRate = double;

constexpr BitRate bits_per_sec(double v) { return v; }
constexpr BitRate kbps(double v) { return v * 1e3; }
constexpr BitRate mbps(double v) { return v * 1e6; }
constexpr BitRate gbps(double v) { return v * 1e9; }

/// Time to serialize \p bytes onto a channel of rate \p rate.
constexpr Duration transmission_time(Bytes bytes, BitRate rate) {
  return static_cast<double>(bytes) * 8.0 / rate;
}

/// CPU work is expressed as a path-length: the number of instructions an
/// operation takes, following the paper's calibration methodology ("all input
/// parameters are expressed as path-lengths ... this ensures that a speed cut
/// of CPU by 100x automatically scales everything by 100x").
using PathLength = double;

/// Processor cycle counts (context-switch costs, stall cycles).
using Cycles = double;

}  // namespace dclue::sim
