#include "sim/engine.hpp"

#include <limits>

namespace dclue::sim {

EventHandle Engine::at(Time t, std::function<void()> fn) {
  assert(t >= now_);
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{t, next_seq_++, std::move(fn), flag});
  return EventHandle{std::move(flag)};
}

std::uint64_t Engine::run_until(Time t_end) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    // priority_queue::top() is const; the event must be moved out before the
    // callback runs because the callback may schedule (and thus reallocate).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.time;
    ev.fn();
    ++n;
    ++executed_;
  }
  if (now_ < t_end) now_ = t_end;
  return n;
}

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.time;
    ev.fn();
    ++n;
    ++executed_;
  }
  return n;
}

}  // namespace dclue::sim
