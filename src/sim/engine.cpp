#include "sim/engine.hpp"

namespace dclue::sim {

Engine::~Engine() {
  // Destroy callbacks still parked in the arena (events never fired because
  // the run ended first). Free slots have a null destroy pointer.
  for (std::uint32_t i = 0; i < num_slots_; ++i) {
    Slot& s = slot(i);
    if (s.invoke != nullptr && s.destroy != nullptr) s.destroy(s);
  }
}

void Engine::fire_head() {
  const QueueEntry e = heap_[0];
  heap_pop();
  Slot& s = slot(e.slot);
  if (s.generation != e.generation) return;  // cancelled; slot already reused
  // Bump the generation before invoking so handles held by the callback
  // itself (or by anything it touches) read "already fired": cancel() becomes
  // a no-op instead of destroying the running callback.
  ++s.generation;
  --live_;
  now_ = e.time;
  s.invoke(s);
  // The arena is chunked, so `s` is stable even if the callback scheduled new
  // events; the slot could not be recycled because it was not yet free.
  // Release inline (rather than via release_slot) to reuse the reference.
  if (s.destroy != nullptr) {
    s.destroy(s);
    s.destroy = nullptr;
  }
  s.invoke = nullptr;
  s.next_free = free_head_;
  free_head_ = e.slot;
  ++executed_;
}

std::uint64_t Engine::run_until(Time t_end) {
  const std::uint64_t before = executed_;
  while (!heap_.empty() && heap_[0].time <= t_end) {
    fire_head();
  }
  if (now_ < t_end) now_ = t_end;
  return executed_ - before;
}

std::uint64_t Engine::run() {
  const std::uint64_t before = executed_;
  while (!heap_.empty()) {
    fire_head();
  }
  return executed_ - before;
}

}  // namespace dclue::sim
