#pragma once

/// \file frame_pool.hpp
/// Size-class freelist for coroutine frames. Every simulated packet spawns
/// short-lived coroutines (`TcpStack::rx_process`, the CpuCharge task, ack
/// senders via `spawn`); with the default allocator each of those is a
/// malloc/free pair on the hot path. Frames recycle through this pool
/// instead: a frame of size n maps to the 64-byte size class that covers
/// it, frees push onto an intrusive per-class freelist, and the next
/// same-class allocation pops in O(1) with no heap traffic.
///
/// The pool is thread-local, which gives two properties for free: no
/// synchronization on the fast path, and parallel sweep workers (see
/// sweep.hpp) stay fully isolated — a sweep point allocates and frees every
/// frame on its own worker, so runs cannot observe each other through the
/// allocator any more than they can through the engine.
///
/// Frames larger than the largest class (rare: a coroutine with a huge
/// local section) fall through to the global allocator. Pooled memory is
/// retained until thread exit, where the destructor returns freelisted
/// blocks to the heap (keeps LeakSanitizer clean in CI).

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>

namespace dclue::sim {

class FramePool {
 public:
  /// Size classes are multiples of 64 bytes; class k (1-based) holds blocks
  /// of exactly 64*k bytes. 24 classes pool frames up to 1536 bytes, which
  /// covers every coroutine in the model with headroom (the largest today is
  /// the iSCSI data-PDU exchange at under 1 KB).
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 24;
  static constexpr std::size_t kMaxPooledBytes = kGranularity * kClasses;

  static FramePool& local() {
    thread_local FramePool pool;
    return pool;
  }

  void* allocate(std::size_t n) {
    const std::size_t cls = class_of(n);
    if (cls > kClasses) {
      ++oversize_;
      return ::operator new(n);
    }
    FreeNode*& head = free_[cls - 1];
    if (head != nullptr) {
      FreeNode* node = head;
      head = node->next;
      ++hits_;
      return node;
    }
    ++misses_;
    return ::operator new(cls * kGranularity);
  }

  void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t cls = class_of(n);
    if (cls > kClasses) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(new (p) FreeNode);
    node->next = free_[cls - 1];
    free_[cls - 1] = node;
  }

  /// --- instrumentation (the datapath bench asserts steady-state hits) ----
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t oversize() const { return oversize_; }
  void reset_stats() { hits_ = misses_ = oversize_ = 0; }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  ~FramePool() {
    for (FreeNode*& head : free_) {
      while (head != nullptr) {
        FreeNode* next = head->next;
        ::operator delete(static_cast<void*>(head));
        head = next;
      }
    }
  }

 private:
  FramePool() = default;

  struct FreeNode {
    FreeNode* next = nullptr;
  };
  static_assert(sizeof(FreeNode) <= kGranularity);

  /// 1-based size class covering \p n bytes (class 1 even for n == 0).
  [[nodiscard]] static constexpr std::size_t class_of(std::size_t n) {
    return n == 0 ? 1 : (n + kGranularity - 1) / kGranularity;
  }

  std::array<FreeNode*, kClasses> free_{};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t oversize_ = 0;
};

}  // namespace dclue::sim
