#pragma once

/// \file rng.hpp
/// Deterministic random-number streams. Every stochastic component of the
/// model owns its own stream derived from (master seed, stream id), so adding
/// or removing one component never perturbs the draws seen by another — a
/// prerequisite for clean sensitivity sweeps.

#include <cstdint>
#include <random>
#include <span>
#include <string_view>

namespace dclue::sim {

/// A single random stream. Thin deterministic wrapper over xoshiro-quality
/// std engine plus the distribution helpers the model needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Index into a discrete distribution given by non-negative weights.
  std::size_t pick(std::span<const double> weights);

  /// TPC-C NURand non-uniform random, per clause 2.1.6 of the spec.
  std::int64_t nurand(std::int64_t a, std::int64_t x, std::int64_t y);

  std::uint64_t raw() { return engine_(); }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Factory producing independent named streams from one master seed.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) : master_seed_(master_seed) {}

  /// Derive a stream for component \p name and instance \p index.
  Rng stream(std::string_view name, std::uint64_t index = 0) const;

 private:
  std::uint64_t master_seed_;
};

}  // namespace dclue::sim
