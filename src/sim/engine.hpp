#pragma once

/// \file engine.hpp
/// Deterministic discrete-event simulation engine. Replaces the OPNET kernel
/// the paper's DCLUE model was built on. Events scheduled at equal times fire
/// in scheduling order (a monotonically increasing sequence number breaks
/// ties), so a run is a pure function of configuration and seed.
///
/// Hot-path design (see DESIGN.md §"Engine internals"): the schedule → fire →
/// recycle cycle is allocation-free in the common case. Callbacks live in a
/// pooled arena of fixed 128-byte slots with 96 bytes of inline storage
/// (large captures fall back to the heap); cancellation is a generation bump
/// on the slot, so an EventHandle is just {engine, slot index, generation}
/// and cancelled events are dropped lazily when they surface at the head of
/// the queue. The queue itself is a 4-ary heap of 24-byte POD entries.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/units.hpp"

namespace dclue::sim {

class Engine;

/// Handle to a scheduled event; allows cancellation (e.g. TCP retransmission
/// timers that are reset on every ACK). Copies refer to the same slot
/// generation, so cancelling through any copy invalidates all of them.
/// A handle must not outlive its Engine.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the handle refers to an event that can still fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint32_t generation)
      : engine_(engine), slot_(slot), generation_(generation) {}

  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// The event loop. Single-threaded by design: determinism is worth more to a
/// sensitivity study than intra-run parallel speedup. Independent runs are
/// swept concurrently instead (one Engine per thread; see sweep.hpp).
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule \p fn to run at absolute time \p t (>= now()).
  template <typename F>
  EventHandle at(Time t, F&& fn);

  /// Schedule \p fn to run \p delay seconds from now.
  template <typename F>
  EventHandle after(Duration delay, F&& fn) {
    assert(delay >= 0.0);
    return at(now_ + delay, std::forward<F>(fn));
  }

  /// Run until the event queue drains or simulated time reaches \p t_end.
  /// Returns the number of events executed.
  std::uint64_t run_until(Time t_end);

  /// Run until the event queue drains.
  std::uint64_t run();

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of arena slots currently holding a scheduled (uncancelled) event.
  [[nodiscard]] std::size_t events_pending() const { return live_; }

  /// Monotonic per-engine id source. Model components that need ids unique
  /// within one simulation (e.g. TCP connection ids) draw them here, so runs
  /// stay identical whether they execute serially or on a sweep pool.
  std::uint64_t allocate_id() { return next_id_++; }

  /// Per-engine rendezvous board: a generic key → pointer map components use
  /// to pair endpoints created on opposite sides of a connection (see
  /// proto::MsgChannel). Engine-scoped (not global) so concurrent sweeps
  /// cannot observe each other.
  std::unordered_map<std::uint64_t, void*>& rendezvous_board() {
    return rendezvous_;
  }

 private:
  friend class EventHandle;

  /// Inline callback storage: most model lambdas capture a `this` pointer and
  /// a few scalars; the largest hot-path capture is a by-value net::Packet
  /// (80 bytes) plus a pointer.
  static constexpr std::size_t kInlineBytes = 96;
  static constexpr std::uint32_t kChunkSize = 256;  ///< slots per arena chunk
  static constexpr std::uint32_t kNoFree = 0xffffffff;

  /// Dispatch metadata leads so the generation check, invoke pointer and the
  /// first capture bytes of a small callback all land on the slot's first
  /// cache line; the 96-byte capture area follows at offset 32 (still
  /// max_align_t-aligned, so any inline callable is placed correctly).
  struct Slot {
    void (*invoke)(Slot&) = nullptr;   ///< null when the slot is free
    void (*destroy)(Slot&) = nullptr;  ///< null when destruction is trivial
    void* heap = nullptr;              ///< callback location if too large
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoFree;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  };
  static_assert(sizeof(Slot) == 128);
  static_assert(offsetof(Slot, storage) % alignof(std::max_align_t) == 0);

  /// 24-byte POD; the heap moves these, never the callbacks.
  struct QueueEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  template <typename F, bool Inline>
  static void invoke_impl(Slot& s) {
    if constexpr (Inline) {
      (*std::launder(reinterpret_cast<F*>(s.storage)))();
    } else {
      (*static_cast<F*>(s.heap))();
    }
  }
  template <typename F, bool Inline>
  static void destroy_impl(Slot& s) {
    if constexpr (Inline) {
      std::launder(reinterpret_cast<F*>(s.storage))->~F();
    } else {
      delete static_cast<F*>(s.heap);
      s.heap = nullptr;
    }
  }

  /// Chunked so slots never move: callbacks run in place even if scheduling
  /// inside a callback grows the arena.
  [[nodiscard]] Slot& slot(std::uint32_t i) {
    return chunks_[i / kChunkSize][i % kChunkSize];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t i) const {
    return chunks_[i / kChunkSize][i % kChunkSize];
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoFree) {
      const std::uint32_t idx = free_head_;
      free_head_ = slot(idx).next_free;
      return idx;
    }
    if (num_slots_ % kChunkSize == 0) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    return num_slots_++;
  }

  void release_slot(std::uint32_t idx) {
    Slot& s = slot(idx);
    s.invoke = nullptr;
    s.destroy = nullptr;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  void cancel(std::uint32_t idx, std::uint32_t generation) {
    Slot& s = slot(idx);
    if (s.generation != generation || s.invoke == nullptr) return;
    if (s.destroy != nullptr) s.destroy(s);
    ++s.generation;  // the queue entry surfaces later and is skipped
    --live_;
    release_slot(idx);
    maybe_compact();
  }

  [[nodiscard]] bool slot_pending(std::uint32_t idx, std::uint32_t generation) const {
    return idx < num_slots_ && slot(idx).generation == generation &&
           slot(idx).invoke != nullptr;
  }

  static bool earlier(const QueueEntry& a, const QueueEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void heap_push(QueueEntry e) {
    // Hole insertion: shift ancestors down, write the entry once.
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Sift value \p v down from position i (the slot at i is treated as free;
  /// v is taken by value because it may alias an element being overwritten).
  void sift_down(std::size_t i, const QueueEntry v) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], v)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = v;
  }

  /// Remove heap_[0]; the heap must be non-empty. Bottom-up variant: walk the
  /// min-child path to a leaf unconditionally (3 comparisons per level), then
  /// sift the displaced last element up from the vacated leaf. The last
  /// element was itself a leaf, so the up-pass almost always stops after one
  /// comparison — cheaper than comparing it against the min child on the way
  /// down as the textbook pop does.
  void heap_pop() {
    const std::size_t n = heap_.size() - 1;
    const QueueEntry last = heap_[n];
    heap_.pop_back();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(last, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = last;
  }

  /// Cancellation is lazy (entries are dropped when they surface), so a
  /// timer-rearm-heavy workload — TCP RTO timers are cancelled on every ACK —
  /// would otherwise grow the heap without bound and tax every sift. When
  /// dead entries outnumber live ones 2:1, filter them out and re-heapify;
  /// amortized O(1) per event, and the pop order of survivors is unchanged.
  void maybe_compact() {
    if (heap_.size() < 64 || heap_.size() < 2 * live_) return;
    std::size_t out = 0;
    for (const QueueEntry& e : heap_) {
      if (slot(e.slot).generation == e.generation) heap_[out++] = e;
    }
    heap_.resize(out);
    if (out > 1) {
      for (std::size_t i = (out - 2) / 4 + 1; i-- > 0;) {
        sift_down(i, heap_[i]);
      }
    }
  }

  /// Pop-and-fire the head entry (already checked against the time bound).
  void fire_head();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_ = 0;
  std::vector<QueueEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t num_slots_ = 0;
  std::uint32_t free_head_ = kNoFree;
  std::unordered_map<std::uint64_t, void*> rendezvous_;
};

template <typename F>
EventHandle Engine::at(Time t, F&& fn) {
  assert(t >= now_);
  using Fn = std::decay_t<F>;
  static_assert(std::is_invocable_v<Fn&>, "engine callbacks take no arguments");
  constexpr bool kFits =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t);
  const std::uint32_t idx = acquire_slot();
  Slot& s = slot(idx);
  if constexpr (kFits) {
    ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
  } else {
    s.heap = new Fn(std::forward<F>(fn));
  }
  s.invoke = &invoke_impl<Fn, kFits>;
  // Most model callbacks capture only pointers and scalars; skip the destroy
  // call entirely for them (heap callbacks always need the delete).
  if constexpr (kFits && std::is_trivially_destructible_v<Fn>) {
    s.destroy = nullptr;
  } else {
    s.destroy = &destroy_impl<Fn, kFits>;
  }
  heap_push(QueueEntry{t, next_seq_++, idx, s.generation});
  ++live_;
  return EventHandle{this, idx, s.generation};
}

inline void EventHandle::cancel() {
  if (engine_) engine_->cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return engine_ && engine_->slot_pending(slot_, generation_);
}

}  // namespace dclue::sim
