#pragma once

/// \file engine.hpp
/// Deterministic discrete-event simulation engine. Replaces the OPNET kernel
/// the paper's DCLUE model was built on. Events scheduled at equal times fire
/// in scheduling order (a monotonically increasing sequence number breaks
/// ties), so a run is a pure function of configuration and seed.

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/units.hpp"

namespace dclue::sim {

class Engine;

/// Handle to a scheduled event; allows cancellation (e.g. TCP retransmission
/// timers that are reset on every ACK). Copies share the cancellation state.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

  /// True if the handle refers to an event that can still fire.
  [[nodiscard]] bool pending() const { return cancelled_ && !*cancelled_; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event loop. Single-threaded by design: determinism is worth more to a
/// sensitivity study than parallel speedup, and the model is cheap enough to
/// sweep serially.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule \p fn to run at absolute time \p t (>= now()).
  EventHandle at(Time t, std::function<void()> fn);

  /// Schedule \p fn to run \p delay seconds from now.
  EventHandle after(Duration delay, std::function<void()> fn) {
    assert(delay >= 0.0);
    return at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains or simulated time reaches \p t_end.
  /// Returns the number of events executed.
  std::uint64_t run_until(Time t_end);

  /// Run until the event queue drains.
  std::uint64_t run();

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dclue::sim
