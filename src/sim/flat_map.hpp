#pragma once

/// \file flat_map.hpp
/// Open-addressing hash map for POD keys: one contiguous slot array plus a
/// control-byte array probed 16 bytes at a time, power-of-two capacity.
/// Replaces node-based std::unordered_map on the DB-tier hot paths
/// (buffer-cache residency, lock table, MVCC chains, directory entries),
/// where the per-lookup pointer chase and per-insert node allocation
/// dominated once the engine and datapath were made cheap.
///
/// Probing is group-wise (SwissTable style): each control byte is either
/// empty, tombstone, or the top 7 bits of a full slot's hash (h2). A lookup
/// compares all 16 control bytes of a group in one SIMD instruction, checks
/// the (almost always zero or one) h2 matches against the slot array, and
/// stops at the first group containing an empty byte. At the load factors
/// the DB tier runs (<= 7/8), the expected number of groups examined is
/// ~1.1, so the probe loop's exit branch is predictable — the scalar
/// one-slot-at-a-time loop this replaces mispredicted its exit roughly once
/// per lookup, which cost more than the probe itself.
///
/// Semantics required by the model code (and covered by flat_map_test.cpp):
///   - erase never moves other elements. A vacated slot is handed back as
///     *empty* whenever its group still has another empty byte (no probe
///     chain continues past such a group, so none is cut); only a completely
///     packed group takes a tombstone, which later inserts reuse and the
///     next in-place rehash flushes. Steady insert/erase churn — lock
///     release, directory evict, buffer-cache eviction — therefore leaves
///     no tombstone accumulation and never degrades into periodic rehashes;
///   - erase(iterator) returns the next occupied position, so the purge_if /
///     invalidate_if / gc "iterate and erase" loops visit every remaining
///     element exactly once;
///   - references returned by find()/operator[] stay valid until the next
///     rehashing insert (unlike unordered_map's forever-stable nodes) — the
///     call sites hold no references across inserts.
///
/// Probe accounting (`probe_stats()`) counts *groups* examined per lookup;
/// steps/ops near 1.0 means single-group probes. It feeds the
/// `db.probe_len` registry gauge; one add per lookup, invisible next to the
/// probe itself.

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace dclue::sim {

/// Multiplicative mixing for 64-bit keys. PageIds carry their table id in
/// the top bits and small page numbers at the bottom; the multiply + fold
/// spreads both into the low bits the mask keeps. Deliberately *not*
/// locality-preserving: an identity-style hash packs sequential page windows
/// into one giant probe cluster, and every absent-key lookup that lands in
/// it (resident() checks miss constantly) scans to the cluster's end.
struct FlatHash64 {
  [[nodiscard]] std::uint64_t operator()(std::uint64_t key) const {
    std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    return h ^ (h >> 32);
  }
};

/// Cumulative probe cost of a map: `steps` 16-slot groups inspected over
/// `ops` lookups (find / insert / erase all count). steps/ops is the average
/// probe length — 1.0 means every lookup resolved in its home group.
struct ProbeStats {
  std::uint64_t steps = 0;
  std::uint64_t ops = 0;
};

namespace detail {

/// 16 control bytes compared at once. With SSE2 each match is one compare +
/// movemask; the portable fallback is a byte loop with identical semantics
/// (and is what non-x86 builds compile).
struct CtrlGroup {
  static constexpr std::size_t kSize = 16;
#if defined(__SSE2__)
  __m128i v;
  explicit CtrlGroup(const std::uint8_t* p)
      : v(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))) {}
  [[nodiscard]] std::uint32_t match(std::uint8_t b) const {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(b)))));
  }
#else
  std::uint8_t bytes[kSize];
  explicit CtrlGroup(const std::uint8_t* p) { std::memcpy(bytes, p, kSize); }
  [[nodiscard]] std::uint32_t match(std::uint8_t b) const {
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < kSize; ++i) {
      m |= static_cast<std::uint32_t>(bytes[i] == b) << i;
    }
    return m;
  }
#endif
};

}  // namespace detail

template <typename Key, typename T, typename Hash = FlatHash64>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<Key>,
                "FlatMap keys must be trivially copyable PODs");

  // Control byte per slot: kEmpty / kTombstone have the top bit set; a full
  // slot stores the hash's top 7 bits (h2). Probes scan this one-byte array
  // — L1-resident at DB-tier sizes — and touch the 16x bigger slot array
  // only on an h2 match, which false-positives on ~1/128 of full slots.
  static constexpr std::uint8_t kEmpty = 0x80;
  static constexpr std::uint8_t kTombstone = 0xfe;
  [[nodiscard]] static bool is_full(std::uint8_t c) { return (c & 0x80) == 0; }
  [[nodiscard]] static std::uint8_t h2_of(std::uint64_t hash) {
    return static_cast<std::uint8_t>(hash >> 57);  // top 7 bits; < 0x80
  }

  using Group = detail::CtrlGroup;
  static constexpr std::size_t kGroupSize = Group::kSize;
  static constexpr std::size_t kGroupShift = 4;
  static_assert(kGroupSize == (1u << kGroupShift));

 public:
  struct Slot {
    Key key;
    T value;
  };

  template <bool Const>
  class Iter {
    using MapPtr = std::conditional_t<Const, const FlatMap*, FlatMap*>;
    using SlotRef = std::conditional_t<Const, const Slot&, Slot&>;
    using SlotPtr = std::conditional_t<Const, const Slot*, Slot*>;

   public:
    Iter() = default;
    Iter(MapPtr m, std::size_t i) : map_(m), i_(i) { skip(); }

    [[nodiscard]] SlotRef operator*() const { return map_->slots_[i_]; }
    [[nodiscard]] SlotPtr operator->() const { return &map_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    [[nodiscard]] bool operator==(const Iter& o) const { return i_ == o.i_; }
    [[nodiscard]] bool operator!=(const Iter& o) const { return i_ != o.i_; }

   private:
    friend class FlatMap;
    void skip() {
      while (map_ && i_ < map_->capacity_ && !is_full(map_->ctrl_[i_])) ++i_;
    }
    MapPtr map_ = nullptr;
    std::size_t i_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;
  FlatMap(FlatMap&& o) noexcept { steal(o); }
  FlatMap& operator=(FlatMap&& o) noexcept {
    if (this != &o) {
      destroy_storage();
      steal(o);
    }
    return *this;
  }
  ~FlatMap() { destroy_storage(); }

  [[nodiscard]] iterator begin() { return iterator(this, 0); }
  [[nodiscard]] iterator end() { return iterator(this, capacity_); }
  [[nodiscard]] const_iterator begin() const { return const_iterator(this, 0); }
  [[nodiscard]] const_iterator end() const { return const_iterator(this, capacity_); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const ProbeStats& probe_stats() const { return probes_; }

  [[nodiscard]] iterator find(const Key& key) {
    const std::size_t i = find_index(key);
    return i == kNpos ? end() : iterator(this, i);
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const std::size_t i = find_index(key);
    return i == kNpos ? end() : const_iterator(const_cast<FlatMap*>(this), i);
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find_index(key) != kNpos;
  }

  /// Insert default-constructed value if absent; return the mapped value.
  T& operator[](const Key& key) { return try_emplace(key).first->value; }

  /// unordered_map::try_emplace semantics: no-op when the key exists.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    reserve_for_insert();
    const std::uint64_t hash = Hash{}(key);
    const std::uint8_t h2 = h2_of(hash);
    std::size_t g = (hash & mask_) >> kGroupShift;
    std::size_t tomb = kNpos;
    std::uint64_t steps = 1;
    for (;; g = (g + 1) & gmask_, ++steps) {
      const Group grp(ctrl_ + g * kGroupSize);
      std::uint32_t m = grp.match(h2);
      while (m != 0) {
        const std::size_t i =
            g * kGroupSize + static_cast<std::size_t>(std::countr_zero(m));
        if (slots_[i].key == key) {
          note_probe(steps);
          return {iterator(this, i), false};
        }
        m &= m - 1;
      }
      if (tomb == kNpos) {
        const std::uint32_t t = grp.match(kTombstone);
        if (t != 0) {
          tomb = g * kGroupSize + static_cast<std::size_t>(std::countr_zero(t));
        }
      }
      const std::uint32_t e = grp.match(kEmpty);
      if (e != 0) {  // key is absent; place at the earliest reusable slot
        note_probe(steps);
        std::size_t i;
        if (tomb != kNpos) {
          i = tomb;  // reuse the tombstone nearest the natural position
        } else {
          i = g * kGroupSize + static_cast<std::size_t>(std::countr_zero(e));
          ++filled_;
        }
        ctrl_[i] = h2;
        new (&slots_[i].key) Key(key);
        new (&slots_[i].value) T(std::forward<Args>(args)...);
        ++size_;
        return {iterator(this, i), true};
      }
    }
  }

  std::pair<iterator, bool> insert_or_assign(const Key& key, T value) {
    auto [it, inserted] = try_emplace(key, std::move(value));
    if (!inserted) it->value = std::move(value);
    return {it, inserted};
  }

  /// Erase by key; returns the number of elements removed (0 or 1). Never
  /// moves other elements; see the header comment for when the slot is
  /// handed back empty versus tombstoned.
  std::size_t erase(const Key& key) {
    const std::size_t i = find_index(key);
    if (i == kNpos) return 0;
    erase_slot(i);
    return 1;
  }

  /// Erase at a known position, skipping the find (release / evict paths
  /// that already hold the iterator from their lookup).
  void erase_compact(iterator it) {
    assert(it.map_ == this && is_full(ctrl_[it.i_]));
    erase_slot(it.i_);
  }

  /// Stable slot index of \p it, valid until the next rehash (erases never
  /// move slots). Callers that key other structures by slot index must
  /// re-derive after any capacity() change.
  [[nodiscard]] std::size_t index_of(const_iterator it) const {
    return it.i_;
  }
  [[nodiscard]] std::size_t index_of(iterator it) const { return it.i_; }

  /// Erase by stored slot index (see index_of): no probe, and for trivially
  /// destructible slots no read of the slot line at all — the eviction path
  /// uses this to skip one cold cache miss per victim.
  void erase_at(std::size_t i) {
    assert(i < capacity_ && is_full(ctrl_[i]));
    erase_slot(i);
  }

  /// Erase at \p it; returns an iterator to the next occupied slot, so
  /// iterate-and-erase loops visit every survivor exactly once.
  iterator erase(iterator it) {
    assert(it.map_ == this && is_full(ctrl_[it.i_]));
    erase_slot(it.i_);
    return iterator(this, it.i_ + 1);
  }

  void clear() {
    for (std::size_t i = 0; i < capacity_ && size_ > 0; ++i) {
      if (is_full(ctrl_[i])) {
        destroy_slot(i);
        --size_;
      }
    }
    if (ctrl_ != nullptr) std::memset(ctrl_, kEmpty, capacity_);
    size_ = 0;
    filled_ = 0;
  }

  /// Grow so that \p n elements fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * 7 / 8 < n) want *= 2;
    if (want > capacity_) rehash(want);
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = kGroupSize;

  void note_probe(std::uint64_t steps) const {
    probes_.steps += steps;
    ++probes_.ops;
  }

  [[nodiscard]] std::size_t find_index(const Key& key) const {
    if (size_ == 0) {
      if (capacity_ != 0) note_probe(1);
      return kNpos;
    }
    const std::uint64_t hash = Hash{}(key);
    const std::uint8_t h2 = h2_of(hash);
    std::size_t g = (hash & mask_) >> kGroupShift;
    std::uint64_t steps = 1;
    for (;; g = (g + 1) & gmask_, ++steps) {
      const Group grp(ctrl_ + g * kGroupSize);
      std::uint32_t m = grp.match(h2);
      while (m != 0) {
        const std::size_t i =
            g * kGroupSize + static_cast<std::size_t>(std::countr_zero(m));
        if (slots_[i].key == key) {
          note_probe(steps);
          return i;
        }
        m &= m - 1;
      }
      if (grp.match(kEmpty) != 0) {
        note_probe(steps);
        return kNpos;
      }
    }
  }

  void erase_slot(std::size_t i) {
    destroy_slot(i);
    // Probes stop at the first group containing an empty byte, after
    // checking its matches. If this slot's group still has another empty
    // byte, no probe chain continues past the group, so handing the slot
    // back as empty cuts nothing. Only a completely packed group needs a
    // tombstone — at a 7/8 load cap that is a ~(7/8)^16 tail event, so
    // steady churn effectively never accumulates tombstones.
    const Group grp(ctrl_ + (i & ~(kGroupSize - 1)));
    if (grp.match(kEmpty) != 0) {
      ctrl_[i] = kEmpty;
      --filled_;
    } else {
      ctrl_[i] = kTombstone;
    }
    --size_;
  }

  void destroy_slot(std::size_t i) {
    slots_[i].key.~Key();
    slots_[i].value.~T();
  }

  void reserve_for_insert() {
    if (capacity_ == 0) {
      rehash(kMinCapacity);
      return;
    }
    // Load cap of 7/8 over non-empty slots (occupied + tombstones): inserts
    // that recycle tombstones never trip this, so steady churn stays put.
    if ((filled_ + 1) * 8 > capacity_ * 7) {
      // Grow only when live entries justify it; otherwise rehash in place to
      // flush accumulated tombstones.
      const std::size_t want =
          (size_ + 1) * 8 > capacity_ * 7 / 2 ? capacity_ * 2 : capacity_;
      rehash(want);
    }
  }

  /// Hint the kernel to back a large array with huge pages. Tables at
  /// directory scale span megabytes; on 4 KiB pages every cold probe risks
  /// a dTLB miss and page walk on top of its cache miss, and with THP in
  /// madvise mode (the common server default) nothing opts in for us.
  static void advise_huge(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    if (bytes < (2u << 20)) return;
    const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t lo = (addr + 4095) & ~std::uintptr_t{4095};
    const std::uintptr_t hi = (addr + bytes) & ~std::uintptr_t{4095};
    if (hi > lo) ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
    (void)p;
    (void)bytes;
#endif
  }

  void rehash(std::size_t new_capacity) {
    std::uint8_t* old_ctrl = ctrl_;
    Slot* old_slots = slots_;
    const std::size_t old_capacity = capacity_;

    ctrl_ = static_cast<std::uint8_t*>(::operator new(new_capacity));
    advise_huge(ctrl_, new_capacity);
    std::memset(ctrl_, kEmpty, new_capacity);
    slots_ = static_cast<Slot*>(::operator new(
        new_capacity * sizeof(Slot), std::align_val_t{alignof(Slot)}));
    advise_huge(slots_, new_capacity * sizeof(Slot));
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;
    gmask_ = (new_capacity >> kGroupShift) - 1;
    filled_ = size_;

    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (!is_full(old_ctrl[i])) continue;
      const std::uint64_t hash = Hash{}(old_slots[i].key);
      std::size_t g = (hash & mask_) >> kGroupShift;
      std::size_t j;
      for (;; g = (g + 1) & gmask_) {
        const Group grp(ctrl_ + g * kGroupSize);
        const std::uint32_t e = grp.match(kEmpty);
        if (e != 0) {
          j = g * kGroupSize + static_cast<std::size_t>(std::countr_zero(e));
          break;
        }
      }
      ctrl_[j] = h2_of(hash);
      new (&slots_[j].key) Key(old_slots[i].key);
      new (&slots_[j].value) T(std::move(old_slots[i].value));
      old_slots[i].key.~Key();
      old_slots[i].value.~T();
    }
    if (old_ctrl != nullptr) {
      ::operator delete(old_ctrl);
      ::operator delete(old_slots, std::align_val_t{alignof(Slot)});
    }
  }

  void destroy_storage() {
    if (ctrl_ == nullptr) return;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (is_full(ctrl_[i])) destroy_slot(i);
    }
    ::operator delete(ctrl_);
    ::operator delete(slots_, std::align_val_t{alignof(Slot)});
    ctrl_ = nullptr;
    slots_ = nullptr;
    capacity_ = 0;
    mask_ = 0;
    gmask_ = 0;
    size_ = 0;
    filled_ = 0;
  }

  void steal(FlatMap& o) {
    ctrl_ = std::exchange(o.ctrl_, nullptr);
    slots_ = std::exchange(o.slots_, nullptr);
    capacity_ = std::exchange(o.capacity_, 0);
    mask_ = std::exchange(o.mask_, 0);
    gmask_ = std::exchange(o.gmask_, 0);
    size_ = std::exchange(o.size_, 0);
    filled_ = std::exchange(o.filled_, 0);
    probes_ = std::exchange(o.probes_, ProbeStats{});
  }

  std::uint8_t* ctrl_ = nullptr;
  Slot* slots_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t gmask_ = 0;  ///< group count - 1
  std::size_t size_ = 0;
  std::size_t filled_ = 0;  ///< occupied + tombstoned slots
  mutable ProbeStats probes_;
};

}  // namespace dclue::sim
