#include "cpu/memory_system.hpp"

#include <algorithm>
#include <cmath>

namespace dclue::cpu {
namespace {

/// M/M/1-style waiting time for one station; utilization is clamped just
/// under 1 — the CPI fixed point provides the real back-pressure.
double station_wait(double lambda, double service_s, int servers = 1) {
  double rho = lambda * service_s / servers;
  rho = std::min(rho, 0.97);
  return rho / (1.0 - rho) * service_s;
}

}  // namespace

double MemorySystem::class_share(JobClass cls) const {
  if (instr_total_ <= 0.0) {
    // Before any work has run, assume pure application code.
    return cls == JobClass::kApplication ? 1.0 : 0.0;
  }
  return instr_by_class_[static_cast<int>(cls)] / instr_total_;
}

void MemorySystem::note_instructions(JobClass cls, double instructions) {
  // Exponential forgetting so the blend follows the current phase. Halve the
  // window once it exceeds ~50M instructions of history.
  instr_by_class_[static_cast<int>(cls)] += instructions;
  instr_total_ += instructions;
  if (instr_total_ > 5e7) {
    for (auto& v : instr_by_class_) v *= 0.5;
    instr_total_ *= 0.5;
  }
  dirty_ = true;
}

double MemorySystem::eviction_fraction(double threads) const {
  double footprint = threads * static_cast<double>(params_.thread_ws_bytes);
  double cache = static_cast<double>(params_.l2_bytes);
  if (footprint <= cache) return 0.0;
  return (footprint - cache) / footprint;
}

void MemorySystem::recompute() {
  // Blended base CPI and MPI over the current class mix, with cache-pressure
  // inflation of the miss rate: a partially evicted working set makes every
  // run re-fetch part of it.
  const double evict = eviction_fraction(std::max(active_threads_, 1.0));
  double base_cpi = 0.0;
  double mpi = 0.0;
  for (int c = 0; c < kNumJobClasses; ++c) {
    double share = class_share(static_cast<JobClass>(c));
    base_cpi += share * params_.base_cpi[c];
    mpi += share * params_.mpi[c];
  }
  mpi *= 1.0 + 2.0 * evict;

  const int busy = std::max(busy_cores_, 1);
  double cpi = base_cpi + 1.0;  // initial guess
  double latency_s = params_.dram_base_s;
  for (int iter = 0; iter < 30; ++iter) {
    double instr_rate = busy * params_.freq_hz / cpi;
    double miss_rate = instr_rate * mpi;
    latency_s = params_.dram_base_s + station_wait(miss_rate, params_.addr_bus_s) +
                station_wait(miss_rate, params_.data_bus_s) +
                station_wait(miss_rate, params_.mem_channel_s, params_.mem_channels);
    double stall_cycles = mpi * latency_s * params_.freq_hz * params_.blocking_factor;
    double next = base_cpi + stall_cycles;
    cpi = 0.5 * cpi + 0.5 * next;  // damping
  }

  double stall = cpi - base_cpi;
  for (int c = 0; c < kNumJobClasses; ++c) {
    // Apportion the stall component by each class's relative miss intensity.
    double class_mpi = params_.mpi[c] * (1.0 + 2.0 * evict);
    double scale = mpi > 0.0 ? class_mpi / mpi : 1.0;
    cpi_by_class_[c] = params_.base_cpi[c] + stall * scale;
  }
  last_latency_s_ = latency_s;
  double instr_rate = busy * params_.freq_hz / cpi;
  last_dbus_util_ = std::min(instr_rate * mpi * params_.data_bus_s, 1.0);
  last_mpi_ = mpi;
  dirty_ = false;
  last_compute_ = engine_.now();
}

double MemorySystem::effective_cpi(JobClass cls) {
  if (dirty_) recompute();
  return cpi_by_class_[static_cast<int>(cls)];
}

sim::Cycles MemorySystem::context_switch_cycles() {
  if (dirty_) recompute();
  const double evict = eviction_fraction(std::max(active_threads_, 1.0));
  const double lines = evict *
                       static_cast<double>(params_.thread_ws_bytes) /
                       static_cast<double>(params_.cache_line_bytes);
  // Refill is a sequential stream, so each line pays close to the unloaded
  // DRAM latency rather than the fully loaded random-access latency. This
  // lands on the paper's anchors: 17.7K cycles at 20 threads (no eviction),
  // ~70K at 75 threads.
  const double miss_penalty_cycles = params_.dram_base_s * params_.freq_hz;
  return params_.context_switch_base_cycles + lines * miss_penalty_cycles;
}

}  // namespace dclue::cpu
