#pragma once

/// \file processor.hpp
/// Multi-core CPU scheduler for one server node. Model coroutines execute
/// path-length-denominated work with `co_await proc.compute(pl, cls, tid)`.
/// Interrupt-class work preempts application work (the paper: "application
/// processing is interrupted to handle message receives"), and dispatching a
/// different thread than the one that last ran on a core pays the
/// cache-pressure-dependent context switch cost from the MemorySystem.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "cpu/memory_system.hpp"
#include "cpu/params.hpp"
#include "sim/engine.hpp"
#include "sim/obs/registry.hpp"
#include "sim/obs/stats.hpp"
#include "sim/task.hpp"

namespace dclue::cpu {

/// Identifies a schedulable thread context. Interrupt work uses kNoThread.
using ThreadId = std::int32_t;
inline constexpr ThreadId kNoThread = -1;

class Processor {
 public:
  Processor(sim::Engine& engine, const PlatformParams& params, MemorySystem& mem)
      : engine_(engine), params_(params), mem_(mem), cores_(params.cores) {}
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  /// Awaitable: execute \p pl instructions of class \p cls on behalf of
  /// thread \p tid. Resumes when the work completes.
  auto compute(sim::PathLength pl, JobClass cls, ThreadId tid) {
    struct Awaiter {
      Processor& proc;
      Job job;
      bool await_ready() const noexcept { return job.remaining <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        job.resume = h;
        proc.submit(&job);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, Job{pl, cls, tid, {}}};
  }

  /// Threads register while they have in-flight work; the count drives the
  /// cache-pressure model ("active threads" in the paper's §3.4 discussion).
  void thread_activated();
  void thread_deactivated();

  [[nodiscard]] sim::Time now() const { return engine_.now(); }
  [[nodiscard]] const PlatformParams& params() const { return params_; }
  [[nodiscard]] MemorySystem& memory() { return mem_; }

  /// --- metrics ------------------------------------------------------------
  [[nodiscard]] double utilization() const {
    return busy_time_.average(engine_.now()) / params_.cores;
  }
  [[nodiscard]] double avg_active_threads() const {
    return active_threads_tw_.average(engine_.now());
  }
  [[nodiscard]] const obs::Tally& context_switch_cost_cycles() const {
    return csw_cost_;
  }
  [[nodiscard]] std::uint64_t context_switches() const { return csw_count_.count(); }
  [[nodiscard]] double instructions_executed() const {
    return instr_executed_.value();
  }
  [[nodiscard]] double avg_cpi() const {
    return instr_executed_.value() > 0
               ? cycles_executed_.value() / instr_executed_.value()
               : 0.0;
  }
  /// Reset measurement windows at the end of warmup.
  void reset_stats();

  /// Bind this processor's collectors under \p prefix ("node0.cpu.").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

 private:
  struct Job {
    sim::PathLength remaining;
    JobClass cls;
    ThreadId tid;
    std::coroutine_handle<> resume;
  };
  struct Core {
    bool busy = false;
    Job* job = nullptr;
    sim::Time started = 0.0;
    sim::PathLength slice_instr = 0.0;
    double slice_cpi = 1.0;
    sim::EventHandle completion;
    ThreadId last_tid = kNoThread;
  };

  void submit(Job* job);
  void dispatch(int core_idx);
  void complete(int core_idx);
  void preempt(int core_idx);
  [[nodiscard]] int find_idle_core() const;
  [[nodiscard]] int find_preemptible_core() const;
  void update_busy(int delta);

  sim::Engine& engine_;
  PlatformParams params_;
  MemorySystem& mem_;
  std::vector<Core> cores_;
  std::deque<Job*> interrupt_q_;
  std::deque<Job*> normal_q_;

  int active_threads_ = 0;
  int busy_cores_ = 0;
  obs::TimeWeightedAvg active_threads_tw_;
  obs::TimeWeightedAvg busy_time_;  // sum over cores of busy indicator
  obs::Tally csw_cost_;
  obs::Counter csw_count_;
  obs::Accum instr_executed_;
  obs::Accum cycles_executed_;
};

}  // namespace dclue::cpu
