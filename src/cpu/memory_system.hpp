#pragma once

/// \file memory_system.hpp
/// Queueing model of the processor bus and memory channels, and the CPI /
/// context-switch-cost model built on it. Reproduces the paper's §2.3 final
/// modeling layer: "Address bus, data bus and memory channels are modeled as
/// queuing systems and the resulting memory latency determines CPU stalls via
/// the concept of blocking factor."
///
/// The effective CPI is a fixed point: more stalls -> higher CPI -> lower
/// instruction (and therefore miss) rate -> less bus queueing -> fewer
/// stalls. We solve it by damped iteration each time the inputs (busy cores,
/// active threads, class mix) change materially.

#include <array>

#include "cpu/params.hpp"
#include "sim/engine.hpp"
#include "sim/obs/stats.hpp"

namespace dclue::cpu {

class MemorySystem {
 public:
  MemorySystem(sim::Engine& engine, const PlatformParams& params)
      : engine_(engine), params_(params) {}

  /// Effective cycles-per-instruction for work of class \p cls given the
  /// current platform state. Cached; recomputed when state changes.
  double effective_cpi(JobClass cls);

  /// Cost in cycles of dispatching a different thread than the one that ran
  /// last on a core. Grows with cache pressure (thread count) and with the
  /// prevailing loaded memory latency — the paper's 17.7 K -> 69.7 K effect.
  sim::Cycles context_switch_cycles();

  /// Fraction of a thread's working set evicted between consecutive runs.
  [[nodiscard]] double eviction_fraction(double threads) const;

  /// --- state notifications from the processor ---------------------------
  void set_busy_cores(int n) {
    if (n != busy_cores_) {
      busy_cores_ = n;
      dirty_ = true;
    }
  }
  void set_active_threads(double n) {
    if (n != active_threads_) {
      active_threads_ = n;
      dirty_ = true;
    }
  }
  /// Record executed instructions so the class blend tracks actual work.
  void note_instructions(JobClass cls, double instructions);

  /// --- observability -----------------------------------------------------
  [[nodiscard]] double loaded_memory_latency_s() const { return last_latency_s_; }
  [[nodiscard]] double data_bus_utilization() const { return last_dbus_util_; }
  [[nodiscard]] double blended_mpi() const { return last_mpi_; }
  [[nodiscard]] double active_threads() const { return active_threads_; }

 private:
  void recompute();
  [[nodiscard]] double class_share(JobClass cls) const;

  sim::Engine& engine_;
  PlatformParams params_;

  int busy_cores_ = 0;
  double active_threads_ = 0.0;
  std::array<double, kNumJobClasses> instr_by_class_{};
  double instr_total_ = 0.0;

  bool dirty_ = true;
  sim::Time last_compute_ = -1.0;
  std::array<double, kNumJobClasses> cpi_by_class_{};
  double last_latency_s_ = 0.0;
  double last_dbus_util_ = 0.0;
  double last_mpi_ = 0.0;
};

}  // namespace dclue::cpu
