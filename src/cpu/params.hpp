#pragma once

/// \file params.hpp
/// Platform calibration. The baseline is the paper's server node: a 3.2 GHz
/// Pentium 4 dual-processor with 1 MB L2, 133 MHz (quad-pumped) front-side
/// bus and DDR-266 memory, delivering ~50 K tpm-C unclustered. Context-switch
/// and thread working-set numbers are calibrated to the paper's anchors
/// (17.7 K cycles/switch at ~20 active threads rising to 69.7 K at ~75).

#include "sim/units.hpp"

namespace dclue::cpu {

/// Class of work executing on a CPU. Kernel/interrupt work (TCP, iSCSI,
/// interrupt handling) has worse cache behaviour than steady-state
/// application code, which is how heavy messaging degrades CPI without any
/// hand-tuned "communication penalty" constant.
enum class JobClass { kApplication = 0, kKernel = 1, kInterrupt = 2 };
inline constexpr int kNumJobClasses = 3;

struct PlatformParams {
  int cores = 2;                        ///< dual-processor node
  double freq_hz = 3.2e9;               ///< CPU clock
  double base_cpi[kNumJobClasses] = {1.20, 1.35, 1.50};  ///< core-only CPI
  double mpi[kNumJobClasses] = {0.0050, 0.0105, 0.0130}; ///< L2 misses/instr

  sim::Bytes l2_bytes = sim::megabytes(1);
  sim::Bytes thread_ws_bytes = sim::kilobytes(32);  ///< per-thread working set
  sim::Bytes cache_line_bytes = 64;

  /// Fraction of memory latency that shows up as CPU stall (the paper's
  /// "blocking factor": out-of-order HW threads hide the rest).
  double blocking_factor = 0.35;

  /// Memory subsystem service times (per 64 B cache-line transaction).
  /// Address bus: 2 cycles at 133 MHz; data bus: 64 B on the quad-pumped
  /// 133 MHz FSB (4.26 GB/s); two DDR-266 channels (2.13 GB/s each).
  double addr_bus_s = 2.0 / 133e6;
  double data_bus_s = 64.0 / 4.26e9;
  int mem_channels = 2;
  double mem_channel_s = 64.0 / 2.13e9;
  double dram_base_s = 60e-9;  ///< unloaded DRAM access

  /// Context switch: fixed kernel path plus cache refill of the evicted part
  /// of the incoming thread's working set (each line costs one loaded memory
  /// access). Calibrated to 17.7 K cycles @ 20 threads, ~70 K @ 75.
  sim::Cycles context_switch_base_cycles = 17'700;

  /// Interrupt entry/exit overhead (cycles), charged per interrupt-class job.
  sim::Cycles interrupt_overhead_cycles = 2'000;

  /// Return a copy slowed down by \p f (the paper's 100x methodology): CPU,
  /// bus and memory frequencies divided, so service times multiply.
  [[nodiscard]] PlatformParams scaled(double f) const {
    PlatformParams p = *this;
    p.freq_hz /= f;
    p.addr_bus_s *= f;
    p.data_bus_s *= f;
    p.mem_channel_s *= f;
    p.dram_base_s *= f;
    return p;
  }
};

}  // namespace dclue::cpu
