#include "cpu/processor.hpp"

#include <cassert>

namespace dclue::cpu {

void Processor::thread_activated() {
  ++active_threads_;
  active_threads_tw_.record(engine_.now(), active_threads_);
  mem_.set_active_threads(active_threads_);
}

void Processor::thread_deactivated() {
  assert(active_threads_ > 0);
  --active_threads_;
  active_threads_tw_.record(engine_.now(), active_threads_);
  mem_.set_active_threads(active_threads_);
}

void Processor::reset_stats() {
  active_threads_tw_.reset(engine_.now());
  busy_time_.reset(engine_.now());
  csw_cost_.reset();
  csw_count_.reset();
  instr_executed_.reset();
  cycles_executed_.reset();
}

void Processor::register_metrics(obs::MetricsRegistry& reg,
                                 const std::string& prefix) {
  reg.bind(prefix + "busy_cores", &busy_time_);
  reg.bind(prefix + "active_threads", &active_threads_tw_);
  reg.bind(prefix + "context_switch_cycles", &csw_cost_);
  reg.bind(prefix + "context_switches", &csw_count_);
  reg.bind(prefix + "instructions", &instr_executed_);
  reg.bind(prefix + "cycles", &cycles_executed_);
  reg.gauge_fn(prefix + "stall_cycles", [this] {
    const double stalls = cycles_executed_.value() - instr_executed_.value();
    return stalls > 0.0 ? stalls : 0.0;
  });
  reg.gauge_fn(prefix + "utilization", [this] { return utilization(); });
}

void Processor::update_busy(int delta) {
  busy_cores_ += delta;
  busy_time_.record(engine_.now(), busy_cores_);
  mem_.set_busy_cores(busy_cores_);
}

int Processor::find_idle_core() const {
  for (int i = 0; i < static_cast<int>(cores_.size()); ++i) {
    if (!cores_[i].busy) return i;
  }
  return -1;
}

int Processor::find_preemptible_core() const {
  for (int i = 0; i < static_cast<int>(cores_.size()); ++i) {
    if (cores_[i].busy && cores_[i].job->cls != JobClass::kInterrupt) return i;
  }
  return -1;
}

void Processor::submit(Job* job) {
  if (job->cls == JobClass::kInterrupt) {
    interrupt_q_.push_back(job);
    int idle = find_idle_core();
    if (idle >= 0) {
      dispatch(idle);
    } else {
      int victim = find_preemptible_core();
      if (victim >= 0) preempt(victim);
    }
    return;
  }
  normal_q_.push_back(job);
  int idle = find_idle_core();
  if (idle >= 0) dispatch(idle);
}

void Processor::preempt(int core_idx) {
  Core& core = cores_[core_idx];
  assert(core.busy);
  core.completion.cancel();
  // Account for the executed fraction of the interrupted slice.
  double elapsed = engine_.now() - core.started;
  double slice_time = core.slice_instr * core.slice_cpi / params_.freq_hz;
  double frac = slice_time > 0.0 ? elapsed / slice_time : 1.0;
  if (frac > 1.0) frac = 1.0;
  double executed = core.slice_instr * frac;
  core.job->remaining -= executed;
  instr_executed_.record(executed);
  cycles_executed_.record(executed * core.slice_cpi);
  mem_.note_instructions(core.job->cls, executed);
  if (core.job->remaining < 0.0) core.job->remaining = 0.0;
  // Back to the head of the ready queue: it resumes as soon as the interrupt
  // work drains (same thread context, so no extra switch unless another
  // thread runs on this core in between).
  normal_q_.push_front(core.job);
  core.busy = false;
  core.job = nullptr;
  update_busy(-1);
  dispatch(core_idx);
}

void Processor::dispatch(int core_idx) {
  Core& core = cores_[core_idx];
  assert(!core.busy);
  Job* job = nullptr;
  if (!interrupt_q_.empty()) {
    job = interrupt_q_.front();
    interrupt_q_.pop_front();
  } else if (!normal_q_.empty()) {
    job = normal_q_.front();
    normal_q_.pop_front();
  } else {
    return;
  }

  double extra_cycles = 0.0;
  if (job->cls == JobClass::kInterrupt) {
    extra_cycles = params_.interrupt_overhead_cycles;
  } else if (job->tid != core.last_tid) {
    // Thread switch: pay the cache-refill-dependent cost.
    sim::Cycles cost = mem_.context_switch_cycles();
    extra_cycles = cost;
    csw_cost_.record(cost);
    csw_count_.record();
    core.last_tid = job->tid;
  }

  const double cpi = mem_.effective_cpi(job->cls);
  const double slice_instr = job->remaining;
  const double service_s = (slice_instr * cpi + extra_cycles) / params_.freq_hz;

  core.busy = true;
  core.job = job;
  core.started = engine_.now();
  core.slice_instr = slice_instr;
  core.slice_cpi = cpi + (slice_instr > 0 ? extra_cycles / slice_instr : 0.0);
  update_busy(+1);
  core.completion = engine_.after(service_s, [this, core_idx] { complete(core_idx); });
}

void Processor::complete(int core_idx) {
  Core& core = cores_[core_idx];
  assert(core.busy);
  Job* job = core.job;
  instr_executed_.record(core.slice_instr);
  cycles_executed_.record(core.slice_instr * core.slice_cpi);
  mem_.note_instructions(job->cls, core.slice_instr);
  job->remaining = 0.0;
  core.busy = false;
  core.job = nullptr;
  update_busy(-1);
  // Keep the pipeline moving before resuming the finished job so queue
  // statistics are consistent when its continuation runs.
  auto resume = job->resume;
  dispatch(core_idx);
  resume.resume();
}

}  // namespace dclue::cpu
