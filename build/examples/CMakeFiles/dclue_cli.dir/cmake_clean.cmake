file(REMOVE_RECURSE
  "CMakeFiles/dclue_cli.dir/dclue_cli.cpp.o"
  "CMakeFiles/dclue_cli.dir/dclue_cli.cpp.o.d"
  "dclue_cli"
  "dclue_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dclue_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
