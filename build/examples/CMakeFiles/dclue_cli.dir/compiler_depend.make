# Empty compiler generated dependencies file for dclue_cli.
# This may be replaced when dependencies are built.
