file(REMOVE_RECURSE
  "CMakeFiles/qos_what_if.dir/qos_what_if.cpp.o"
  "CMakeFiles/qos_what_if.dir/qos_what_if.cpp.o.d"
  "qos_what_if"
  "qos_what_if.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_what_if.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
