# Empty dependencies file for qos_what_if.
# This may be replaced when dependencies are built.
