# Empty compiler generated dependencies file for geo_cluster.
# This may be replaced when dependencies are built.
