file(REMOVE_RECURSE
  "CMakeFiles/geo_cluster.dir/geo_cluster.cpp.o"
  "CMakeFiles/geo_cluster.dir/geo_cluster.cpp.o.d"
  "geo_cluster"
  "geo_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
