file(REMOVE_RECURSE
  "CMakeFiles/test_db.dir/db/btree_test.cpp.o"
  "CMakeFiles/test_db.dir/db/btree_test.cpp.o.d"
  "CMakeFiles/test_db.dir/db/buffer_lock_test.cpp.o"
  "CMakeFiles/test_db.dir/db/buffer_lock_test.cpp.o.d"
  "CMakeFiles/test_db.dir/db/table_schema_test.cpp.o"
  "CMakeFiles/test_db.dir/db/table_schema_test.cpp.o.d"
  "test_db"
  "test_db.pdb"
  "test_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
