# Empty dependencies file for fig08_router_rate.
# This may be replaced when dependencies are built.
