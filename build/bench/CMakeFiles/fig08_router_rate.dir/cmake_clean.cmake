file(REMOVE_RECURSE
  "CMakeFiles/fig08_router_rate.dir/fig08_router_rate.cpp.o"
  "CMakeFiles/fig08_router_rate.dir/fig08_router_rate.cpp.o.d"
  "fig08_router_rate"
  "fig08_router_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_router_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
