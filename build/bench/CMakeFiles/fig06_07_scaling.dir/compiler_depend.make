# Empty compiler generated dependencies file for fig06_07_scaling.
# This may be replaced when dependencies are built.
