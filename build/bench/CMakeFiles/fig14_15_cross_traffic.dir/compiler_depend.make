# Empty compiler generated dependencies file for fig14_15_cross_traffic.
# This may be replaced when dependencies are built.
