file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_cross_traffic.dir/fig14_15_cross_traffic.cpp.o"
  "CMakeFiles/fig14_15_cross_traffic.dir/fig14_15_cross_traffic.cpp.o.d"
  "fig14_15_cross_traffic"
  "fig14_15_cross_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_cross_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
