file(REMOVE_RECURSE
  "CMakeFiles/fig16_cross_affinity.dir/fig16_cross_affinity.cpp.o"
  "CMakeFiles/fig16_cross_affinity.dir/fig16_cross_affinity.cpp.o.d"
  "fig16_cross_affinity"
  "fig16_cross_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cross_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
