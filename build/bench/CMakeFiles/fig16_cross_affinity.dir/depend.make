# Empty dependencies file for fig16_cross_affinity.
# This may be replaced when dependencies are built.
