# Empty compiler generated dependencies file for ablation_subpage.
# This may be replaced when dependencies are built.
