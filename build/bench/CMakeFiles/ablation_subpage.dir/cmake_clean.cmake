file(REMOVE_RECURSE
  "CMakeFiles/ablation_subpage.dir/ablation_subpage.cpp.o"
  "CMakeFiles/ablation_subpage.dir/ablation_subpage.cpp.o.d"
  "ablation_subpage"
  "ablation_subpage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subpage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
