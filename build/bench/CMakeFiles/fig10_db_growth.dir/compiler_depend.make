# Empty compiler generated dependencies file for fig10_db_growth.
# This may be replaced when dependencies are built.
