file(REMOVE_RECURSE
  "CMakeFiles/fig04_05_lock_waits.dir/fig04_05_lock_waits.cpp.o"
  "CMakeFiles/fig04_05_lock_waits.dir/fig04_05_lock_waits.cpp.o.d"
  "fig04_05_lock_waits"
  "fig04_05_lock_waits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_05_lock_waits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
