# Empty compiler generated dependencies file for fig04_05_lock_waits.
# This may be replaced when dependencies are built.
