file(REMOVE_RECURSE
  "CMakeFiles/fig09_central_logging.dir/fig09_central_logging.cpp.o"
  "CMakeFiles/fig09_central_logging.dir/fig09_central_logging.cpp.o.d"
  "fig09_central_logging"
  "fig09_central_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_central_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
