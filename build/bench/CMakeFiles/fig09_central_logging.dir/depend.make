# Empty dependencies file for fig09_central_logging.
# This may be replaced when dependencies are built.
