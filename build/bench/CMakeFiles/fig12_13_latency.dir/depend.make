# Empty dependencies file for fig12_13_latency.
# This may be replaced when dependencies are built.
