# Empty dependencies file for fig02_03_ipc_messages.
# This may be replaced when dependencies are built.
