file(REMOVE_RECURSE
  "CMakeFiles/fig02_03_ipc_messages.dir/fig02_03_ipc_messages.cpp.o"
  "CMakeFiles/fig02_03_ipc_messages.dir/fig02_03_ipc_messages.cpp.o.d"
  "fig02_03_ipc_messages"
  "fig02_03_ipc_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_03_ipc_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
