# Empty dependencies file for ablation_txn_breakdown.
# This may be replaced when dependencies are built.
