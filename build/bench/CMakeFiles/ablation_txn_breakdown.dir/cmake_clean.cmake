file(REMOVE_RECURSE
  "CMakeFiles/ablation_txn_breakdown.dir/ablation_txn_breakdown.cpp.o"
  "CMakeFiles/ablation_txn_breakdown.dir/ablation_txn_breakdown.cpp.o.d"
  "ablation_txn_breakdown"
  "ablation_txn_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_txn_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
