file(REMOVE_RECURSE
  "CMakeFiles/ext_qos_future.dir/ext_qos_future.cpp.o"
  "CMakeFiles/ext_qos_future.dir/ext_qos_future.cpp.o.d"
  "ext_qos_future"
  "ext_qos_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_qos_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
