# Empty dependencies file for ext_qos_future.
# This may be replaced when dependencies are built.
