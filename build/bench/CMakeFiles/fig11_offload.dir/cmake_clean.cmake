file(REMOVE_RECURSE
  "CMakeFiles/fig11_offload.dir/fig11_offload.cpp.o"
  "CMakeFiles/fig11_offload.dir/fig11_offload.cpp.o.d"
  "fig11_offload"
  "fig11_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
