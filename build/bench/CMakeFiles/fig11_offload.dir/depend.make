# Empty dependencies file for fig11_offload.
# This may be replaced when dependencies are built.
