# Empty dependencies file for dclue.
# This may be replaced when dependencies are built.
