file(REMOVE_RECURSE
  "libdclue.a"
)
