
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/fusion.cpp" "src/CMakeFiles/dclue.dir/cluster/fusion.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/cluster/fusion.cpp.o.d"
  "/root/repo/src/cluster/ipc.cpp" "src/CMakeFiles/dclue.dir/cluster/ipc.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/cluster/ipc.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/CMakeFiles/dclue.dir/core/cluster.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/core/cluster.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/dclue.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/CMakeFiles/dclue.dir/core/node.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/core/node.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/CMakeFiles/dclue.dir/core/recovery.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/core/recovery.cpp.o.d"
  "/root/repo/src/cpu/memory_system.cpp" "src/CMakeFiles/dclue.dir/cpu/memory_system.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/cpu/memory_system.cpp.o.d"
  "/root/repo/src/cpu/processor.cpp" "src/CMakeFiles/dclue.dir/cpu/processor.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/cpu/processor.cpp.o.d"
  "/root/repo/src/db/tpcc_schema.cpp" "src/CMakeFiles/dclue.dir/db/tpcc_schema.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/db/tpcc_schema.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/dclue.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/net/link.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/CMakeFiles/dclue.dir/net/router.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/net/router.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/CMakeFiles/dclue.dir/net/tcp.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/net/tcp.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/dclue.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/net/topology.cpp.o.d"
  "/root/repo/src/proto/channel.cpp" "src/CMakeFiles/dclue.dir/proto/channel.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/proto/channel.cpp.o.d"
  "/root/repo/src/proto/ftp.cpp" "src/CMakeFiles/dclue.dir/proto/ftp.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/proto/ftp.cpp.o.d"
  "/root/repo/src/proto/iscsi.cpp" "src/CMakeFiles/dclue.dir/proto/iscsi.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/proto/iscsi.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/dclue.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/dclue.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/dclue.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/sim/stats.cpp.o.d"
  "/root/repo/src/storage/disk.cpp" "src/CMakeFiles/dclue.dir/storage/disk.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/storage/disk.cpp.o.d"
  "/root/repo/src/workload/client.cpp" "src/CMakeFiles/dclue.dir/workload/client.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/workload/client.cpp.o.d"
  "/root/repo/src/workload/tpcc_txn.cpp" "src/CMakeFiles/dclue.dir/workload/tpcc_txn.cpp.o" "gcc" "src/CMakeFiles/dclue.dir/workload/tpcc_txn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
