#include "cluster/partition.hpp"

#include <gtest/gtest.h>

namespace dclue::cluster {
namespace {

struct Fixture {
  db::TpccScale scale;
  std::unique_ptr<db::TpccDatabase> db;
  explicit Fixture(std::int64_t warehouses = 80) {
    scale.warehouses = warehouses;
    scale.customers_per_district = 60;
    scale.items = 200;
    db = std::make_unique<db::TpccDatabase>(scale);
    sim::Rng rng(1);
    db->populate(rng);
  }
};

TEST(PartitionMap, WarehousesSplitIntoEqualBlocks) {
  Fixture f(80);
  PartitionMap pm(*f.db, 4);
  EXPECT_EQ(pm.owner_of_warehouse(1), 0);
  EXPECT_EQ(pm.owner_of_warehouse(20), 0);
  EXPECT_EQ(pm.owner_of_warehouse(21), 1);
  EXPECT_EQ(pm.owner_of_warehouse(40), 1);
  EXPECT_EQ(pm.owner_of_warehouse(80), 3);
  // Out-of-range warehouses clamp rather than crash.
  EXPECT_EQ(pm.owner_of_warehouse(0), 0);
  EXPECT_EQ(pm.owner_of_warehouse(999), 3);
}

TEST(PartitionMap, SingleNodeOwnsEverything) {
  Fixture f;
  PartitionMap pm(*f.db, 1);
  EXPECT_EQ(pm.home_of_page(f.db->district.data_page_of_key(db::key_wd(77, 3))), 0);
}

/// Property: for every warehouse-keyed table, the page home of any row's
/// page equals the owner of the row's warehouse — this is what makes an
/// affinity-1.0 workload IPC-free.
TEST(PartitionMap, DataPageHomesMatchWarehouseOwner) {
  Fixture f(80);
  PartitionMap pm(*f.db, 4);
  for (std::int64_t w : {1, 19, 20, 21, 41, 60, 61, 80}) {
    const int owner = pm.owner_of_warehouse(w);
    EXPECT_EQ(pm.home_of_page(f.db->warehouse.data_page_of_key(db::key_w(w))),
              owner)
        << "warehouse w=" << w;
    for (std::int64_t d : {1, 5, 10}) {
      EXPECT_EQ(pm.home_of_page(f.db->district.data_page_of_key(db::key_wd(w, d))),
                owner)
          << "district w=" << w << " d=" << d;
      EXPECT_EQ(pm.home_of_page(
                    f.db->customer.data_page_of_key(db::key_wdc(w, d, 37))),
                owner)
          << "customer w=" << w;
      EXPECT_EQ(pm.home_of_page(
                    f.db->order.data_page_of_key(db::key_wdo(w, d, 12345))),
                owner)
          << "order w=" << w;
      EXPECT_EQ(pm.home_of_page(f.db->order_line.data_page_of_key(
                    db::key_wdool(w, d, 12345, 7))),
                owner)
          << "order_line w=" << w;
      EXPECT_EQ(pm.home_of_page(
                    f.db->new_order.data_page_of_key(db::key_wdo(w, d, 12345))),
                owner)
          << "new_order w=" << w;
    }
    EXPECT_EQ(pm.home_of_page(f.db->stock.data_page_of_key(db::key_wi(w, 155))),
              owner)
        << "stock w=" << w;
    EXPECT_EQ(pm.home_of_page(
                  f.db->history.data_page_of_key(db::key_history(w, 999999))),
              owner)
        << "history w=" << w;
  }
}

TEST(PartitionMap, IndexLeafHomesMatchWarehouseOwner) {
  Fixture f(80);
  PartitionMap pm(*f.db, 4);
  for (std::int64_t w : {1, 21, 55, 80}) {
    const int owner = pm.owner_of_warehouse(w);
    EXPECT_EQ(pm.home_of_page(f.db->stock.index_page_of(db::key_wi(w, 500))),
              owner);
    EXPECT_EQ(pm.home_of_page(
                  f.db->order.index_page_of(db::key_wdo(w, 4, 1'000'000))),
              owner);
  }
}

TEST(PartitionMap, ItemPagesSpreadAcrossNodes) {
  Fixture f(80);
  PartitionMap pm(*f.db, 4);
  std::array<int, 4> seen{};
  for (std::int64_t i = 1; i <= 200; i += 10) {
    int home = pm.home_of_page(f.db->item.data_page_of(
        *f.db->item.find_id(db::key_i(i))));
    ASSERT_GE(home, 0);
    ASSERT_LT(home, 4);
    ++seen[static_cast<std::size_t>(home)];
  }
  int covered = 0;
  for (int c : seen) covered += c > 0 ? 1 : 0;
  EXPECT_GE(covered, 2);  // hashing spreads item pages around
}

TEST(PartitionMap, PageNumbersSurviveWideKeys) {
  // The largest composite keys (order-line of the last warehouse) must not
  // overflow the page-number field or collide across warehouses.
  Fixture f(80);
  const db::PageId a = f.db->order_line.data_page_of_key(db::key_wdool(20, 10, 1, 1));
  const db::PageId b = f.db->order_line.data_page_of_key(db::key_wdool(21, 10, 1, 1));
  EXPECT_NE(a, b);
  EXPECT_EQ(db::table_of_page(a), db::TableId::kOrderLine);
  PartitionMap pm(*f.db, 4);
  // w=20 and w=21 sit on opposite sides of a partition boundary.
  EXPECT_NE(pm.home_of_page(a), pm.home_of_page(b));
}

}  // namespace
}  // namespace dclue::cluster
