#include "cluster/fusion.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "storage/disk_array.hpp"

namespace dclue::cluster {
namespace {

net::CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

/// Two fully-wired fusion nodes over a real fabric (no DBMS on top).
struct Harness {
  sim::Engine engine;
  std::unique_ptr<net::Topology> topo;
  struct NodeBits {
    std::unique_ptr<net::TcpStack> stack;
    core::NodeStats stats;
    std::unique_ptr<db::BufferCache> cache;
    std::unique_ptr<DirectoryService> directory;
    std::unique_ptr<db::LockManager> locks;
    std::unique_ptr<db::VersionManager> versions;
    std::unique_ptr<storage::DiskArray> disk;
    std::unique_ptr<IpcService> ipc;
    std::unique_ptr<proto::IscsiTarget> target;
    std::vector<std::unique_ptr<proto::IscsiInitiator>> initiators;
    std::unique_ptr<FusionLayer> fusion;
  };
  std::array<NodeBits, 2> nodes;

  Harness() {
    net::TopologyParams tp;
    tp.servers_per_lata = 2;
    topo = std::make_unique<net::Topology>(engine, tp);
    for (int i = 0; i < 2; ++i) {
      auto& n = nodes[static_cast<std::size_t>(i)];
      n.stack = std::make_unique<net::TcpStack>(engine, topo->server_nic(i),
                                                net::TcpParams{},
                                                net::TcpCostModel{}, free_cpu());
      n.cache = std::make_unique<db::BufferCache>(64);
      n.directory = std::make_unique<DirectoryService>();
      n.locks = std::make_unique<db::LockManager>(engine);
      n.versions = std::make_unique<db::VersionManager>(engine, sim::megabytes(1),
                                                        *n.cache);
      n.disk = std::make_unique<storage::DiskArray>(engine, "d", 4,
                                                    storage::DiskParams{});
      n.ipc = std::make_unique<IpcService>(engine, i, n.stats, 0.0, free_cpu());
      n.target = std::make_unique<proto::IscsiTarget>(engine, *n.disk, free_cpu(),
                                                      proto::IscsiCostModel{});
      n.initiators.resize(2);
      for (int j = 0; j < 2; ++j) {
        n.initiators[static_cast<std::size_t>(j)] =
            std::make_unique<proto::IscsiInitiator>(engine, free_cpu(),
                                                    proto::IscsiCostModel{});
      }
      FusionDeps deps;
      deps.engine = &engine;
      deps.node_id = i;
      deps.num_nodes = 2;
      deps.ipc = n.ipc.get();
      deps.cache = n.cache.get();
      deps.directory = n.directory.get();
      deps.locks = n.locks.get();
      deps.versions = n.versions.get();
      deps.data_disk = n.disk.get();
      deps.iscsi = {n.initiators[0].get(), n.initiators[1].get()};
      deps.charge = free_cpu();
      deps.stats = &n.stats;
      // Even pages home at 0, odd at 1 (deterministic for tests).
      deps.dir_home_fn = [](db::PageId page) {
        return static_cast<int>(db::page_number(page) % 2);
      };
      n.fusion = std::make_unique<FusionLayer>(std::move(deps));
    }
    // Wire IPC (one duplex channel) and iSCSI (both directions).
    auto& ipc_listener = nodes[1].stack->listen(7000);
    sim::spawn([](Harness& h, net::TcpListener& l) -> sim::Task<void> {
      auto conn = co_await l.accept();
      h.nodes[1].ipc->attach_peer(0, std::make_shared<proto::MsgChannel>(conn));
    }(*this, ipc_listener));
    auto conn = nodes[0].stack->connect(topo->server_nic(1).address(), 7000);
    nodes[0].ipc->attach_peer(1, std::make_shared<proto::MsgChannel>(conn));
    for (int tgt = 0; tgt < 2; ++tgt) {
      const int ini = 1 - tgt;
      auto& listener = nodes[static_cast<std::size_t>(tgt)].stack->listen(
          static_cast<std::uint16_t>(9000 + ini));
      sim::spawn([](Harness& h, net::TcpListener& l, int tgt) -> sim::Task<void> {
        auto c = co_await l.accept();
        h.nodes[static_cast<std::size_t>(tgt)].target->serve(
            std::make_shared<proto::MsgChannel>(c));
      }(*this, listener, tgt));
      auto c2 = nodes[static_cast<std::size_t>(ini)].stack->connect(
          topo->server_nic(tgt).address(), static_cast<std::uint16_t>(9000 + ini));
      nodes[static_cast<std::size_t>(ini)]
          .initiators[static_cast<std::size_t>(tgt)]
          ->attach(std::make_shared<proto::MsgChannel>(c2));
    }
    engine.run_until(1.0);  // let the sessions establish
  }

  FusionLayer& fusion(int i) { return *nodes[static_cast<std::size_t>(i)].fusion; }
  db::BufferCache& cache(int i) { return *nodes[static_cast<std::size_t>(i)].cache; }
  core::NodeStats& stats(int i) { return nodes[static_cast<std::size_t>(i)].stats; }
};

db::PageId pg(std::uint64_t n) {
  return db::make_page_id(db::TableId::kCustomer, false, n);
}

TEST(Fusion, ColdMissGoesToDiskAndCaches) {
  Harness h;
  bool done = false;
  sim::spawn([](Harness& h, bool& ok) -> sim::Task<void> {
    co_await h.fusion(0).access_page(pg(2), false, 0);  // dir home 0, local
    ok = true;
  }(h, done));
  h.engine.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(h.cache(0).contains(pg(2), db::PageMode::kShared));
  EXPECT_EQ(h.stats(0).disk_reads.count(), 1u);
  EXPECT_EQ(h.stats(0).remote_fetches.count(), 0u);
}

TEST(Fusion, SecondAccessIsAHit) {
  Harness h;
  sim::spawn([](Harness& h) -> sim::Task<void> {
    co_await h.fusion(0).access_page(pg(2), false, 0);
    co_await h.fusion(0).access_page(pg(2), false, 0);
  }(h));
  h.engine.run();
  EXPECT_EQ(h.stats(0).buffer_hits.count(), 1u);
  EXPECT_EQ(h.stats(0).buffer_misses.count(), 1u);
}

TEST(Fusion, RemoteCacheSuppliesBlockInsteadOfDisk) {
  Harness h;
  sim::spawn([](Harness& h) -> sim::Task<void> {
    co_await h.fusion(0).access_page(pg(2), false, 0);  // node 0 caches it
    co_await h.fusion(1).access_page(pg(2), false, 0);  // node 1 fetches from 0
  }(h));
  h.engine.run();
  EXPECT_TRUE(h.cache(1).contains(pg(2), db::PageMode::kShared));
  EXPECT_EQ(h.stats(1).remote_fetches.count(), 1u);
  EXPECT_EQ(h.stats(1).disk_reads.count(), 0u);  // cache fusion's whole point
  EXPECT_GT(h.stats(0).ipc_data_sent.count(), 0u);  // the 8KB+ block message
}

TEST(Fusion, ExclusiveAccessInvalidatesOtherHolders) {
  Harness h;
  sim::spawn([](Harness& h) -> sim::Task<void> {
    co_await h.fusion(0).access_page(pg(2), false, 0);
    co_await h.fusion(1).access_page(pg(2), false, 0);
    // Node 1 upgrades to exclusive: node 0's copy must be invalidated.
    co_await h.fusion(1).access_page(pg(2), true, 0);
    co_await sim::delay_for(h.engine, 1.0);  // let the invalidation land
  }(h));
  h.engine.run();
  EXPECT_TRUE(h.cache(1).contains(pg(2), db::PageMode::kExclusive));
  EXPECT_FALSE(h.cache(0).resident(pg(2)));
}

TEST(Fusion, UpgradeOfResidentPageMovesNoData) {
  Harness h;
  sim::spawn([](Harness& h) -> sim::Task<void> {
    co_await h.fusion(0).access_page(pg(2), false, 0);
    co_await h.fusion(0).access_page(pg(2), true, 0);  // upgrade in place
  }(h));
  h.engine.run();
  EXPECT_TRUE(h.cache(0).contains(pg(2), db::PageMode::kExclusive));
  EXPECT_EQ(h.stats(0).remote_fetches.count(), 0u);
  EXPECT_EQ(h.stats(0).disk_reads.count(), 1u);  // only the original fill
}

TEST(Fusion, AllocatedPageSkipsDisk) {
  Harness h;
  sim::spawn([](Harness& h) -> sim::Task<void> {
    co_await h.fusion(0).access_page(pg(4), true, 0, /*allocate=*/true);
  }(h));
  h.engine.run();
  EXPECT_TRUE(h.cache(0).contains(pg(4), db::PageMode::kExclusive));
  EXPECT_EQ(h.stats(0).disk_reads.count(), 0u);
}

TEST(Fusion, RemoteDirectoryHomeIsConsulted) {
  Harness h;
  bool done = false;
  sim::spawn([](Harness& h, bool& ok) -> sim::Task<void> {
    // Page 3 homes at node 1; node 0 must RPC the directory there.
    co_await h.fusion(0).access_page(pg(3), false, 0);
    ok = true;
  }(h, done));
  h.engine.run();
  EXPECT_TRUE(done);
  EXPECT_GT(h.stats(0).ipc_control_sent.count(), 0u);
  EXPECT_EQ(h.nodes[1].directory->holder_count(pg(3)), 1);
}

TEST(Fusion, RemoteStorageHomeUsesIscsi) {
  Harness h;
  sim::spawn([](Harness& h) -> sim::Task<void> {
    // Directory home 0 (even page), storage home 1: disk read over iSCSI.
    co_await h.fusion(0).access_page(pg(2), false, /*storage_home=*/1);
  }(h));
  h.engine.run();
  EXPECT_EQ(h.stats(0).iscsi_reads.count(), 1u);
  EXPECT_GT(h.nodes[1].target->commands_served(), 0u);
}

TEST(Fusion, ConcurrentAccessesCoalesceIntoOneFetch) {
  Harness h;
  int completions = 0;
  for (int k = 0; k < 5; ++k) {
    sim::spawn([](Harness& h, int& done) -> sim::Task<void> {
      co_await h.fusion(0).access_page(pg(2), false, 0);
      ++done;
    }(h, completions));
  }
  h.engine.run();
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(h.stats(0).disk_reads.count(), 1u);  // one fill served everybody
}

TEST(Fusion, GlobalLocksRouteToHomeNode) {
  Harness h;
  bool granted_local = false, granted_remote = false, conflict = true;
  sim::spawn([](Harness& h, bool& gl, bool& gr, bool& cf) -> sim::Task<void> {
    const db::LockName odd = db::lock_name(pg(3), 0);   // home = node 1
    const db::LockName even = db::lock_name(pg(2), 0);  // home = node 0
    gl = co_await h.fusion(0).lock_try(even, 0, /*txn=*/1);
    gr = co_await h.fusion(0).lock_try(odd, 1, /*txn=*/1);
    cf = co_await h.fusion(1).lock_try(odd, 1, /*txn=*/2);  // conflicts
    co_await h.fusion(0).lock_release(odd, 1, 1);
    co_await h.fusion(0).lock_release(even, 0, 1);
  }(h, granted_local, granted_remote, conflict));
  h.engine.run();
  EXPECT_TRUE(granted_local);
  EXPECT_TRUE(granted_remote);
  EXPECT_FALSE(conflict);
  // After release, node 1 can take the lock.
  bool after = false;
  sim::spawn([](Harness& h, bool& ok) -> sim::Task<void> {
    ok = co_await h.fusion(1).lock_try(db::lock_name(pg(3), 0), 1, 3);
  }(h, after));
  h.engine.run();
  EXPECT_TRUE(after);
}

TEST(Fusion, RemoteLockWaitBlocksUntilRelease) {
  Harness h;
  const db::LockName name = db::lock_name(pg(3), 0);  // home = node 1
  sim::Time granted_at = -1.0;
  sim::spawn([](Harness& h, db::LockName name, sim::Time& t) -> sim::Task<void> {
    co_await h.fusion(1).lock_try(name, 1, 1);  // holder (local at node 1)
    co_await sim::delay_for(h.engine, 5.0);
    co_await h.fusion(1).lock_release(name, 1, 1);
  }(h, name, granted_at));
  sim::spawn([](Harness& h, db::LockName name, sim::Time& t) -> sim::Task<void> {
    co_await sim::delay_for(h.engine, 2.0);
    const bool ok = co_await h.fusion(0).lock_wait(name, 1, 2);  // remote wait
    if (ok) t = h.engine.now();
  }(h, name, granted_at));
  h.engine.run();
  // Harness setup ran to t=1.0; holder releases at ~6.0, waiter granted then.
  EXPECT_GT(granted_at, 5.9);
}

}  // namespace
}  // namespace dclue::cluster
