#include "cluster/directory.hpp"

#include <gtest/gtest.h>

namespace dclue::cluster {
namespace {

db::PageId pg(std::uint64_t n) {
  return db::make_page_id(db::TableId::kCustomer, false, n);
}

TEST(Directory, FirstLookupHasNoSupplier) {
  DirectoryService dir;
  auto r = dir.lookup(pg(1), 0, false);
  EXPECT_FALSE(r.has_supplier);
  EXPECT_TRUE(r.invalidate.empty());
  EXPECT_EQ(dir.holder_count(pg(1)), 1);  // requester registered in-flight
}

TEST(Directory, SecondNodeIsDirectedToFirstHolder) {
  DirectoryService dir;
  dir.lookup(pg(1), 0, false);
  auto r = dir.lookup(pg(1), 1, false);
  EXPECT_TRUE(r.has_supplier);
  EXPECT_EQ(r.supplier, 0);
  EXPECT_EQ(dir.holder_count(pg(1)), 2);
}

TEST(Directory, RequesterIsNeverItsOwnSupplier) {
  DirectoryService dir;
  dir.lookup(pg(1), 0, false);
  auto r = dir.lookup(pg(1), 0, false);
  EXPECT_FALSE(r.has_supplier);
}

TEST(Directory, ExclusiveRequestInvalidatesOtherHolders) {
  DirectoryService dir;
  dir.lookup(pg(1), 0, false);
  dir.lookup(pg(1), 1, false);
  dir.lookup(pg(1), 2, false);
  auto r = dir.lookup(pg(1), 2, true);
  EXPECT_EQ(r.invalidate.size(), 2u);
  EXPECT_EQ(dir.holder_count(pg(1)), 1);  // only the new exclusive owner
}

TEST(Directory, ExclusiveOwnerIsPreferredSupplier) {
  DirectoryService dir;
  dir.lookup(pg(1), 0, true);  // 0 becomes exclusive owner
  auto r = dir.lookup(pg(1), 1, false);
  EXPECT_TRUE(r.has_supplier);
  EXPECT_EQ(r.supplier, 0);
}

TEST(Directory, SharedRequestDemotesExclusiveOwner) {
  DirectoryService dir;
  dir.lookup(pg(1), 0, true);
  dir.lookup(pg(1), 1, false);
  // A later exclusive request by a third node must invalidate both.
  auto r = dir.lookup(pg(1), 2, true);
  EXPECT_EQ(r.invalidate.size(), 2u);
}

TEST(Directory, EvictionRemovesHolderAndEmptyEntry) {
  DirectoryService dir;
  dir.lookup(pg(1), 0, false);
  dir.lookup(pg(1), 1, false);
  dir.evict(pg(1), 0);
  EXPECT_EQ(dir.holder_count(pg(1)), 1);
  dir.evict(pg(1), 1);
  EXPECT_EQ(dir.holder_count(pg(1)), 0);
  EXPECT_EQ(dir.entries(), 0u);
}

TEST(Directory, ConfirmIsIdempotent) {
  DirectoryService dir;
  dir.lookup(pg(1), 0, false);
  dir.confirm(pg(1), 0);
  dir.confirm(pg(1), 0);
  EXPECT_EQ(dir.holder_count(pg(1)), 1);
}

TEST(Directory, DistinctPagesAreIndependent) {
  DirectoryService dir;
  dir.lookup(pg(1), 0, false);
  auto r = dir.lookup(pg(2), 1, false);
  EXPECT_FALSE(r.has_supplier);
  EXPECT_EQ(dir.entries(), 2u);
}

}  // namespace
}  // namespace dclue::cluster
