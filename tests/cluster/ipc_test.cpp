#include "cluster/ipc.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace dclue::cluster {
namespace {

net::CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

/// Two IPC services connected over a real fabric.
struct Harness {
  sim::Engine engine;
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<net::TcpStack> stack_a;
  std::unique_ptr<net::TcpStack> stack_b;
  core::NodeStats stats_a, stats_b;
  std::unique_ptr<IpcService> a;
  std::unique_ptr<IpcService> b;

  Harness() {
    net::TopologyParams tp;
    tp.servers_per_lata = 2;
    topo = std::make_unique<net::Topology>(engine, tp);
    stack_a = std::make_unique<net::TcpStack>(engine, topo->server_nic(0),
                                              net::TcpParams{}, net::TcpCostModel{},
                                              free_cpu());
    stack_b = std::make_unique<net::TcpStack>(engine, topo->server_nic(1),
                                              net::TcpParams{}, net::TcpCostModel{},
                                              free_cpu());
    a = std::make_unique<IpcService>(engine, 0, stats_a, 0.0, free_cpu());
    b = std::make_unique<IpcService>(engine, 1, stats_b, 0.0, free_cpu());
    auto& listener = stack_b->listen(7000);
    sim::spawn([](Harness& h, net::TcpListener& l) -> sim::Task<void> {
      auto conn = co_await l.accept();
      h.b->attach_peer(0, std::make_shared<proto::MsgChannel>(conn));
    }(*this, listener));
    auto conn = stack_a->connect(topo->server_nic(1).address(), 7000);
    a->attach_peer(1, std::make_shared<proto::MsgChannel>(conn));
  }
};

struct EchoBody {
  int value;
};

TEST(IpcService, ControlRpcRoundTrip) {
  Harness h;
  h.b->set_handler(kDirRequest, [&h](Envelope env) {
    auto body = std::static_pointer_cast<EchoBody>(env.body);
    auto reply = std::make_shared<EchoBody>(EchoBody{body->value * 2});
    h.b->send_control(env.src_node, kDirReply, reply, env.req_id);
  });
  int result = 0;
  sim::spawn([](Harness& h, int& out) -> sim::Task<void> {
    auto body = std::make_shared<EchoBody>(EchoBody{21});
    auto reply = co_await h.a->rpc(1, kDirRequest, body);
    out = std::static_pointer_cast<EchoBody>(reply)->value;
  }(h, result));
  h.engine.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(h.stats_a.ipc_control_sent.count(), 1u);
  EXPECT_EQ(h.stats_b.ipc_control_sent.count(), 1u);
}

TEST(IpcService, OnewayControlDelivered) {
  Harness h;
  int got = 0;
  h.b->set_handler(kDirEvict, [&got](Envelope env) {
    got = std::static_pointer_cast<EchoBody>(env.body)->value;
  });
  auto body = std::make_shared<EchoBody>(EchoBody{7});
  h.a->send_control(1, kDirEvict, body);
  h.engine.run();
  EXPECT_EQ(got, 7);
}

TEST(IpcService, DataMessageCountsSeparately) {
  Harness h;
  h.b->set_handler(kDirEvict, [](Envelope) {});
  auto body = std::make_shared<EchoBody>(EchoBody{1});
  h.a->send_data(1, kBlockTransfer, kBlockBaseBytes + 1024, body, 99);
  h.engine.run();
  EXPECT_EQ(h.stats_a.ipc_data_sent.count(), 1u);
  EXPECT_EQ(h.stats_a.ipc_control_sent.count(), 0u);
  EXPECT_GE(h.stats_a.ipc_data_bytes.count(),
            static_cast<std::uint64_t>(kBlockBaseBytes));
}

TEST(IpcService, EarlyReplyBeforeAwaitIsNotLost) {
  // 3-way exchanges can deliver the correlated reply before the requester
  // starts waiting for it.
  Harness h;
  const std::uint64_t req = h.a->new_req_id();
  h.b->set_handler(kDirEvict, [&h, req](Envelope) {
    auto body = std::make_shared<EchoBody>(EchoBody{5});
    h.b->send_data(0, kBlockTransfer, kBlockBaseBytes, body, req);
  });
  int got = 0;
  sim::spawn([](Harness& h, std::uint64_t req, int& out) -> sim::Task<void> {
    auto trigger = std::make_shared<EchoBody>(EchoBody{0});
    h.a->send_control(1, kDirEvict, trigger);
    // Wait long enough that the reply has certainly arrived already.
    co_await sim::delay_for(h.engine, 1.0);
    auto reply = co_await h.a->await_reply(req);
    out = std::static_pointer_cast<EchoBody>(reply)->value;
  }(h, req, got));
  h.engine.run();
  EXPECT_EQ(got, 5);
}

TEST(IpcService, ControlDelayIsMeasuredAtReceiver) {
  Harness h;
  h.b->set_handler(kDirEvict, [](Envelope) {});
  auto body = std::make_shared<EchoBody>(EchoBody{1});
  h.a->send_control(1, kDirEvict, body);
  h.engine.run();
  EXPECT_EQ(h.stats_b.control_msg_delay.count(), 1u);
  EXPECT_GT(h.stats_b.control_msg_delay.mean(), 0.0);
}

TEST(IpcService, ConcurrentRpcsCorrelateIndependently) {
  Harness h;
  h.b->set_handler(kDirRequest, [&h](Envelope env) {
    auto body = std::static_pointer_cast<EchoBody>(env.body);
    auto reply = std::make_shared<EchoBody>(EchoBody{body->value + 100});
    h.b->send_control(env.src_node, kDirReply, reply, env.req_id);
  });
  std::vector<int> results(8, 0);
  for (int i = 0; i < 8; ++i) {
    sim::spawn([](Harness& h, std::vector<int>& out, int i) -> sim::Task<void> {
      auto body = std::make_shared<EchoBody>(EchoBody{i});
      auto reply = co_await h.a->rpc(1, kDirRequest, body);
      out[static_cast<std::size_t>(i)] =
          std::static_pointer_cast<EchoBody>(reply)->value;
    }(h, results, i));
  }
  h.engine.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], 100 + i);
}

}  // namespace
}  // namespace dclue::cluster
