/// Serial vs parallel sweep determinism: a sweep point is a pure function of
/// its ClusterConfig, so running the same grid on one worker and on several
/// must produce bit-identical per-point metrics. This is the property that
/// lets REPRO_JOBS>1 reproduce the paper's figures exactly.

#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"

namespace dclue::core {
namespace {

std::vector<ClusterConfig> small_grid() {
  std::vector<ClusterConfig> cfgs;
  for (int nodes : {1, 2, 3}) {
    for (double affinity : {1.0, 0.5}) {
      ClusterConfig cfg;
      cfg.nodes = nodes;
      cfg.affinity = affinity;
      cfg.warmup = 1.0;
      cfg.measure = 3.0;
      cfg.seed = 11;
      cfgs.push_back(cfg);
    }
  }
  return cfgs;
}

#define EXPECT_FIELD_EQ(field) \
  EXPECT_EQ(a.field, b.field) << "point " << i << " diverged in " #field

void expect_identical(const RunReport& a, const RunReport& b, std::size_t i) {
  EXPECT_FIELD_EQ(nodes);
  EXPECT_FIELD_EQ(affinity);
  EXPECT_FIELD_EQ(measure_seconds);
  EXPECT_FIELD_EQ(tpmc);
  EXPECT_FIELD_EQ(txn_rate);
  EXPECT_FIELD_EQ(txns);
  EXPECT_FIELD_EQ(ipc_control_per_txn);
  EXPECT_FIELD_EQ(ipc_data_per_txn);
  EXPECT_FIELD_EQ(control_msg_delay_ms);
  EXPECT_FIELD_EQ(lock_waits_per_txn);
  EXPECT_FIELD_EQ(lock_wait_time_ms);
  EXPECT_FIELD_EQ(lock_failures_per_txn);
  EXPECT_FIELD_EQ(buffer_hit_ratio);
  EXPECT_FIELD_EQ(disk_reads_per_txn);
  EXPECT_FIELD_EQ(remote_fetch_per_txn);
  EXPECT_FIELD_EQ(avg_active_threads);
  EXPECT_FIELD_EQ(avg_context_switch_cycles);
  EXPECT_FIELD_EQ(avg_cpi);
  EXPECT_FIELD_EQ(cpu_utilization);
  EXPECT_FIELD_EQ(inter_lata_mbps);
  EXPECT_FIELD_EQ(fabric_drops);
  EXPECT_FIELD_EQ(abort_rate);
  EXPECT_FIELD_EQ(txn_ms);
  EXPECT_FIELD_EQ(txn_phase1_ms);
  EXPECT_FIELD_EQ(txn_lock_ms);
  EXPECT_FIELD_EQ(txn_log_ms);
  EXPECT_FIELD_EQ(txn_apply_ms);
  EXPECT_FIELD_EQ(ftp_carried_mbps);
  EXPECT_FIELD_EQ(business_txns);
  EXPECT_FIELD_EQ(admission_drops);
  EXPECT_FIELD_EQ(client_conn_failures);
}

#undef EXPECT_FIELD_EQ

TEST(SweepDeterminism, ParallelMatchesSerialBitForBit) {
  const std::vector<ClusterConfig> cfgs = small_grid();
  const std::vector<RunReport> serial = run_experiments(cfgs, /*jobs=*/1);
  const std::vector<RunReport> parallel = run_experiments(cfgs, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i], i);
  }
}

TEST(SweepDeterminism, FaultedPointMatchesSerialBitForBit) {
  // A fault plan is part of the point's config: link flaps, loss, a crash
  // and disk spikes must replay identically on a sweep worker thread.
  std::vector<ClusterConfig> cfgs;
  for (std::uint64_t seed : {31, 32}) {
    ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.affinity = 0.8;
    cfg.warehouses_override = 8;
    cfg.customers_per_district = 60;
    cfg.items = 200;
    cfg.terminals_per_node = 8;
    cfg.warmup = 1.0;
    cfg.measure = 6.0;
    cfg.seed = seed;
    cfg.fault_spec = "flaps=2,flap_down=0.2,drop=0.02,crashes=1,crash_down=1.5";
    cfgs.push_back(cfg);
  }
  const std::vector<RunReport> serial = run_experiments(cfgs, /*jobs=*/1);
  const std::vector<RunReport> parallel = run_experiments(cfgs, /*jobs=*/2);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i], i);
  }
  // The two seeds actually produced different faulted runs.
  EXPECT_NE(serial[0].txns, serial[1].txns);
}

TEST(SweepDeterminism, RepeatedParallelRunsAgree) {
  const std::vector<ClusterConfig> cfgs = small_grid();
  const std::vector<RunReport> first = run_experiments(cfgs, /*jobs=*/3);
  const std::vector<RunReport> second = run_experiments(cfgs, /*jobs=*/3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_identical(first[i], second[i], i);
  }
}

}  // namespace
}  // namespace dclue::core
