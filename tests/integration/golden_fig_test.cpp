/// Golden-output regression test: a miniature Fig-6-style scaling point (2
/// nodes, affinity 0.8) must reproduce the committed fixture byte for byte.
/// The datapath and engine refactors promise "memory behavior only, event
/// ordering untouched" — this test is what turns a silently shifted figure
/// into a CI failure.
///
/// To regenerate after an *intentional* model change, run with
/// GOLDEN_UPDATE=1 and paste the block it prints into
/// golden_fig06_fixture.inc (keep the raw-string delimiters).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hpp"

namespace dclue::core {
namespace {

/// Every RunReport field, formatted with round-trip precision (%.17g): any
/// double that differs in even the last bit changes the text.
std::string format_report(const RunReport& r) {
  std::string out;
  char buf[128];
  auto add = [&](const char* key, double v) {
    std::snprintf(buf, sizeof buf, "%s=%.17g\n", key, v);
    out += buf;
  };
  auto add_u = [&](const char* key, std::uint64_t v) {
    std::snprintf(buf, sizeof buf, "%s=%llu\n", key,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  add("nodes", r.nodes);
  add("affinity", r.affinity);
  add("measure_seconds", r.measure_seconds);
  add("tpmc", r.tpmc);
  add("txn_rate", r.txn_rate);
  add("txns", r.txns);
  add("ipc_control_per_txn", r.ipc_control_per_txn);
  add("ipc_data_per_txn", r.ipc_data_per_txn);
  add("control_msg_delay_ms", r.control_msg_delay_ms);
  add("lock_waits_per_txn", r.lock_waits_per_txn);
  add("lock_wait_time_ms", r.lock_wait_time_ms);
  add("lock_failures_per_txn", r.lock_failures_per_txn);
  add("buffer_hit_ratio", r.buffer_hit_ratio);
  add("disk_reads_per_txn", r.disk_reads_per_txn);
  add("remote_fetch_per_txn", r.remote_fetch_per_txn);
  add("avg_active_threads", r.avg_active_threads);
  add("avg_context_switch_cycles", r.avg_context_switch_cycles);
  add("avg_cpi", r.avg_cpi);
  add("cpu_utilization", r.cpu_utilization);
  add("inter_lata_mbps", r.inter_lata_mbps);
  add_u("fabric_drops", r.fabric_drops);
  add("abort_rate", r.abort_rate);
  add("txn_ms", r.txn_ms);
  add("txn_phase1_ms", r.txn_phase1_ms);
  add("txn_lock_ms", r.txn_lock_ms);
  add("txn_log_ms", r.txn_log_ms);
  add("txn_apply_ms", r.txn_apply_ms);
  add("ftp_carried_mbps", r.ftp_carried_mbps);
  add("business_txns", r.business_txns);
  add_u("admission_drops", r.admission_drops);
  add_u("client_conn_failures", r.client_conn_failures);
  return out;
}

constexpr const char* kFixture =
#include "golden_fig06_fixture.inc"
    ;  // NOLINT

TEST(GoldenFig, TwoNodeScalingPointIsBitIdentical) {
  // A fixed mini fig06 point: every field is pinned explicitly so the run is
  // independent of REPRO_FAST and any default_config() evolution.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.affinity = 0.8;
  cfg.seed = 7;
  cfg.warmup = 1.0;
  cfg.measure = 4.0;

  const RunReport r = run_experiment(cfg);
  const std::string got = format_report(r);
  if (std::getenv("GOLDEN_UPDATE") != nullptr) {
    std::printf("--- GOLDEN_UPDATE: paste into golden_fig06_fixture.inc ---\n"
                "R\"golden(\n%s)golden\"\n"
                "--- end ---\n",
                got.c_str());
  }
  EXPECT_EQ(std::string(kFixture), std::string("\n") + got)
      << "metrics block diverged from the committed fixture; if the model "
         "change is intentional, regenerate with GOLDEN_UPDATE=1";
}

}  // namespace
}  // namespace dclue::core
