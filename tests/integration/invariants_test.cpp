/// End-to-end database invariants: after a real clustered run, the TPC-C
/// tables must reflect exactly the transactions that committed — the point
/// of executing *real* queries instead of sampling cost distributions.

#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace dclue::core {
namespace {

ClusterConfig tiny(int nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.affinity = 0.8;
  cfg.warehouses_override = 4 * nodes;
  cfg.customers_per_district = 60;
  cfg.items = 200;
  cfg.terminals_per_node = 12;
  cfg.warmup = 2.0;
  cfg.measure = 12.0;
  cfg.seed = 99;
  return cfg;
}

/// One shared run for all invariant checks (Cluster is neither copyable nor
/// movable, so it is built in place).
struct RunOnce {
  Cluster cluster;
  RunReport report;
  RunOnce() : cluster(tiny(2)) { report = cluster.run(); }
};

RunOnce& shared_run() {
  static RunOnce run;
  return run;
}

TEST(DatabaseInvariants, PaymentsAccumulateInWarehouseYtd) {
  auto& run = shared_run();
  ASSERT_GT(run.report.txns, 50.0);
  auto& db = run.cluster.database();
  double total_ytd = 0.0;
  for (std::int64_t w = 1; w <= db.scale().warehouses; ++w) {
    total_ytd += db.warehouse.find(db::key_w(w))->ytd;
  }
  // Initial 300000 per warehouse; committed payments add on top.
  EXPECT_GT(total_ytd, 300'000.0 * static_cast<double>(db.scale().warehouses));
}

TEST(DatabaseInvariants, DistrictOrderCountersMatchOrderRows) {
  auto& run = shared_run();
  auto& db = run.cluster.database();
  // For every district, orders with id < next_o_id must exist (no holes at
  // the tail beyond the allocation counter).
  for (std::int64_t w = 1; w <= db.scale().warehouses; ++w) {
    for (std::int64_t d = 1; d <= db.scale().districts_per_warehouse; ++d) {
      const auto* dist = db.district.find(db::key_wd(w, d));
      ASSERT_NE(dist, nullptr);
      const std::int64_t last = dist->next_o_id - 1;
      if (last > db.scale().initial_orders_per_district) {
        EXPECT_NE(db.order.find(db::key_wdo(w, d, last)), nullptr)
            << "w=" << w << " d=" << d << " o=" << last;
      }
    }
  }
}

TEST(DatabaseInvariants, OrderLinesMatchTheirOrderHeader) {
  auto& run = shared_run();
  auto& db = run.cluster.database();
  int checked = 0;
  for (std::int64_t w = 1; w <= db.scale().warehouses && checked < 50; ++w) {
    for (std::int64_t d = 1; d <= 10 && checked < 50; ++d) {
      const auto* dist = db.district.find(db::key_wd(w, d));
      for (std::int64_t o = db.scale().initial_orders_per_district + 1;
           o < dist->next_o_id && checked < 50; ++o) {
        const auto* order = db.order.find(db::key_wdo(w, d, o));
        if (!order) continue;  // allocation raced an abort
        for (int ol = 1; ol <= order->ol_cnt; ++ol) {
          ASSERT_NE(db.order_line.find(db::key_wdool(w, d, o, ol)), nullptr)
              << "w=" << w << " d=" << d << " o=" << o << " ol=" << ol;
        }
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(DatabaseInvariants, DeliveredOrdersLeaveTheNewOrderTable) {
  auto& run = shared_run();
  auto& db = run.cluster.database();
  // Every order with a carrier assigned must no longer be in new_order.
  int delivered = 0;
  for (auto it = db.order.lower_bound(0); it.valid(); it.next()) {
    const auto& row = db.order.row(it.value());
    if (row.carrier_id == 5) {  // delivery transaction's marker
      EXPECT_EQ(db.new_order.find(it.key()), nullptr);
      ++delivered;
    }
  }
  EXPECT_GT(delivered, 0) << "no delivery transaction committed in the run";
}

TEST(DatabaseInvariants, StockNeverGoesNegative) {
  auto& run = shared_run();
  auto& db = run.cluster.database();
  for (auto it = db.stock.lower_bound(0); it.valid(); it.next()) {
    EXPECT_GE(db.stock.row(it.value()).quantity, 0);
  }
}

TEST(DatabaseInvariants, CustomerPaymentCountsOnlyGrow) {
  auto& run = shared_run();
  auto& db = run.cluster.database();
  std::int64_t total_payments = 0;
  for (auto it = db.customer.lower_bound(0); it.valid(); it.next()) {
    const auto& c = db.customer.row(it.value());
    EXPECT_GE(c.payment_cnt, 1);  // initialized to 1 by population
    total_payments += c.payment_cnt;
  }
  const auto customers = static_cast<std::int64_t>(db.customer.size());
  EXPECT_GT(total_payments, customers);  // some payments committed
}

TEST(DatabaseInvariants, HistoryGrowsWithPayments) {
  auto& run = shared_run();
  auto& db = run.cluster.database();
  EXPECT_GT(db.history.size(), 0u);
  EXPECT_EQ(db.history.size(), db.next_history_id);
}

}  // namespace
}  // namespace dclue::core
