/// Randomized fault-injection invariant harness. Each case runs a real
/// clustered TPC-C workload under a seeded FaultPlan (link flaps, loss,
/// corruption, added latency/jitter, a node crash + recovery, disk latency
/// spikes and IO errors) and asserts the properties the fault subsystem
/// guarantees: the cluster keeps committing, database invariants hold (no
/// torn writes survive into the tables), no lock stays held by a dead
/// node's transactions, the engine quiesces, and the whole schedule —
/// faults, recoveries and results — reproduces bit-identically per seed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/fault_injector.hpp"
#include "core/recovery.hpp"
#include "core/report.hpp"
#include "sim/fault/fault.hpp"

namespace dclue::core {
namespace {

ClusterConfig faulted(int nodes, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.affinity = 0.8;
  cfg.warehouses_override = 4 * nodes;
  cfg.customers_per_district = 60;
  cfg.items = 200;
  cfg.terminals_per_node = 12;
  cfg.warmup = 2.0;
  cfg.measure = 14.0;
  cfg.seed = seed;
  cfg.fault_spec =
      "flaps=2,flap_down=0.3,drop=0.02,corrupt=0.005,latency=0.01,"
      "jitter=0.005,crashes=1,crash_down=2.0,disk_spikes=1,disk_factor=6,"
      "disk_err=0.02";
  return cfg;
}

/// Redo replays the whole log since the last checkpoint, so an uncheckpointed
/// run makes recovery arbitrarily slow; real deployments checkpoint, and so
/// do these tests. After the measurement window ends, grant recovery a
/// bounded grace period to finish.
void drain_until_all_alive(Cluster& cluster, sim::Duration grace) {
  const sim::Time deadline = cluster.engine().now() + grace;
  auto all_alive = [&] {
    for (int i = 0; i < cluster.config().nodes; ++i) {
      if (!cluster.node_alive(i)) return false;
    }
    return true;
  };
  while (!all_alive() && cluster.engine().now() < deadline) {
    cluster.engine().run_until(cluster.engine().now() + 0.5);
  }
}

void check_database_invariants(Cluster& cluster) {
  auto& db = cluster.database();
  // Stock never negative (a torn new-order apply would break this).
  for (auto it = db.stock.lower_bound(0); it.valid(); it.next()) {
    ASSERT_GE(db.stock.row(it.value()).quantity, 0);
  }
  // Every committed order header has all its order lines — commits are
  // atomic even when the committing node crashed moments later.
  int checked = 0;
  for (std::int64_t w = 1; w <= db.scale().warehouses && checked < 40; ++w) {
    for (std::int64_t d = 1; d <= 10 && checked < 40; ++d) {
      const auto* dist = db.district.find(db::key_wd(w, d));
      ASSERT_NE(dist, nullptr);
      for (std::int64_t o = db.scale().initial_orders_per_district + 1;
           o < dist->next_o_id && checked < 40; ++o) {
        const auto* order = db.order.find(db::key_wdo(w, d, o));
        if (!order) continue;  // allocation raced an abort
        for (int ol = 1; ol <= order->ol_cnt; ++ol) {
          ASSERT_NE(db.order_line.find(db::key_wdool(w, d, o, ol)), nullptr)
              << "w=" << w << " d=" << d << " o=" << o << " ol=" << ol;
        }
        ++checked;
      }
    }
  }
  // History rows are allocated under the history id counter: equality means
  // no insert was half-applied.
  EXPECT_EQ(db.history.size(), db.next_history_id);
}

/// No lock anywhere in the cluster is held by a transaction minted on
/// \p dead (tokens are seq * num_nodes + node_id).
std::size_t locks_held_by(Cluster& cluster, int dead) {
  const auto num = static_cast<db::TxnToken>(cluster.config().nodes);
  std::size_t held = 0;
  for (int i = 0; i < cluster.config().nodes; ++i) {
    held += cluster.node(i).locks().held_matching([num, dead](db::TxnToken t) {
      return static_cast<int>(t % num) == dead;
    });
  }
  return held;
}

TEST(FaultInvariants, ManualCrashPurgesLocksAndRecovers) {
  ClusterConfig cfg = faulted(2, 7);
  cfg.fault_spec.clear();  // drive the crash by hand
  Cluster cluster(cfg);
  CheckpointManager checkpoints(cluster, 1.0);
  checkpoints.start();

  std::size_t held_after_crash = 999;
  std::size_t dir_entries_after_crash = 999;
  bool dead_during_outage = false;
  cluster.engine().at(6.0, [&] {
    cluster.crash_node(1);
    held_after_crash = locks_held_by(cluster, 1);
    dir_entries_after_crash = cluster.node(1).directory().entries();
  });
  cluster.engine().at(7.0, [&] { dead_during_outage = !cluster.node_alive(1); });
  cluster.engine().at(8.0, [&] { cluster.restart_node(1); });

  RunReport report = cluster.run();
  drain_until_all_alive(cluster, 10.0);

  EXPECT_EQ(held_after_crash, 0u);
  EXPECT_EQ(dir_entries_after_crash, 0u);
  EXPECT_TRUE(dead_during_outage);
  EXPECT_EQ(cluster.crashes(), 1u);
  EXPECT_EQ(cluster.restarts(), 1u);
  EXPECT_EQ(cluster.recoveries(), 1u);
  EXPECT_GT(cluster.recovery_seconds(), 0.0);
  EXPECT_GT(cluster.locks_purged() + cluster.cache_invalidated(), 0u);
  // Redo finished and the node rejoined: it is alive and the cluster kept
  // committing through the outage.
  EXPECT_TRUE(cluster.node_alive(1));
  EXPECT_GT(report.txns, 50.0);
  check_database_invariants(cluster);
}

TEST(FaultInvariants, SeededPlansKeepInvariants) {
  const std::uint64_t seeds[] = {11, 12, 13, 14, 15, 16, 17, 18};
  for (std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Cluster cluster(faulted(2, seed));
    ASSERT_NE(cluster.fault_injector(), nullptr);
    CheckpointManager checkpoints(cluster, 1.0);
    checkpoints.start();
    RunReport report = cluster.run();
    drain_until_all_alive(cluster, 10.0);

    // Every scheduled fault fired.
    const auto& plan = cluster.fault_injector()->plan();
    ASSERT_FALSE(plan.empty());
    EXPECT_EQ(cluster.fault_injector()->injected(), plan.events.size());

    // The cluster made progress despite the faults.
    EXPECT_GT(report.txns, 20.0);

    // The crash ran its full lifecycle and the node came back.
    EXPECT_EQ(cluster.crashes(), 1u);
    EXPECT_EQ(cluster.restarts(), 1u);
    EXPECT_EQ(cluster.recoveries(), 1u);
    EXPECT_TRUE(cluster.node_alive(0));
    EXPECT_TRUE(cluster.node_alive(1));

    // Link degradation visibly exercised the loss/corruption paths; every
    // corrupted frame died at an FCS check, never in a byte stream (the
    // tables below would be garbage otherwise).
    std::uint64_t drops = 0, corrupts = 0;
    for (int i = 0; i < cluster.config().nodes; ++i) {
      drops += cluster.topology().server_uplink(i).fault_drops() +
               cluster.topology().server_downlink(i).fault_drops();
      corrupts += cluster.topology().server_uplink(i).fault_corrupts() +
                  cluster.topology().server_downlink(i).fault_corrupts();
    }
    EXPECT_GT(drops, 0u);
    EXPECT_GT(corrupts, 0u);

    // No lock is left held by any transaction of a node that was ever dead
    // while that node was down; by end-of-run both are alive, so just check
    // the tables are internally consistent.
    check_database_invariants(cluster);

    // The engine quiesced: what remains pending is the standing machinery
    // (terminal think timers, GC loop, TCP timers), not a runaway cascade.
    EXPECT_LT(cluster.engine().events_pending(), 100'000u);
  }
}

TEST(FaultInvariants, SameSeedIsBitIdentical) {
  auto run_once = [](std::string* json, std::uint64_t* fingerprint) {
    Cluster cluster(faulted(2, 21));
    RunReport report = cluster.run();
    *fingerprint = cluster.fault_injector()->plan().fingerprint();
    ReportPoint point;
    point.axis_value = 0.0;
    point.config = cluster.config();
    point.report = report;
    *json = run_report_json("fault_repro", "repro", "seed", {point});
  };
  std::string a, b;
  std::uint64_t fp_a = 0, fp_b = 0;
  run_once(&a, &fp_a);
  run_once(&b, &fp_b);
  EXPECT_EQ(fp_a, fp_b);
  EXPECT_EQ(a, b) << "faulted run is not reproducible";
}

TEST(FaultInvariants, PlanGenerationIsDeterministic) {
  sim::fault::FaultSpec spec = sim::fault::parse_fault_spec(
      "flaps=3,drop=0.01,crashes=2,disk_spikes=2,start=5,span=20");
  sim::RngFactory f1(42), f2(42);
  sim::Rng r1 = f1.stream("fault.plan");
  sim::Rng r2 = f2.stream("fault.plan");
  const auto p1 = sim::fault::generate_plan(spec, 4, r1);
  const auto p2 = sim::fault::generate_plan(spec, 4, r2);
  ASSERT_EQ(p1.events.size(), p2.events.size());
  EXPECT_EQ(p1.fingerprint(), p2.fingerprint());
  // Events are time-ordered and inside the window.
  for (std::size_t i = 1; i < p1.events.size(); ++i) {
    EXPECT_LE(p1.events[i - 1].at, p1.events[i].at);
  }
  for (const auto& e : p1.events) {
    EXPECT_GE(e.at, 5.0);
    EXPECT_LE(e.at, 5.0 + 20.0 + 10.0);  // crash_down tail may overhang
  }
  // A different seed produces a different schedule.
  sim::RngFactory f3(43);
  sim::Rng r3 = f3.stream("fault.plan");
  EXPECT_NE(sim::fault::generate_plan(spec, 4, r3).fingerprint(),
            p1.fingerprint());
}

}  // namespace
}  // namespace dclue::core
