/// End-to-end checks of the fabric QoS configuration space (the §4 future
/// work machinery): WFQ scheduling, WRED, and AF-class policing wired all
/// the way through ClusterConfig into a running cluster.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace dclue::core {
namespace {

ClusterConfig tiny_qos() {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.affinity = 0.8;
  cfg.warehouses_override = 8;
  cfg.customers_per_district = 60;
  cfg.items = 200;
  cfg.terminals_per_node = 12;
  cfg.warmup = 2.0;
  cfg.measure = 10.0;
  cfg.seed = 5;
  cfg.ftp.offered_load_mbps = 80.0;
  cfg.ftp.high_priority = true;
  return cfg;
}

TEST(QosConfig, WfqClusterRunsAndCarriesBothTraffics) {
  ClusterConfig cfg = tiny_qos();
  cfg.qos.scheduler = net::QueueScheduler::kWfq;
  RunReport r = run_experiment(cfg);
  EXPECT_GT(r.txns, 0.0);
  EXPECT_GT(r.ftp_carried_mbps, 10.0);
}

TEST(QosConfig, PolicingCapsTheFtpClass) {
  ClusterConfig cfg = tiny_qos();
  cfg.ftp.offered_load_mbps = 200.0;
  cfg.qos.af_police_mbps = 50.0;
  RunReport r = run_experiment(cfg);
  EXPECT_GT(r.txns, 0.0);
  // Carried FTP is bounded by the policer (allow burst slack).
  EXPECT_LT(r.ftp_carried_mbps, 90.0);
  ClusterConfig open = tiny_qos();
  open.ftp.offered_load_mbps = 200.0;
  RunReport r2 = run_experiment(open);
  EXPECT_GT(r2.ftp_carried_mbps, r.ftp_carried_mbps);
}

TEST(QosConfig, WredClusterRunsCleanly) {
  ClusterConfig cfg = tiny_qos();
  cfg.qos.wred = true;
  cfg.ecn_marking = true;
  RunReport r = run_experiment(cfg);
  EXPECT_GT(r.txns, 0.0);
}

TEST(QosConfig, EcnMarkingTogglesDefaultTailDrop) {
  // Both modes must complete; with marking on, senders throttle before
  // queues overflow, so drops never exceed the tail-drop run's.
  ClusterConfig td = tiny_qos();
  RunReport r_td = run_experiment(td);
  ClusterConfig ecn = tiny_qos();
  ecn.ecn_marking = true;
  RunReport r_ecn = run_experiment(ecn);
  EXPECT_GT(r_td.txns, 0.0);
  EXPECT_GT(r_ecn.txns, 0.0);
  EXPECT_LE(r_ecn.fabric_drops, r_td.fabric_drops + 5);
}

}  // namespace
}  // namespace dclue::core
