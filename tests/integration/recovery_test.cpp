#include "core/recovery.hpp"

#include <gtest/gtest.h>

namespace dclue::core {
namespace {

ClusterConfig tiny(int nodes, bool central) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.affinity = 0.8;
  cfg.central_logging = central;
  cfg.warehouses_override = 4 * nodes;
  cfg.customers_per_district = 60;
  cfg.items = 200;
  cfg.terminals_per_node = 12;
  cfg.warmup = 2.0;
  cfg.measure = 10.0;
  cfg.seed = 42;
  return cfg;
}

RecoveryReport recover(Cluster& cluster, int failed) {
  RecoveryReport rec;
  bool done = false;
  sim::spawn([](Cluster& c, int failed, RecoveryReport& out,
                bool& done) -> sim::Task<void> {
    out = co_await run_recovery(c, failed);
    done = true;
  }(cluster, failed, rec, done));
  for (int step = 0; step < 100 && !done; ++step) {
    cluster.engine().run_until(cluster.engine().now() + 25.0);
  }
  EXPECT_TRUE(done);
  return rec;
}

TEST(Recovery, CheckpointsRunAndBoundRedoLog) {
  ClusterConfig cfg = tiny(2, false);
  Cluster cluster(cfg);
  CheckpointManager ckpt(cluster, 3.0);
  ckpt.start();
  RunReport r = cluster.run();
  ASSERT_GT(r.txns, 0.0);
  EXPECT_GE(ckpt.checkpoints_taken(), 2u);
  for (int i = 0; i < cfg.nodes; ++i) {
    auto& log = cluster.node(i).log_manager();
    EXPECT_LT(log.bytes_since_checkpoint(), log.bytes_logged());
  }
}

TEST(Recovery, LocalLoggingRecoveryHasAllPhases) {
  ClusterConfig cfg = tiny(3, false);
  Cluster cluster(cfg);
  RunReport r = cluster.run();
  ASSERT_GT(r.txns, 0.0);
  RecoveryReport rec = recover(cluster, 1);
  EXPECT_GT(rec.log_bytes, 0);
  EXPECT_GT(rec.records, 0u);
  EXPECT_GT(rec.gather_seconds, 0.0);
  EXPECT_GT(rec.merge_seconds, 0.0);  // k-way timestamp merge
  EXPECT_GT(rec.redo_seconds, 0.0);
  EXPECT_GE(rec.total_seconds,
            rec.gather_seconds + rec.merge_seconds + rec.redo_seconds - 1e-9);
}

TEST(Recovery, CentralLoggingSkipsTheMerge) {
  ClusterConfig cfg = tiny(3, true);
  Cluster cluster(cfg);
  RunReport r = cluster.run();
  ASSERT_GT(r.txns, 0.0);
  RecoveryReport rec = recover(cluster, 1);
  EXPECT_GT(rec.log_bytes, 0);
  EXPECT_EQ(rec.merge_seconds, 0.0);
  EXPECT_GT(rec.redo_seconds, 0.0);
}

TEST(Recovery, CheckpointingShrinksTheRedoLog) {
  ClusterConfig cfg = tiny(2, false);
  Cluster no_ckpt(cfg);
  RunReport r1 = no_ckpt.run();
  RecoveryReport rec_cold = recover(no_ckpt, 1);

  Cluster with_ckpt(cfg);
  CheckpointManager ckpt(with_ckpt, 3.0);
  ckpt.start();
  RunReport r2 = with_ckpt.run();
  RecoveryReport rec_ckpt = recover(with_ckpt, 1);

  ASSERT_GT(r1.txns, 0.0);
  ASSERT_GT(r2.txns, 0.0);
  EXPECT_LT(rec_ckpt.log_bytes, rec_cold.log_bytes);
}

}  // namespace
}  // namespace dclue::core
