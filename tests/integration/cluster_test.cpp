#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace dclue::core {
namespace {

/// Small, fast cluster configuration for integration testing.
ClusterConfig tiny(int nodes, double affinity) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.affinity = affinity;
  cfg.warehouses_override = 4 * nodes;
  cfg.customers_per_district = 60;
  cfg.items = 200;
  cfg.terminals_per_node = 12;
  cfg.warmup = 2.0;
  cfg.measure = 8.0;
  cfg.seed = 42;
  return cfg;
}

TEST(ClusterIntegration, SingleNodeCommitsTransactions) {
  RunReport r = run_experiment(tiny(1, 1.0));
  EXPECT_GT(r.txns, 50.0);
  EXPECT_GT(r.tpmc, 0.0);
  // Affinity 1.0, single node: no IPC at all.
  EXPECT_EQ(r.ipc_control_per_txn, 0.0);
  EXPECT_EQ(r.ipc_data_per_txn, 0.0);
  EXPECT_LT(r.abort_rate, 0.10);
  EXPECT_GT(r.buffer_hit_ratio, 0.3);
}

TEST(ClusterIntegration, TwoNodesAffinityOneHasMinimalIpc) {
  RunReport r = run_experiment(tiny(2, 1.0));
  EXPECT_GT(r.txns, 80.0);
  // "With affinity 1.0 there is almost no IPC traffic (except for occasional
  // access to item table pages)" — directory homes are hashed, so some
  // control messaging remains, but data blocks should rarely move.
  EXPECT_LT(r.ipc_data_per_txn, 3.0);
}

TEST(ClusterIntegration, LowAffinityGeneratesIpcTraffic) {
  RunReport low = run_experiment(tiny(2, 0.0));
  RunReport high = run_experiment(tiny(2, 1.0));
  EXPECT_GT(low.ipc_control_per_txn, high.ipc_control_per_txn + 1.0);
  EXPECT_GT(low.ipc_data_per_txn, high.ipc_data_per_txn);
  EXPECT_GT(low.remote_fetch_per_txn, 0.0);
}

TEST(ClusterIntegration, FourNodesScaleThroughputOverOne) {
  RunReport one = run_experiment(tiny(1, 1.0));
  ClusterConfig cfg4 = tiny(4, 1.0);
  RunReport four = run_experiment(cfg4);
  EXPECT_GT(four.tpmc, one.tpmc * 2.0);
}

TEST(ClusterIntegration, CommittedWorkIsDurablyLogged) {
  ClusterConfig cfg = tiny(2, 1.0);
  Cluster cluster(cfg);
  RunReport r = cluster.run();
  EXPECT_GT(r.txns, 0.0);
  for (int i = 0; i < cfg.nodes; ++i) {
    EXPECT_GT(cluster.node(i).log_manager().bytes_logged(), 0);
    EXPECT_GT(cluster.node(i).log_disk().ops_completed(), 0u);
  }
}

TEST(ClusterIntegration, CentralLoggingRoutesToNodeZero) {
  ClusterConfig cfg = tiny(3, 0.8);
  cfg.central_logging = true;
  Cluster cluster(cfg);
  RunReport r = cluster.run();
  EXPECT_GT(r.txns, 0.0);
  // Only node 0's log disk sees writes.
  EXPECT_GT(cluster.node(0).log_disk().ops_completed(), 0u);
  EXPECT_EQ(cluster.node(1).log_disk().ops_completed(), 0u);
  EXPECT_EQ(cluster.node(2).log_disk().ops_completed(), 0u);
}

TEST(ClusterIntegration, DatabaseStateAdvancesConsistently) {
  ClusterConfig cfg = tiny(2, 0.8);
  Cluster cluster(cfg);
  RunReport r = cluster.run();
  EXPECT_GT(r.txns, 0.0);
  // New orders inserted: order table grew beyond its initial population.
  auto& db = cluster.database();
  const auto initial_orders = static_cast<std::size_t>(
      db.scale().warehouses * db.scale().districts_per_warehouse *
      db.scale().initial_orders_per_district);
  EXPECT_GT(db.order.size(), initial_orders);
  EXPECT_GT(db.order_line.size(), initial_orders * 5);
  // District next_o_id values moved past their initial value somewhere.
  bool advanced = false;
  for (std::int64_t w = 1; w <= db.scale().warehouses && !advanced; ++w) {
    for (std::int64_t d = 1; d <= 10 && !advanced; ++d) {
      auto* row = db.district.find(db::key_wd(w, d));
      ASSERT_NE(row, nullptr);
      if (row->next_o_id > db.scale().initial_orders_per_district + 1) advanced = true;
    }
  }
  EXPECT_TRUE(advanced);
}

TEST(ClusterIntegration, DeterministicAcrossRunsWithSameSeed) {
  RunReport a = run_experiment(tiny(2, 0.8));
  RunReport b = run_experiment(tiny(2, 0.8));
  EXPECT_DOUBLE_EQ(a.txns, b.txns);
  EXPECT_DOUBLE_EQ(a.tpmc, b.tpmc);
  EXPECT_DOUBLE_EQ(a.ipc_control_per_txn, b.ipc_control_per_txn);
}

TEST(ClusterIntegration, DifferentSeedsDiffer) {
  ClusterConfig cfg = tiny(2, 0.8);
  RunReport a = run_experiment(cfg);
  cfg.seed = 777;
  RunReport b = run_experiment(cfg);
  EXPECT_NE(a.txns, b.txns);
}

TEST(ClusterIntegration, SoftwareTcpIsSlowerAtLowAffinity) {
  ClusterConfig hw = tiny(2, 0.5);
  ClusterConfig sw = hw;
  sw.hw_tcp = false;
  sw.hw_iscsi = false;
  RunReport rh = run_experiment(hw);
  RunReport rs = run_experiment(sw);
  EXPECT_GT(rh.tpmc, rs.tpmc);
}

TEST(ClusterIntegration, CrossTrafficRunsAlongsideDbms) {
  ClusterConfig cfg = tiny(2, 0.8);
  cfg.ftp.offered_load_mbps = 50.0;
  RunReport r = run_experiment(cfg);
  EXPECT_GT(r.txns, 0.0);
  EXPECT_GT(r.ftp_carried_mbps, 1.0);
}

TEST(ClusterIntegration, ScaleInvarianceOfThroughput) {
  // The paper's 100x methodology: all inputs are path lengths, so slowing
  // every clock by the same factor must leave the scaled-back tpm-C
  // unchanged (within stochastic noise).
  ClusterConfig a = tiny(2, 0.8);
  ClusterConfig b = a;
  a.scale = 100.0;
  b.scale = 50.0;
  RunReport ra = run_experiment(a);
  RunReport rb = run_experiment(b);
  ASSERT_GT(ra.tpmc, 0.0);
  ASSERT_GT(rb.tpmc, 0.0);
  EXPECT_NEAR(rb.tpmc / ra.tpmc, 1.0, 0.25);
}

TEST(ClusterIntegration, OpenLoopDeliversOfferedLoad) {
  ClusterConfig cfg = tiny(2, 0.8);
  cfg.open_loop_bt_rate_per_node = 1.0;  // well under capacity
  cfg.measure = 40.0;  // enough arrivals to average out Poisson noise
  RunReport r = run_experiment(cfg);
  // Offered: 2 nodes x 1 bt/s x ~2.33 txns/bt over the measure window.
  const double offered = 2.0 * 1.0 * (2.0 + 0.14 / 0.43);
  EXPECT_NEAR(r.txn_rate, offered, offered * 0.35);
  EXPECT_EQ(r.admission_drops, 0u);
}

TEST(ClusterIntegration, ExtraLatencyRaisesControlDelay) {
  ClusterConfig base = tiny(4, 0.5);
  base.max_servers_per_lata = 2;  // 2 LATAs so inter-LATA latency applies
  RunReport r0 = run_experiment(base);
  ClusterConfig lat = base;
  lat.extra_inter_lata_latency = 2e-3;
  RunReport r2 = run_experiment(lat);
  EXPECT_GT(r2.control_msg_delay_ms, r0.control_msg_delay_ms * 1.5);
  EXPECT_GT(r2.tpmc, 0.0);
}

TEST(ClusterIntegration, LockActivityObservedUnderContention) {
  // Few warehouses + low affinity = district hotspot contention.
  ClusterConfig cfg = tiny(2, 0.0);
  cfg.warehouses_override = 2;
  cfg.terminals_per_node = 16;
  RunReport r = run_experiment(cfg);
  EXPECT_GT(r.txns, 0.0);
  EXPECT_GT(r.lock_waits_per_txn + r.lock_failures_per_txn, 0.0);
}

}  // namespace
}  // namespace dclue::core
