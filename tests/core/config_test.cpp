#include "core/config.hpp"

#include <gtest/gtest.h>

namespace dclue::core {
namespace {

TEST(ClusterConfig, LataLayoutFollowsRouterPortLimit) {
  ClusterConfig cfg;
  cfg.nodes = 12;
  EXPECT_EQ(cfg.latas(), 1);
  EXPECT_EQ(cfg.servers_per_lata(), 12);
  cfg.nodes = 13;
  EXPECT_EQ(cfg.latas(), 2);  // the paper: beyond 12 nodes -> 2 LATAs
  EXPECT_EQ(cfg.servers_per_lata(), 7);
  cfg.nodes = 24;
  EXPECT_EQ(cfg.latas(), 2);
  EXPECT_EQ(cfg.servers_per_lata(), 12);
  cfg.max_servers_per_lata = 4;
  cfg.nodes = 8;
  EXPECT_EQ(cfg.latas(), 2);
  EXPECT_EQ(cfg.servers_per_lata(), 4);
}

TEST(ClusterConfig, WarehousesScaleWithThroughputTarget) {
  ClusterConfig cfg;
  cfg.tpmc_per_node = 38'000.0;
  cfg.nodes = 1;
  // TPC-C rule: tpm-C / 12.5, then / scale.
  EXPECT_EQ(cfg.warehouses(), static_cast<std::int64_t>(38'000.0 / 12.5 / 100.0));
  cfg.nodes = 4;
  EXPECT_EQ(cfg.warehouses(), static_cast<std::int64_t>(4 * 38'000.0 / 12.5 / 100.0));
}

TEST(ClusterConfig, SqrtGrowthBendsAboveTheKnee) {
  ClusterConfig linear;
  linear.nodes = 8;
  ClusterConfig sqrt_cfg = linear;
  sqrt_cfg.growth = DbGrowth::kSqrtBeyond90k;
  // Above 90K tpm-C target, sqrt growth yields fewer warehouses.
  EXPECT_LT(sqrt_cfg.warehouses(), linear.warehouses());
  // Below the knee, identical.
  ClusterConfig small_l;
  small_l.nodes = 2;
  ClusterConfig small_s = small_l;
  small_s.growth = DbGrowth::kSqrtBeyond90k;
  EXPECT_EQ(small_s.warehouses(), small_l.warehouses());
}

TEST(ClusterConfig, OverrideWinsOverGrowthRule) {
  ClusterConfig cfg;
  cfg.warehouses_override = 7;
  EXPECT_EQ(cfg.warehouses(), 7);
}

TEST(ClusterConfig, AtLeastOneWarehousePerNode) {
  ClusterConfig cfg;
  cfg.nodes = 24;
  cfg.tpmc_per_node = 100.0;  // absurdly small target
  EXPECT_GE(cfg.warehouses(), 24);
}

TEST(PathLengths, ComputationFactorSparesProtocolCosts) {
  PathLengths base;
  PathLengths low = base.with_computation_factor(0.25);
  EXPECT_DOUBLE_EQ(low.row_read, base.row_read * 0.25);
  EXPECT_DOUBLE_EQ(low.txn_commit, base.txn_commit * 0.25);
  EXPECT_DOUBLE_EQ(low.client_request, base.client_request * 0.25);
  // Protocol handling and IO paths are not "computation" (the paper only
  // reduces computational path lengths).
  EXPECT_DOUBLE_EQ(low.ipc_handler, base.ipc_handler);
  EXPECT_DOUBLE_EQ(low.local_io, base.local_io);
  EXPECT_DOUBLE_EQ(low.lock_op, base.lock_op);
}

}  // namespace
}  // namespace dclue::core
