/// Unit-level checks of the recovery cost model: RecoveryReport arithmetic
/// (records from bytes, phase composition, central-vs-local gather/merge
/// shape), RecoveryCosts scaling knobs, and CheckpointManager cadence. The
/// heavier end-to-end recovery behavior lives in
/// tests/integration/recovery_test.cpp; these tests pin the *math* so the
/// fault subsystem's recovery timing is interpretable.

#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dclue::core {
namespace {

ClusterConfig tiny(int nodes, bool central) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.affinity = 0.8;
  cfg.central_logging = central;
  cfg.warehouses_override = 4 * nodes;
  cfg.customers_per_district = 60;
  cfg.items = 200;
  cfg.terminals_per_node = 12;
  cfg.warmup = 2.0;
  cfg.measure = 8.0;
  cfg.seed = 42;
  return cfg;
}

RecoveryReport recover(Cluster& cluster, int failed, RecoveryCosts costs) {
  RecoveryReport rec;
  bool done = false;
  sim::spawn([](Cluster& c, int failed, RecoveryCosts costs,
                RecoveryReport& out, bool& done) -> sim::Task<void> {
    out = co_await run_recovery(c, failed, costs);
    done = true;
  }(cluster, failed, costs, rec, done));
  for (int step = 0; step < 200 && !done; ++step) {
    cluster.engine().run_until(cluster.engine().now() + 25.0);
  }
  EXPECT_TRUE(done);
  return rec;
}

/// One shared local-logging run: recovery cost knobs are compared against
/// the same log volume (Cluster is neither copyable nor movable).
struct LocalRun {
  Cluster cluster;
  LocalRun() : cluster(tiny(2, false)) {
    RunReport r = cluster.run();
    EXPECT_GT(r.txns, 0.0);
  }
};

LocalRun& local_run() {
  static LocalRun run;
  return run;
}

TEST(RecoveryMath, RecordsAreLogBytesOverRecordBytes) {
  auto& cluster = local_run().cluster;
  RecoveryCosts costs;
  costs.record_bytes = 128;
  const RecoveryReport rec = recover(cluster, 1, costs);
  ASSERT_GT(rec.log_bytes, 0);
  EXPECT_EQ(rec.records,
            static_cast<std::uint64_t>(rec.log_bytes / costs.record_bytes));

  // The identity holds for any record size. (The log itself keeps growing —
  // terminals stay live during recovery — so only the per-recovery identity
  // is comparable, not log volumes across recoveries.)
  RecoveryCosts half = costs;
  half.record_bytes = 64;
  const RecoveryReport rec2 = recover(cluster, 1, half);
  EXPECT_EQ(rec2.records,
            static_cast<std::uint64_t>(rec2.log_bytes / half.record_bytes));
  EXPECT_GT(rec2.records, rec.records);  // finer records over a >= log
}

TEST(RecoveryMath, PhasesComposeIntoTotal) {
  auto& cluster = local_run().cluster;
  const RecoveryReport rec = recover(cluster, 1, RecoveryCosts{});
  EXPECT_GT(rec.gather_seconds, 0.0);
  EXPECT_GT(rec.merge_seconds, 0.0);  // local logging: k-way timestamp merge
  EXPECT_GT(rec.redo_seconds, 0.0);
  EXPECT_NEAR(rec.total_seconds,
              rec.gather_seconds + rec.merge_seconds + rec.redo_seconds,
              1e-9);
}

TEST(RecoveryMath, RedoCostScalesWithPathLength) {
  auto& cluster = local_run().cluster;
  RecoveryCosts cheap;
  cheap.redo_per_record = 4'000.0;
  cheap.page_fetch_fraction = 0.0;  // isolate the compute term
  RecoveryCosts dear = cheap;
  dear.redo_per_record = 16'000.0;
  const RecoveryReport r_cheap = recover(cluster, 1, cheap);
  const RecoveryReport r_dear = recover(cluster, 1, dear);
  // The log grows between the two recoveries (live terminals), so compare
  // per-record redo time: 4x the path length must show through even with
  // the coordinator CPU also carrying workload.
  const double cheap_per_rec =
      r_cheap.redo_seconds / static_cast<double>(r_cheap.records);
  const double dear_per_rec =
      r_dear.redo_seconds / static_cast<double>(r_dear.records);
  EXPECT_GT(dear_per_rec, 1.5 * cheap_per_rec);
}

TEST(RecoveryMath, MergeCostScalesWithPerRecordShare) {
  auto& cluster = local_run().cluster;
  RecoveryCosts base;
  base.merge_per_record = 400.0;
  RecoveryCosts doubled = base;
  doubled.merge_per_record = 800.0;
  const RecoveryReport r1 = recover(cluster, 1, base);
  const RecoveryReport r2 = recover(cluster, 1, doubled);
  EXPECT_GT(r1.merge_seconds, 0.0);
  // Normalize by the n·log2(n) merge work, since n differs between calls.
  auto per_unit = [](const RecoveryReport& r) {
    const double n = static_cast<double>(r.records);
    return r.merge_seconds / (n * std::log2(n));
  };
  EXPECT_GT(per_unit(r2), 1.2 * per_unit(r1));
}

TEST(RecoveryMath, PageFetchFractionAddsRedoIo) {
  auto& cluster = local_run().cluster;
  RecoveryCosts no_io;
  no_io.page_fetch_fraction = 0.0;
  RecoveryCosts io = no_io;
  io.page_fetch_fraction = 0.3;
  const RecoveryReport r_no = recover(cluster, 1, no_io);
  const RecoveryReport r_io = recover(cluster, 1, io);
  EXPECT_GT(r_io.redo_seconds, r_no.redo_seconds);
}

TEST(RecoveryMath, CentralLoggingGathersOneLogAndSkipsMerge) {
  Cluster cluster(tiny(2, true));
  RunReport r = cluster.run();
  ASSERT_GT(r.txns, 0.0);
  const RecoveryReport rec = recover(cluster, 1, RecoveryCosts{});
  EXPECT_GT(rec.log_bytes, 0);
  EXPECT_EQ(rec.merge_seconds, 0.0);
  // The central log holds every node's records, and only node 0's log disk
  // carries them.
  EXPECT_GT(cluster.node(0).log_manager().bytes_logged(), 0u);
}

TEST(CheckpointCadence, CheckpointCountTracksRuntimeOverInterval) {
  ClusterConfig cfg = tiny(2, false);
  Cluster cluster(cfg);
  const sim::Duration interval = 2.0;
  CheckpointManager ckpt(cluster, interval);
  ckpt.start();
  RunReport r = cluster.run();
  ASSERT_GT(r.txns, 0.0);
  // runtime = warmup + measure = 10 s; each node checkpoints every 2 s.
  // runtime / interval is an upper bound on the cadence: each cycle also
  // spends real time writing back pages and flushing the checkpoint record,
  // so the effective period is longer than the configured interval.
  const double runtime = cfg.warmup + cfg.measure;
  const double expected_per_node = runtime / interval;
  const auto total = static_cast<double>(ckpt.checkpoints_taken());
  EXPECT_GE(total, expected_per_node / 2.0 * cfg.nodes);
  EXPECT_LE(total, (expected_per_node + 1.0) * cfg.nodes);
  // A loaded run dirties pages, and the cleaner wrote them back.
  EXPECT_GT(ckpt.pages_written(), 0u);
  // Checkpointing bounded the redo log.
  for (int i = 0; i < cfg.nodes; ++i) {
    auto& log = cluster.node(i).log_manager();
    EXPECT_LT(log.bytes_since_checkpoint(), log.bytes_logged());
  }
}

}  // namespace
}  // namespace dclue::core
