#include "storage/disk.hpp"

#include <gtest/gtest.h>

namespace dclue::storage {
namespace {

using sim::Task;

TEST(Disk, SingleReadLatencyWithinMechanicalBounds) {
  sim::Engine e;
  DiskParams p;
  Disk d(e, "d0", p);
  sim::Time done = 0.0;
  sim::spawn([](sim::Engine& e, Disk& d, sim::Time& out) -> Task<void> {
    co_await d.read(1'000'000, 8192);
    out = e.now();
  }(e, d, done));
  e.run();
  // controller + seek + rotation + transfer: ~1-15 ms for a random 8K read.
  EXPECT_GT(done, 1e-3);
  EXPECT_LT(done, 20e-3);
  EXPECT_EQ(d.ops_completed(), 1u);
}

TEST(Disk, SequentialReadsFasterThanRandom) {
  sim::Engine e;
  Disk seq(e, "seq", DiskParams{});
  Disk rnd(e, "rnd", DiskParams{});
  sim::Time t_seq = 0.0, t_rnd = 0.0;
  sim::spawn([](sim::Engine& e, Disk& d, sim::Time& out) -> Task<void> {
    for (int i = 0; i < 20; ++i) co_await d.read(100 + i, 8192);
    out = e.now();
  }(e, seq, t_seq));
  e.run();
  sim::Engine e2;
  Disk rnd2(e2, "rnd", DiskParams{});
  sim::spawn([](sim::Engine& e, Disk& d, sim::Time& out) -> Task<void> {
    for (int i = 0; i < 20; ++i) co_await d.read((i * 7919) % 4000000, 8192);
    out = e.now();
  }(e2, rnd2, t_rnd));
  e2.run();
  EXPECT_LT(t_seq, t_rnd / 2);
}

TEST(Disk, ElevatorReordersQueuedRequests) {
  sim::Engine e;
  Disk d(e, "d", DiskParams{});
  std::vector<std::int64_t> completion_order;
  // Submit far block first, near block second, from head position 0;
  // C-LOOK should serve the near one first.
  auto io = [](Disk& d, std::vector<std::int64_t>& order,
               std::int64_t block) -> Task<void> {
    co_await d.read(block, 8192);
    order.push_back(block);
  };
  sim::spawn(io(d, completion_order, 3'000'000));
  sim::spawn(io(d, completion_order, 1'000));
  e.run();
  ASSERT_EQ(completion_order.size(), 2u);
  // The first request races into service immediately; the queued pair after
  // it would be reordered. Submit three to observe elevator order.
  sim::Engine e2;
  Disk d2(e2, "d2", DiskParams{});
  std::vector<std::int64_t> order2;
  sim::spawn(io(d2, order2, 10));           // starts service immediately
  sim::spawn(io(d2, order2, 3'000'000));    // queued
  sim::spawn(io(d2, order2, 2'000));        // queued, closer to head
  e2.run();
  ASSERT_EQ(order2.size(), 3u);
  EXPECT_EQ(order2[1], 2'000);
  EXPECT_EQ(order2[2], 3'000'000);
}

TEST(Disk, ScaledDiskIsProportionallySlower) {
  sim::Engine e1, e2;
  Disk fast(e1, "f", DiskParams{});
  Disk slow(e2, "s", DiskParams{}.scaled(100.0));
  sim::Time t1 = 0.0, t2 = 0.0;
  sim::spawn([](sim::Engine& e, Disk& d, sim::Time& out) -> Task<void> {
    co_await d.read(12345, 8192);
    out = e.now();
  }(e1, fast, t1));
  sim::spawn([](sim::Engine& e, Disk& d, sim::Time& out) -> Task<void> {
    co_await d.read(12345, 8192);
    out = e.now();
  }(e2, slow, t2));
  e1.run();
  e2.run();
  EXPECT_NEAR(t2 / t1, 100.0, 1.0);
}

TEST(Disk, UtilizationAndLatencyStats) {
  sim::Engine e;
  Disk d(e, "d", DiskParams{});
  sim::spawn([](Disk& d) -> Task<void> {
    for (int i = 0; i < 5; ++i) co_await d.read(i * 500'000, 8192);
  }(d));
  e.run();
  EXPECT_EQ(d.ops_completed(), 5u);
  EXPECT_GT(d.latency().mean(), 0.0);
  EXPECT_GE(d.latency().mean(), d.service_time().mean());
  EXPECT_NEAR(d.utilization(), 1.0, 0.01);  // back-to-back, always busy
}

TEST(Disk, QueuedRequestLatencyIncludesWait) {
  sim::Engine e;
  Disk d(e, "d", DiskParams{});
  std::vector<sim::Time> latencies;
  for (int i = 0; i < 3; ++i) {
    sim::spawn([](sim::Engine& e, Disk& d, std::vector<sim::Time>& lat,
                  int i) -> Task<void> {
      sim::Time start = e.now();
      co_await d.read(i * 1'000'000, 8192);
      lat.push_back(e.now() - start);
    }(e, d, latencies, i));
  }
  e.run();
  ASSERT_EQ(latencies.size(), 3u);
  // The last-served request waited for the other two.
  auto max_lat = *std::max_element(latencies.begin(), latencies.end());
  auto min_lat = *std::min_element(latencies.begin(), latencies.end());
  EXPECT_GT(max_lat, 2 * min_lat);
}

}  // namespace
}  // namespace dclue::storage
