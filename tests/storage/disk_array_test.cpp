#include "storage/disk_array.hpp"

#include <gtest/gtest.h>

namespace dclue::storage {
namespace {

using sim::Task;

TEST(DiskArray, StripesRequestsAcrossSpindles) {
  sim::Engine e;
  DiskArray arr(e, "a", 8, DiskParams{});
  int done = 0;
  // 32 concurrent reads on consecutive blocks: striping spreads them over
  // all 8 spindles, so the batch completes ~8x faster than serial.
  for (int i = 0; i < 32; ++i) {
    sim::spawn([](DiskArray& a, int blk, int& done) -> Task<void> {
      co_await a.read(blk, 8192);
      ++done;
    }(arr, i, done));
  }
  e.run();
  EXPECT_EQ(done, 32);
  EXPECT_EQ(arr.ops_completed(), 32u);
  const sim::Time parallel_time = e.now();

  sim::Engine e2;
  DiskArray one(e2, "b", 1, DiskParams{});
  sim::spawn([](DiskArray& a) -> Task<void> {
    for (int i = 0; i < 32; ++i) co_await a.read(i, 8192);
  }(one));
  e2.run();
  EXPECT_GT(e2.now(), parallel_time * 3);
}

TEST(DiskArray, SameBlockAlwaysSameSpindle) {
  sim::Engine e;
  DiskArray arr(e, "a", 4, DiskParams{});
  sim::spawn([](DiskArray& a) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await a.read(42, 8192);
  }(arr));
  e.run();
  // All ten land on one spindle: its op count equals the total.
  EXPECT_EQ(arr.max_ops(), 10u);
}

TEST(DiskArray, UtilizationAveragesAcrossSpindles) {
  sim::Engine e;
  DiskArray arr(e, "a", 4, DiskParams{});
  sim::spawn([](DiskArray& a) -> Task<void> {
    co_await a.read(0, 8192);  // busy only spindle 0
  }(arr));
  e.run();
  EXPECT_NEAR(arr.avg_utilization(), 0.25, 0.05);
  EXPECT_NEAR(arr.max_utilization(), 1.0, 0.01);
}

TEST(DiskArray, WritesAndReadsShareTheStripes) {
  sim::Engine e;
  DiskArray arr(e, "a", 2, DiskParams{});
  int done = 0;
  sim::spawn([](DiskArray& a, int& done) -> Task<void> {
    co_await a.write(7, 8192);
    co_await a.read(7, 8192);
    ++done;
  }(arr, done));
  e.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(arr.ops_completed(), 2u);
}

TEST(DiskArray, ResetStatsClearsCounters) {
  sim::Engine e;
  DiskArray arr(e, "a", 2, DiskParams{});
  sim::spawn([](DiskArray& a) -> Task<void> { co_await a.read(1, 8192); }(arr));
  e.run();
  EXPECT_EQ(arr.ops_completed(), 1u);
  arr.reset_stats();
  EXPECT_EQ(arr.ops_completed(), 0u);
}

}  // namespace
}  // namespace dclue::storage
