#include "cpu/memory_system.hpp"

#include <gtest/gtest.h>

namespace dclue::cpu {
namespace {

struct Fixture {
  sim::Engine engine;
  PlatformParams params;
  MemorySystem mem{engine, params};
};

TEST(MemorySystem, BaselineCpiIsModest) {
  Fixture f;
  f.mem.set_busy_cores(2);
  f.mem.set_active_threads(10);
  double cpi = f.mem.effective_cpi(JobClass::kApplication);
  EXPECT_GT(cpi, f.params.base_cpi[0]);
  EXPECT_LT(cpi, 15.0);
}

TEST(MemorySystem, CpiRisesWithThreadPressure) {
  Fixture f;
  f.mem.set_busy_cores(2);
  f.mem.set_active_threads(10);
  double low = f.mem.effective_cpi(JobClass::kApplication);
  f.mem.set_active_threads(75);
  double high = f.mem.effective_cpi(JobClass::kApplication);
  EXPECT_GT(high, low * 1.2);
}

TEST(MemorySystem, KernelWorkHasHigherCpiThanApplication) {
  Fixture f;
  f.mem.set_busy_cores(2);
  f.mem.set_active_threads(20);
  EXPECT_GT(f.mem.effective_cpi(JobClass::kKernel),
            f.mem.effective_cpi(JobClass::kApplication));
  EXPECT_GT(f.mem.effective_cpi(JobClass::kInterrupt),
            f.mem.effective_cpi(JobClass::kKernel));
}

TEST(MemorySystem, EvictionFractionMatchesWorkingSetModel) {
  Fixture f;
  // 32KB working set, 1MB cache: 20 threads fit (640KB), no eviction.
  EXPECT_DOUBLE_EQ(f.mem.eviction_fraction(20), 0.0);
  // 75 threads: 2400KB footprint, (2400-1024)/2400 evicted.
  EXPECT_NEAR(f.mem.eviction_fraction(75), (75.0 * 32 - 1024) / (75.0 * 32), 1e-9);
  EXPECT_LT(f.mem.eviction_fraction(75), 1.0);
}

TEST(MemorySystem, ContextSwitchCostMatchesPaperAnchors) {
  Fixture f;
  f.mem.set_busy_cores(2);
  // ~20 active threads: the paper reports 17.7K cycles per switch.
  f.mem.set_active_threads(20);
  EXPECT_NEAR(f.mem.context_switch_cycles(), 17'700, 2'000);
  // ~75 active threads: the paper reports 69.7K cycles per switch.
  f.mem.set_active_threads(75);
  double c = f.mem.context_switch_cycles();
  EXPECT_NEAR(c, 69'700, 20'000);
  EXPECT_GT(c, 40'000);
}

TEST(MemorySystem, ClassMixShiftsBlendedCpi) {
  Fixture f;
  f.mem.set_busy_cores(2);
  f.mem.set_active_threads(20);
  f.mem.note_instructions(JobClass::kApplication, 1e6);
  double app_heavy = f.mem.effective_cpi(JobClass::kApplication);
  f.mem.note_instructions(JobClass::kInterrupt, 9e6);
  double intr_heavy = f.mem.effective_cpi(JobClass::kApplication);
  // Interrupt-heavy mix raises memory pressure and therefore everyone's CPI.
  EXPECT_GE(intr_heavy, app_heavy);
}

TEST(MemorySystem, LoadedLatencyExceedsUnloaded) {
  Fixture f;
  f.mem.set_busy_cores(2);
  f.mem.set_active_threads(60);
  f.mem.effective_cpi(JobClass::kApplication);
  EXPECT_GT(f.mem.loaded_memory_latency_s(), f.params.dram_base_s);
}

TEST(MemorySystem, UtilizationIsBounded) {
  Fixture f;
  f.mem.set_busy_cores(2);
  f.mem.set_active_threads(200);
  f.mem.effective_cpi(JobClass::kApplication);
  EXPECT_LE(f.mem.data_bus_utilization(), 1.0);
  EXPECT_GT(f.mem.data_bus_utilization(), 0.0);
}

}  // namespace
}  // namespace dclue::cpu
