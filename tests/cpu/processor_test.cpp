#include "cpu/processor.hpp"

#include <gtest/gtest.h>

#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dclue::cpu {
namespace {

using sim::Engine;
using sim::Task;

struct Fixture {
  Engine engine;
  PlatformParams params;
  MemorySystem mem{engine, params};
  Processor proc{engine, params, mem};
  Fixture() = default;
  explicit Fixture(PlatformParams p)
      : params(p), mem(engine, params), proc(engine, params, mem) {}
};

TEST(Processor, SingleJobTakesPathLengthOverCpiTime) {
  Fixture f;
  sim::Time done = -1.0;
  sim::spawn([](Fixture& f, sim::Time& out) -> Task<void> {
    co_await f.proc.compute(1e6, JobClass::kApplication, 1);
    out = f.engine.now();
  }(f, done));
  f.engine.run();
  // CPI for pure app work at low thread count: base 1.20 plus a small stall
  // component. 1e6 instructions at 3.2GHz -> ~0.4-0.8ms.
  EXPECT_GT(done, 1e6 * 1.2 / 3.2e9 * 0.99);
  EXPECT_LT(done, 1e6 * 3.0 / 3.2e9);
}

TEST(Processor, TwoCoresRunTwoJobsConcurrently) {
  Fixture f;
  int completed = 0;
  sim::Time t_done = 0.0;
  for (int i = 0; i < 2; ++i) {
    sim::spawn([](Fixture& f, int& c, sim::Time& t, int tid) -> Task<void> {
      co_await f.proc.compute(1e6, JobClass::kApplication, tid);
      ++c;
      t = f.engine.now();
    }(f, completed, t_done, i + 1));
  }
  f.engine.run();
  EXPECT_EQ(completed, 2);
  // Both finish at ~the single-job time (parallel), not 2x.
  EXPECT_LT(t_done, 1e6 * 3.0 / 3.2e9);
}

TEST(Processor, ThirdJobQueuesBehindTwoCores) {
  Fixture f;
  std::vector<sim::Time> done;
  for (int i = 0; i < 3; ++i) {
    sim::spawn([](Fixture& f, std::vector<sim::Time>& d, int tid) -> Task<void> {
      co_await f.proc.compute(1e6, JobClass::kApplication, tid);
      d.push_back(f.engine.now());
    }(f, done, i + 1));
  }
  f.engine.run();
  ASSERT_EQ(done.size(), 3u);
  // The third job starts only after one of the first two finishes.
  EXPECT_GT(done[2], done[0] * 1.8);
}

TEST(Processor, InterruptPreemptsApplicationWork) {
  Fixture f;
  // Saturate both cores with long app jobs, then submit an interrupt; the
  // interrupt must complete long before the app jobs do.
  sim::Time app_done = 0.0, intr_done = 0.0;
  for (int i = 0; i < 2; ++i) {
    sim::spawn([](Fixture& f, sim::Time& out, int tid) -> Task<void> {
      co_await f.proc.compute(1e8, JobClass::kApplication, tid);
      out = f.engine.now();
    }(f, app_done, i + 1));
  }
  f.engine.after(1e-3, [&f, &intr_done] {
    sim::spawn([](Fixture& f, sim::Time& out) -> Task<void> {
      co_await f.proc.compute(1e4, JobClass::kInterrupt, kNoThread);
      out = f.engine.now();
    }(f, intr_done));
  });
  f.engine.run();
  EXPECT_GT(intr_done, 0.0);
  EXPECT_LT(intr_done, app_done / 2);
}

TEST(Processor, PreemptedWorkStillCompletesFully) {
  Fixture f;
  // One long app job repeatedly preempted by interrupts must still execute
  // its full path length (its completion time exceeds the no-interrupt time).
  sim::Time app_done = 0.0;
  sim::spawn([](Fixture& f, sim::Time& out) -> Task<void> {
    co_await f.proc.compute(1e7, JobClass::kApplication, 1);
    out = f.engine.now();
  }(f, app_done));
  PlatformParams p1;
  p1.cores = 1;
  Fixture single(p1);
  sim::Time baseline = 0.0;
  sim::spawn([](Fixture& f, sim::Time& out) -> Task<void> {
    co_await f.proc.compute(1e7, JobClass::kApplication, 1);
    out = f.engine.now();
  }(single, baseline));
  single.engine.run();
  f.engine.run();
  EXPECT_NEAR(app_done, baseline, baseline * 0.5);
}

TEST(Processor, ContextSwitchChargedOnThreadChange) {
  Fixture f;
  // Two threads alternating on one core must record context switches.
  PlatformParams p;
  p.cores = 1;
  Fixture g(p);
  sim::spawn([](Fixture& f) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await f.proc.compute(1e4, JobClass::kApplication, 1);
      co_await f.proc.compute(1e4, JobClass::kApplication, 2);
    }
  }(g));
  g.engine.run();
  EXPECT_GE(g.proc.context_switches(), 9u);
  EXPECT_NEAR(g.proc.context_switch_cost_cycles().mean(), 17700, 4000);
}

TEST(Processor, NoContextSwitchForSameThread) {
  PlatformParams p;
  p.cores = 1;
  Fixture f(p);
  sim::spawn([](Fixture& f) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await f.proc.compute(1e4, JobClass::kApplication, 7);
    }
  }(f));
  f.engine.run();
  EXPECT_LE(f.proc.context_switches(), 1u);  // only the initial dispatch
}

TEST(Processor, UtilizationReflectsLoad) {
  Fixture f;
  sim::spawn([](Fixture& f) -> Task<void> {
    co_await f.proc.compute(3.2e6, JobClass::kApplication, 1);
  }(f));
  f.engine.run();
  sim::Time busy_end = f.engine.now();
  // Single job on a 2-core node: utilization ~0.5 while running.
  EXPECT_NEAR(f.proc.utilization(), 0.5, 0.01);
  (void)busy_end;
}

TEST(Processor, ActiveThreadTrackingIsTimeWeighted) {
  Fixture f;
  f.proc.thread_activated();
  f.engine.after(1.0, [&f] { f.proc.thread_activated(); });
  f.engine.after(2.0, [&f] {
    f.proc.thread_deactivated();
    f.proc.thread_deactivated();
  });
  f.engine.after(4.0, [] {});
  f.engine.run();
  // 1 thread for 1s, 2 threads for 1s, 0 for 2s => avg 0.75 over 4s.
  EXPECT_NEAR(f.proc.avg_active_threads(), 0.75, 1e-9);
}

TEST(Processor, ScaledPlatformRunsProportionallySlower) {
  PlatformParams scaled = PlatformParams{}.scaled(100.0);
  Fixture fast;
  Fixture slow(scaled);
  sim::Time t_fast = 0.0, t_slow = 0.0;
  sim::spawn([](Fixture& f, sim::Time& out) -> Task<void> {
    co_await f.proc.compute(1e6, JobClass::kApplication, 1);
    out = f.engine.now();
  }(fast, t_fast));
  sim::spawn([](Fixture& f, sim::Time& out) -> Task<void> {
    co_await f.proc.compute(1e6, JobClass::kApplication, 1);
    out = f.engine.now();
  }(slow, t_slow));
  fast.engine.run();
  slow.engine.run();
  EXPECT_NEAR(t_slow / t_fast, 100.0, 1.0);
}

}  // namespace
}  // namespace dclue::cpu
