#include "db/btree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

namespace dclue::db {
namespace {

TEST(BTree, EmptyTree) {
  BTree<std::uint64_t, int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.find(42).has_value());
  EXPECT_FALSE(t.begin().valid());
}

TEST(BTree, InsertAndFind) {
  BTree<std::uint64_t, int> t;
  t.insert(5, 50);
  t.insert(1, 10);
  t.insert(9, 90);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(*t.find(5), 50);
  EXPECT_EQ(*t.find(1), 10);
  EXPECT_EQ(*t.find(9), 90);
  EXPECT_FALSE(t.find(7).has_value());
}

TEST(BTree, OverwriteKeepsSize) {
  BTree<std::uint64_t, int> t;
  t.insert(5, 50);
  t.insert(5, 55);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(5), 55);
}

TEST(BTree, ManySequentialInsertionsSplitCorrectly) {
  BTree<std::uint64_t, int> t;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) t.insert(static_cast<std::uint64_t>(i), i * 2);
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(*t.find(static_cast<std::uint64_t>(i)), i * 2) << i;
  }
  EXPECT_GT(t.height(), 1);
}

TEST(BTree, RandomInsertionsMatchReferenceMap) {
  BTree<std::uint64_t, int> t;
  std::map<std::uint64_t, int> ref;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20'000; ++i) {
    std::uint64_t k = rng() % 50'000;
    t.insert(k, i);
    ref[k] = i;
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_EQ(*t.find(k), v) << k;
  }
}

TEST(BTree, OrderedIterationFromBegin) {
  BTree<std::uint64_t, int> t;
  std::mt19937_64 rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5'000; ++i) {
    std::uint64_t k = rng();
    keys.push_back(k);
    t.insert(k, 0);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::size_t idx = 0;
  for (auto it = t.begin(); it.valid(); it.next()) {
    ASSERT_LT(idx, keys.size());
    ASSERT_EQ(it.key(), keys[idx]);
    ++idx;
  }
  EXPECT_EQ(idx, keys.size());
}

TEST(BTree, LowerBoundFindsFirstNotLess) {
  BTree<std::uint64_t, int> t;
  for (std::uint64_t k = 0; k < 1000; k += 10) t.insert(k, static_cast<int>(k));
  auto it = t.lower_bound(95);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 100u);
  it = t.lower_bound(100);
  EXPECT_EQ(it.key(), 100u);
  it = t.lower_bound(991);
  EXPECT_FALSE(it.valid());
}

TEST(BTree, EraseRemovesAndIterationStaysSorted) {
  BTree<std::uint64_t, int> t;
  for (std::uint64_t k = 0; k < 2000; ++k) t.insert(k, 1);
  for (std::uint64_t k = 0; k < 2000; k += 2) EXPECT_TRUE(t.erase(k));
  EXPECT_FALSE(t.erase(0));  // already gone
  EXPECT_EQ(t.size(), 1000u);
  std::uint64_t expect = 1;
  for (auto it = t.begin(); it.valid(); it.next()) {
    ASSERT_EQ(it.key(), expect);
    expect += 2;
  }
}

TEST(BTree, EraseThenReinsert) {
  BTree<std::uint64_t, int> t;
  for (std::uint64_t k = 0; k < 500; ++k) t.insert(k, 1);
  for (std::uint64_t k = 0; k < 500; ++k) t.erase(k);
  EXPECT_EQ(t.size(), 0u);
  for (std::uint64_t k = 0; k < 500; ++k) t.insert(k, 2);
  EXPECT_EQ(t.size(), 500u);
  EXPECT_EQ(*t.find(250), 2);
}

TEST(BTree, HeightGrowsLogarithmically) {
  BTree<std::uint64_t, int, 8> t;  // small fanout to force depth
  for (std::uint64_t k = 0; k < 4096; ++k) t.insert(k, 0);
  EXPECT_GE(t.height(), 4);
  EXPECT_LE(t.height(), 8);
}

TEST(BTree, LeafCountConsistentWithSize) {
  BTree<std::uint64_t, int> t;
  for (std::uint64_t k = 0; k < 10'000; ++k) t.insert(k, 0);
  std::size_t leaves = t.leaf_count();
  EXPECT_GE(leaves, 10'000u / 64);
  EXPECT_LE(leaves, 10'000u / 16);
}

TEST(BTree, CachedCountersMatchStructureUnderChurn) {
  // height() / leaf_count() are maintained incrementally; verify them
  // against a from-scratch walk via the iterator and known shape bounds
  // while the tree grows and drains.
  BTree<std::uint64_t, int, 8> t;
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.leaf_count(), 1u);
  for (std::uint64_t k = 0; k < 4096; ++k) t.insert(k, 0);
  EXPECT_GE(t.height(), 4);
  EXPECT_GE(t.leaf_count(), 4096u / 8);
  EXPECT_LE(t.leaf_count(), 4096u / 2);
  const int peak_height = t.height();
  const std::size_t peak_leaves = t.leaf_count();
  for (std::uint64_t k = 0; k < 4096; ++k) EXPECT_TRUE(t.erase(k));
  EXPECT_TRUE(t.empty());
  // A fully drained tree collapses back to a single (possibly empty) leaf.
  EXPECT_LT(t.height(), peak_height);
  EXPECT_LT(t.leaf_count(), peak_leaves);
  EXPECT_LE(t.leaf_count(), 1u);
  // Refill: recycled pool nodes behave like fresh ones.
  for (std::uint64_t k = 0; k < 4096; ++k) t.insert(k, 1);
  EXPECT_EQ(t.size(), 4096u);
  EXPECT_EQ(*t.find(4095), 1);
}

TEST(BTree, EraseUnlinksEmptyLeavesFromChain) {
  BTree<std::uint64_t, int, 8> t;
  for (std::uint64_t k = 0; k < 1024; ++k) t.insert(k, 0);
  const std::size_t leaves_full = t.leaf_count();
  // Drain the low half: its leaves must leave the chain (iteration no
  // longer walks them and leaf_count reflects live structure).
  for (std::uint64_t k = 0; k < 512; ++k) EXPECT_TRUE(t.erase(k));
  EXPECT_LT(t.leaf_count(), leaves_full);
  auto it = t.begin();
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 512u);  // first live key reached without skipping
  std::size_t walked = 0;
  for (; it.valid(); it.next()) ++walked;
  EXPECT_EQ(walked, 512u);
  EXPECT_GT(t.pooled_free_nodes(), 0u);  // retired leaves went to the pool
}

/// Property sweep: random interleavings of insert/erase stay consistent with
/// a reference map.
class BTreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BTreeFuzz, MatchesReferenceUnderMixedWorkload) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  BTree<std::uint64_t, int, 8> t;
  std::map<std::uint64_t, int> ref;
  for (int i = 0; i < 5'000; ++i) {
    std::uint64_t k = rng() % 600;
    if (rng() % 3 == 0) {
      EXPECT_EQ(t.erase(k), ref.erase(k) > 0);
    } else {
      t.insert(k, i);
      ref[k] = i;
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  auto it = t.begin();
  for (const auto& [k, v] : ref) {
    ASSERT_TRUE(it.valid());
    ASSERT_EQ(it.key(), k);
    ASSERT_EQ(it.value(), v);
    it.next();
  }
  EXPECT_FALSE(it.valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace dclue::db
