#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/flat_map.hpp"

namespace dclue::sim {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), m.end());

  auto [it, inserted] = m.try_emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->value, 70);
  EXPECT_EQ(m.size(), 1u);

  auto [it2, inserted2] = m.try_emplace(7, 99);
  EXPECT_FALSE(inserted2);  // unordered_map::try_emplace: no overwrite
  EXPECT_EQ(it2->value, 70);

  m[7] = 71;
  EXPECT_EQ(m.find(7)->value, 71);
  EXPECT_TRUE(m.contains(7));

  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, GrowsAndKeepsAllEntries) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t i = 0; i < kN; ++i) m.try_emplace(i * 977, i);
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    auto it = m.find(i * 977);
    ASSERT_NE(it, m.end()) << i;
    EXPECT_EQ(it->value, i);
  }
  EXPECT_FALSE(m.contains(977 * kN));
}

TEST(FlatMap, TombstoneReuseKeepsCapacityStable) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 64; ++i) m.try_emplace(i, 0);
  const std::size_t cap = m.capacity();
  // Steady single-key churn (the lock-table pattern: acquire inserts,
  // release erases) must neither grow the table nor lose entries.
  for (int round = 0; round < 100000; ++round) {
    m.try_emplace(1000, round);
    EXPECT_EQ(m.erase(1000), 1u);
  }
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.size(), 64u);
}

TEST(FlatMap, ChurnAgainstUnorderedMapReference) {
  FlatMap<std::uint64_t, int> m;
  std::unordered_map<std::uint64_t, int> ref;
  std::uint64_t rng = 12345;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = next() % 512;
    switch (next() % 3) {
      case 0: {
        const int v = static_cast<int>(next() % 1000);
        m.try_emplace(key, v);
        ref.try_emplace(key, v);
        break;
      }
      case 1: {
        EXPECT_EQ(m.erase(key), ref.erase(key));
        break;
      }
      default: {
        auto it = m.find(key);
        auto rit = ref.find(key);
        ASSERT_EQ(it == m.end(), rit == ref.end()) << key;
        if (rit != ref.end()) {
          EXPECT_EQ(it->value, rit->second);
        }
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

TEST(FlatMap, IterationVisitsEveryElementOnce) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 300; ++i) m.try_emplace(i * 31, 1);
  std::set<std::uint64_t> seen;
  for (const auto& slot : m) EXPECT_TRUE(seen.insert(slot.key).second);
  EXPECT_EQ(seen.size(), 300u);
}

TEST(FlatMap, EraseDuringIterationVisitsSurvivorsExactlyOnce) {
  // The purge_if / invalidate_if / gc pattern: walk the table erasing some
  // entries via erase(iterator); every survivor must be visited exactly once
  // and every condemned entry must be gone afterwards.
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 1000; ++i) m.try_emplace(i, 0);
  std::set<std::uint64_t> visited;
  for (auto it = m.begin(); it != m.end();) {
    EXPECT_TRUE(visited.insert(it->key).second);
    if (it->key % 3 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(visited.size(), 1000u);
  EXPECT_EQ(m.size(), 666u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(m.contains(i), i % 3 != 0) << i;
  }
}

TEST(FlatMap, EraseAtStoredIndexMatchesEraseByKey) {
  // The buffer-cache eviction path stores index_of() at insert time and
  // erases victims by index without re-probing; indices must stay valid
  // across other erases (slots never move outside a rehash).
  FlatMap<std::uint64_t, int> m;
  m.reserve(256);
  std::vector<std::size_t> idx(256);
  for (std::uint64_t i = 0; i < 256; ++i) {
    auto [it, inserted] = m.try_emplace(i * 13, static_cast<int>(i));
    ASSERT_TRUE(inserted);
    idx[i] = m.index_of(it);
  }
  for (std::uint64_t i = 0; i < 256; i += 2) m.erase_at(idx[i]);
  EXPECT_EQ(m.size(), 128u);
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(m.contains(i * 13), i % 2 == 1) << i;
  }
  // Surviving stored indices still address their entries.
  for (std::uint64_t i = 1; i < 256; i += 2) {
    auto it = m.find(i * 13);
    ASSERT_NE(it, m.end());
    EXPECT_EQ(m.index_of(it), idx[i]);
  }
}

TEST(FlatMap, NonTrivialMappedTypeSurvivesRehash) {
  FlatMap<std::uint64_t, std::string> m;
  for (std::uint64_t i = 0; i < 500; ++i) {
    m.try_emplace(i, std::string(20 + i % 30, 'x'));
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    auto it = m.find(i);
    ASSERT_NE(it, m.end());
    EXPECT_EQ(it->value.size(), 20 + i % 30);
  }
}

TEST(FlatMap, ProbeStatsAdvance) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.try_emplace(i, 0);
  const auto before = m.probe_stats();
  (void)m.contains(5);
  (void)m.contains(999);
  const auto after = m.probe_stats();
  EXPECT_EQ(after.ops, before.ops + 2);
  EXPECT_GE(after.steps, before.steps + 2);
  // Low load factor keeps mean probe length near 1.
  EXPECT_LT(static_cast<double>(after.steps) / static_cast<double>(after.ops),
            2.0);
}

TEST(FlatMap, MoveTransfersStorage) {
  FlatMap<std::uint64_t, int> a;
  for (std::uint64_t i = 0; i < 100; ++i) a.try_emplace(i, static_cast<int>(i));
  FlatMap<std::uint64_t, int> b(std::move(a));
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): reset contract
  EXPECT_EQ(b.find(42)->value, 42);
  a = std::move(b);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.find(42)->value, 42);
}

}  // namespace
}  // namespace dclue::sim
