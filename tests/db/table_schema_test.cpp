#include <gtest/gtest.h>

#include "db/table.hpp"
#include "db/tpcc_schema.hpp"

namespace dclue::db {
namespace {

TEST(PageId, LayoutRoundTrips) {
  PageId p = make_page_id(TableId::kStock, false, 12345);
  EXPECT_EQ(table_of_page(p), TableId::kStock);
  PageId idx = make_page_id(TableId::kStock, true, 12345);
  EXPECT_NE(p, idx);
  EXPECT_EQ(table_of_page(idx), TableId::kStock);
}

TEST(PageId, LockNamesDistinctAcrossSubpages) {
  PageId p = make_page_id(TableId::kDistrict, false, 7);
  EXPECT_NE(lock_name(p, 0), lock_name(p, 1));
  PageId q = make_page_id(TableId::kDistrict, false, 8);
  EXPECT_NE(lock_name(p, 0), lock_name(q, 0));
}

TEST(Keys, CompositeKeysAreDistinctAndOrdered) {
  EXPECT_LT(key_wd(1, 1), key_wd(1, 2));
  EXPECT_LT(key_wd(1, 10), key_wd(2, 1));
  EXPECT_LT(key_wdo(1, 1, 5), key_wdo(1, 1, 6));
  EXPECT_LT(key_wdo(1, 1, 999999), key_wdo(1, 2, 1));
  EXPECT_LT(key_wdool(1, 1, 5, 1), key_wdool(1, 1, 5, 2));
  EXPECT_LT(key_wdool(1, 1, 5, 15), key_wdool(1, 1, 6, 1));
  EXPECT_NE(key_wdc(1, 1, 7), key_wdo(1, 1, 7));
}

TEST(Table, RowsPerPageFollowsSpecRowSize) {
  Table<StockRow> t(TpccSpecs::stock);
  EXPECT_EQ(t.rows_per_page(), 8192 / 306);
  Table<NewOrderRow> no(TpccSpecs::new_order);
  EXPECT_EQ(no.rows_per_page(), 1024);
}

TEST(Table, DataPageAndSubpageMath) {
  Table<DistrictRow> t(TpccSpecs::district);  // 95B rows, 128B subpages
  const int rpp = t.rows_per_page();
  // Fill two pages worth of rows.
  for (std::int64_t i = 0; i < 2 * rpp; ++i) {
    t.insert(static_cast<Key>(i), DistrictRow{});
  }
  RowId first = *t.find_id(0);
  RowId second_page = *t.find_id(static_cast<Key>(rpp));
  EXPECT_NE(t.data_page_of(first), t.data_page_of(second_page));
  // Subpage of 128B on 95B rows: row 0 -> subpage 0, row 2 (190B..) -> 1+.
  EXPECT_EQ(t.subpage_of(0), 0);
  EXPECT_GT(t.subpage_of(3), 0);
}

TEST(Table, InsertFindErase) {
  Table<CustomerRow> t(TpccSpecs::customer);
  t.insert(key_wdc(1, 1, 1), CustomerRow{});
  ASSERT_NE(t.find(key_wdc(1, 1, 1)), nullptr);
  t.find(key_wdc(1, 1, 1))->balance = 42.0;
  EXPECT_DOUBLE_EQ(t.find(key_wdc(1, 1, 1))->balance, 42.0);
  EXPECT_TRUE(t.erase(key_wdc(1, 1, 1)));
  EXPECT_EQ(t.find(key_wdc(1, 1, 1)), nullptr);
}

TEST(Table, ErasedSlotsAreReused) {
  Table<NewOrderRow> t(TpccSpecs::new_order);
  t.insert(1, NewOrderRow{});
  RowId id = *t.find_id(1);
  t.erase(1);
  t.insert(2, NewOrderRow{});
  EXPECT_EQ(*t.find_id(2), id);
}

TEST(Table, IndexPageStableForSameKey) {
  Table<StockRow> t(TpccSpecs::stock);
  for (std::int64_t i = 1; i <= 10'000; ++i) t.insert(key_wi(1, i), StockRow{});
  PageId a = t.index_page_of(key_wi(1, 77));
  PageId b = t.index_page_of(key_wi(1, 77));
  EXPECT_EQ(a, b);
  EXPECT_EQ(table_of_page(a), TableId::kStock);
}

TEST(TpccDatabase, PopulationMatchesCardinalityRules) {
  TpccScale scale;
  scale.warehouses = 3;
  scale.customers_per_district = 30;
  scale.items = 100;
  scale.initial_orders_per_district = 9;
  TpccDatabase db(scale);
  sim::Rng rng(1);
  db.populate(rng);

  EXPECT_EQ(db.warehouse.size(), 3u);
  EXPECT_EQ(db.district.size(), 30u);
  EXPECT_EQ(db.customer.size(), 3u * 10 * 30);
  EXPECT_EQ(db.item.size(), 100u);
  EXPECT_EQ(db.stock.size(), 300u);
  EXPECT_EQ(db.order.size(), 30u * 9);
  // One third of initial orders are undelivered new-orders.
  EXPECT_EQ(db.new_order.size(), 30u * 3);
  EXPECT_GT(db.order_line.size(), db.order.size() * 5);
}

TEST(TpccDatabase, DistrictNextOrderIdStartsAfterInitialOrders) {
  TpccScale scale;
  scale.warehouses = 1;
  scale.initial_orders_per_district = 9;
  TpccDatabase db(scale);
  sim::Rng rng(1);
  db.populate(rng);
  EXPECT_EQ(db.district.find(key_wd(1, 1))->next_o_id, 10);
}

TEST(TpccDatabase, OldestNewOrderScanPerDistrict) {
  TpccScale scale;
  scale.warehouses = 1;
  scale.initial_orders_per_district = 9;
  TpccDatabase db(scale);
  sim::Rng rng(1);
  db.populate(rng);
  // The undelivered orders are the most recent third: ids 7..9.
  auto it = db.new_order.lower_bound(key_wdo(1, 1, 0));
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), key_wdo(1, 1, 7));
}

TEST(TpccDatabase, TotalDataPagesIsPlausible) {
  TpccScale scale;
  TpccDatabase db(scale);
  sim::Rng rng(1);
  db.populate(rng);
  // 40 warehouses: customer table dominates (120K rows / 12 per page = 10K).
  EXPECT_GT(db.total_data_pages(), 10'000u);
  EXPECT_LT(db.total_data_pages(), 100'000u);
}

}  // namespace
}  // namespace dclue::db
