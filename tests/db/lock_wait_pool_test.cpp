#include <gtest/gtest.h>

#include <vector>

#include "db/lock_manager.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace dclue::db {
namespace {

// Waiter slots come from a per-manager pool recycled by generation-counted
// handles; these tests pin the pool lifecycle across the interleavings the
// model produces: plain grants, timeouts racing releases, and crash purges.

TEST(LockWaitPool, SlotsRecycledAcrossSequentialWaits) {
  sim::Engine e;
  LockManager lm(e);
  ASSERT_TRUE(lm.try_acquire(7, 1));
  for (int round = 0; round < 100; ++round) {
    bool granted = true;
    sim::spawn([](LockManager& lm, bool& g, int id) -> sim::Task<void> {
      g = co_await lm.acquire_wait(7, static_cast<TxnToken>(id), 0.5);
    }(lm, granted, 100 + round));
    e.run();
    EXPECT_FALSE(granted);  // holder never releases; every wait times out
    // One waiter at a time: the pool never needs a second slot, and the
    // timed-out slot is back on the free list before the next round.
    EXPECT_EQ(lm.waiter_pool_size(), 1u);
    EXPECT_EQ(lm.waiter_pool_free(), 1u);
  }
}

TEST(LockWaitPool, ConcurrentWaitersPeakThenDrainToFreeList) {
  sim::Engine e;
  LockManager lm(e);
  ASSERT_TRUE(lm.try_acquire(7, 1));
  int grants = 0;
  constexpr int kWaiters = 16;
  for (int i = 0; i < kWaiters; ++i) {
    sim::spawn([](LockManager& lm, int& g, int id) -> sim::Task<void> {
      if (co_await lm.acquire_wait(7, static_cast<TxnToken>(id), 0.0)) {
        ++g;
        lm.release(7, static_cast<TxnToken>(id));
      }
    }(lm, grants, 100 + i));
  }
  e.after(1.0, [&lm] { lm.release(7, 1); });
  e.run();
  EXPECT_EQ(grants, kWaiters);
  EXPECT_EQ(lm.waiter_pool_size(), static_cast<std::size_t>(kWaiters));
  EXPECT_EQ(lm.waiter_pool_free(), static_cast<std::size_t>(kWaiters));
  // A second contended burst reuses the drained slots: the pool is capped by
  // peak concurrency, not cumulative wait count.
  ASSERT_TRUE(lm.try_acquire(7, 1));
  for (int i = 0; i < kWaiters; ++i) {
    sim::spawn([](LockManager& lm, int& g, int id) -> sim::Task<void> {
      if (co_await lm.acquire_wait(7, static_cast<TxnToken>(id), 0.0)) {
        ++g;
        lm.release(7, static_cast<TxnToken>(id));
      }
    }(lm, grants, 200 + i));
  }
  e.after(1.0, [&lm] { lm.release(7, 1); });
  e.run();
  EXPECT_EQ(grants, 2 * kWaiters);
  EXPECT_EQ(lm.waiter_pool_size(), static_cast<std::size_t>(kWaiters));
}

TEST(LockWaitPool, TimedOutSlotIsFreedAndQueueSkipsIt) {
  sim::Engine e;
  LockManager lm(e);
  ASSERT_TRUE(lm.try_acquire(7, 1));
  bool timed_out_granted = true;
  bool patient_granted = false;
  sim::spawn([](LockManager& lm, bool& g) -> sim::Task<void> {
    g = co_await lm.acquire_wait(7, 2, 0.5);
  }(lm, timed_out_granted));
  sim::spawn([](LockManager& lm, bool& g) -> sim::Task<void> {
    g = co_await lm.acquire_wait(7, 3, 0.0);
    if (g) lm.release(7, 3);
  }(lm, patient_granted));
  e.after(1.0, [&lm] { lm.release(7, 1); });
  e.run();
  EXPECT_FALSE(timed_out_granted);
  EXPECT_TRUE(patient_granted);
  EXPECT_FALSE(lm.is_held(7));
  EXPECT_EQ(lm.waiter_pool_free(), lm.waiter_pool_size());
}

TEST(LockWaitPool, TimeoutRacingSameInstantRelease) {
  // Timeout timer and release land on the same instant. Same-deadline
  // events fire in scheduling order, so the timer (armed at wait start)
  // abandons the waiter first and the release must then skip it, freeing
  // the lock instead of granting a dead wait.
  sim::Engine e;
  LockManager lm(e);
  ASSERT_TRUE(lm.try_acquire(7, 1));
  bool granted = true;
  sim::spawn([](LockManager& lm, bool& g) -> sim::Task<void> {
    g = co_await lm.acquire_wait(7, 2, 0.5);
  }(lm, granted));
  e.after(0.5, [&lm] { lm.release(7, 1); });
  e.run();
  EXPECT_FALSE(granted);
  EXPECT_FALSE(lm.is_held(7));
  EXPECT_TRUE(lm.try_acquire(7, 3));
  EXPECT_EQ(lm.waiter_pool_free(), lm.waiter_pool_size());
}

TEST(LockWaitPool, PurgeWakesDeadWaitersUngrantedAndLiveWaitersGranted) {
  sim::Engine e;
  LockManager lm(e);
  // Holder txn 10 (dead node); waiters: txn 11 (dead), txn 20 (live).
  ASSERT_TRUE(lm.try_acquire(7, 10));
  bool dead_granted = true;
  bool live_granted = false;
  sim::spawn([](LockManager& lm, bool& g) -> sim::Task<void> {
    g = co_await lm.acquire_wait(7, 11, 0.0);
  }(lm, dead_granted));
  sim::spawn([](LockManager& lm, bool& g) -> sim::Task<void> {
    g = co_await lm.acquire_wait(7, 20, 0.0);
  }(lm, live_granted));
  e.after(1.0, [&lm] {
    EXPECT_EQ(lm.purge_if([](TxnToken t) { return t < 20; }), 1u);
  });
  e.run();
  EXPECT_FALSE(dead_granted);
  EXPECT_TRUE(live_granted);
  EXPECT_TRUE(lm.is_held(7));  // re-mastered to txn 20
  EXPECT_FALSE(lm.try_acquire(7, 99));
  EXPECT_EQ(lm.waiter_pool_free(), lm.waiter_pool_size());
}

TEST(LockWaitPool, AbandonedThenPurgedLockLeavesNoLiveSlots) {
  sim::Engine e;
  LockManager lm(e);
  ASSERT_TRUE(lm.try_acquire(7, 10));
  bool granted = true;
  sim::spawn([](LockManager& lm, bool& g) -> sim::Task<void> {
    g = co_await lm.acquire_wait(7, 2, 0.5);
  }(lm, granted));
  // Purge after the waiter timed out: its abandoned queue entry must be
  // skipped (stale generation or abandoned flag), not granted.
  e.after(1.0, [&lm] {
    EXPECT_EQ(lm.purge_if([](TxnToken t) { return t == 10; }), 1u);
  });
  e.run();
  EXPECT_FALSE(granted);
  EXPECT_FALSE(lm.is_held(7));
  EXPECT_EQ(lm.waiter_pool_free(), lm.waiter_pool_size());
  EXPECT_EQ(lm.wait_queue_depth().current(), 0.0);
}

}  // namespace
}  // namespace dclue::db
