#include <gtest/gtest.h>

#include "db/buffer_cache.hpp"
#include "db/lock_manager.hpp"
#include "db/log_manager.hpp"
#include "db/mvcc.hpp"
#include "sim/task.hpp"

namespace dclue::db {
namespace {

PageId pg(std::uint64_t n) { return make_page_id(TableId::kStock, false, n); }

TEST(BufferCache, MissThenHit) {
  BufferCache c(4);
  EXPECT_FALSE(c.contains(pg(1), PageMode::kShared));
  c.insert(pg(1), PageMode::kShared);
  EXPECT_TRUE(c.contains(pg(1), PageMode::kShared));
  EXPECT_FALSE(c.contains(pg(1), PageMode::kExclusive));
  c.upgrade(pg(1));
  EXPECT_TRUE(c.contains(pg(1), PageMode::kExclusive));
}

TEST(BufferCache, LruEviction) {
  BufferCache c(2);
  c.insert(pg(1), PageMode::kShared);
  c.insert(pg(2), PageMode::kShared);
  c.touch(pg(1));  // 2 becomes coldest
  auto evicted = c.insert(pg(3), PageMode::kShared);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], pg(2));
  EXPECT_TRUE(c.resident(pg(1)));
  EXPECT_TRUE(c.resident(pg(3)));
}

TEST(BufferCache, PinnedPagesAreNotEvicted) {
  BufferCache c(2);
  c.insert(pg(1), PageMode::kShared);
  c.pin(pg(1));
  c.insert(pg(2), PageMode::kShared);
  auto evicted = c.insert(pg(3), PageMode::kShared);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], pg(2));
  c.unpin(pg(1));
  evicted = c.insert(pg(4), PageMode::kShared);
  // Over capacity: two evictions allowed now that pg1 is unpinned.
  EXPECT_FALSE(evicted.empty());
}

TEST(BufferCache, InvalidateRemovesPage) {
  BufferCache c(4);
  c.insert(pg(1), PageMode::kExclusive);
  EXPECT_TRUE(c.invalidate(pg(1)));
  EXPECT_FALSE(c.resident(pg(1)));
  EXPECT_FALSE(c.invalidate(pg(1)));
}

TEST(BufferCache, StealForVersionsShrinksCapacity) {
  BufferCache c(4);
  for (int i = 0; i < 4; ++i) c.insert(pg(i), PageMode::kShared);
  auto stolen = c.steal_for_versions(2);
  EXPECT_EQ(stolen.size(), 2u);
  EXPECT_EQ(c.capacity(), 2u);
  c.restore_capacity(2);
  EXPECT_EQ(c.capacity(), 4u);
}

TEST(BufferCache, ReinsertExistingUpgradesMode) {
  BufferCache c(4);
  c.insert(pg(1), PageMode::kShared);
  c.insert(pg(1), PageMode::kExclusive);
  EXPECT_TRUE(c.contains(pg(1), PageMode::kExclusive));
  EXPECT_EQ(c.size(), 1u);
}

TEST(BufferCache, EvictionCostBoundedWithPinnedColdFront) {
  // Regression: eviction used to rescan the recency list from the front,
  // skipping pinned-cold pages on every call — O(pinned prefix) per insert.
  // With the unpinned sublist each eviction examines exactly one entry, no
  // matter how many pinned pages sit at the LRU front.
  constexpr std::size_t kCap = 256;
  constexpr std::size_t kPinned = 200;
  BufferCache c(kCap);
  for (std::size_t i = 0; i < kCap; ++i) c.insert(pg(i), PageMode::kShared);
  // Pin the coldest 200 pages: they stay parked at the recency front.
  for (std::size_t i = 0; i < kPinned; ++i) c.pin(pg(i));
  const auto scans_before = c.evict_scans().count();
  constexpr std::size_t kInserts = 1000;
  for (std::size_t i = 0; i < kInserts; ++i) {
    auto evicted = c.insert(pg(10000 + i), PageMode::kShared);
    ASSERT_EQ(evicted.size(), 1u) << i;
    EXPECT_GE(db::page_number(evicted[0]), kPinned);  // never a pinned page
  }
  // Exactly one entry examined per eviction: cost is per-eviction constant,
  // not proportional to the pinned prefix.
  EXPECT_EQ(c.evict_scans().count() - scans_before, kInserts);
  for (std::size_t i = 0; i < kPinned; ++i) EXPECT_TRUE(c.resident(pg(i)));
}

TEST(BufferCache, UnpinReentersEvictionOrderByRecency) {
  BufferCache c(3);
  c.insert(pg(1), PageMode::kShared);
  c.insert(pg(2), PageMode::kShared);
  c.insert(pg(3), PageMode::kShared);
  c.pin(pg(1));   // coldest, but protected
  c.unpin(pg(1)); // back in play at its recency position (still coldest)
  auto evicted = c.insert(pg(4), PageMode::kShared);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], pg(1));
}

TEST(BufferCache, TouchWhilePinnedKeepsRecencyForLater) {
  BufferCache c(3);
  c.insert(pg(1), PageMode::kShared);
  c.insert(pg(2), PageMode::kShared);
  c.insert(pg(3), PageMode::kShared);
  c.pin(pg(1));
  c.touch(pg(1));  // pinned page touched: now the *hottest*
  c.unpin(pg(1));
  // pg(2) is the coldest unpinned page after pg(1) moved to the hot end.
  auto evicted = c.insert(pg(4), PageMode::kShared);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], pg(2));
}

// ---------------------------------------------------------------------------

TEST(LockManager, TryAcquireConflictsAndReentrancy) {
  sim::Engine e;
  LockManager lm(e);
  EXPECT_TRUE(lm.try_acquire(100, 1));
  EXPECT_TRUE(lm.try_acquire(100, 1));   // reentrant
  EXPECT_FALSE(lm.try_acquire(100, 2));  // conflict
  EXPECT_TRUE(lm.try_acquire(200, 2));   // different lock
  lm.release(100, 1);
  EXPECT_TRUE(lm.try_acquire(100, 2));
}

TEST(LockManager, WaiterGrantedOnRelease) {
  sim::Engine e;
  LockManager lm(e);
  ASSERT_TRUE(lm.try_acquire(7, 1));
  bool granted = false;
  sim::spawn([](LockManager& lm, bool& g) -> sim::Task<void> {
    g = co_await lm.acquire_wait(7, 2, 0.0);
  }(lm, granted));
  e.after(1.0, [&lm] { lm.release(7, 1); });
  e.run();
  EXPECT_TRUE(granted);
  EXPECT_FALSE(lm.try_acquire(7, 3));  // txn 2 now holds it
}

TEST(LockManager, WaitersGrantedFifo) {
  sim::Engine e;
  LockManager lm(e);
  ASSERT_TRUE(lm.try_acquire(7, 1));
  std::vector<int> order;
  for (int i = 2; i <= 4; ++i) {
    sim::spawn([](LockManager& lm, std::vector<int>& order, int id) -> sim::Task<void> {
      if (co_await lm.acquire_wait(7, static_cast<TxnToken>(id), 0.0)) {
        order.push_back(id);
        lm.release(7, static_cast<TxnToken>(id));
      }
    }(lm, order, i));
  }
  e.after(1.0, [&lm] { lm.release(7, 1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4}));
}

TEST(LockManager, WaitTimesOut) {
  sim::Engine e;
  LockManager lm(e);
  ASSERT_TRUE(lm.try_acquire(7, 1));
  bool granted = true;
  sim::Time when = 0.0;
  sim::spawn([](sim::Engine& e, LockManager& lm, bool& g, sim::Time& t) -> sim::Task<void> {
    g = co_await lm.acquire_wait(7, 2, 0.5);
    t = e.now();
  }(e, lm, granted, when));
  e.run();
  EXPECT_FALSE(granted);
  EXPECT_NEAR(when, 0.5, 1e-9);
  // Holder release must skip the abandoned waiter and free the lock.
  lm.release(7, 1);
  EXPECT_TRUE(lm.try_acquire(7, 3));
}

// ---------------------------------------------------------------------------

TEST(VersionManager, ChainHopsCountNewerVersions) {
  sim::Engine e;
  BufferCache cache(16);
  VersionManager vm(e, sim::megabytes(1), cache);
  PageId p = pg(1);
  vm.create_version(p, 0, 10, 128);
  vm.create_version(p, 0, 20, 128);
  vm.create_version(p, 0, 30, 128);
  EXPECT_EQ(vm.chain_hops(p, 0, 30), 0);  // sees newest
  EXPECT_EQ(vm.chain_hops(p, 0, 25), 1);
  EXPECT_EQ(vm.chain_hops(p, 0, 5), 3);
  EXPECT_EQ(vm.current_version(p, 0), 30u);
  EXPECT_EQ(vm.chain_hops(pg(2), 0, 100), 0);  // untouched subpage
}

TEST(VersionManager, OverflowStealsCachePages) {
  sim::Engine e;
  BufferCache cache(16);
  for (int i = 0; i < 16; ++i) cache.insert(pg(i), PageMode::kShared);
  VersionManager vm(e, 256, cache);  // tiny overflow area
  for (int i = 0; i < 10; ++i) vm.create_version(pg(100), i, 10 + i, 128);
  EXPECT_GT(vm.cache_pages_stolen(), 0u);
  EXPECT_LT(cache.capacity(), 16u);
}

TEST(VersionManager, GcReclaimsOldVersions) {
  sim::Engine e;
  BufferCache cache(16);
  VersionManager vm(e, sim::megabytes(1), cache);
  PageId p = pg(1);
  for (int i = 1; i <= 5; ++i) vm.create_version(p, 0, static_cast<Timestamp>(i * 10), 128);
  sim::Bytes freed = vm.gc(100, 128);
  EXPECT_GT(freed, 0);
  // The newest version must survive.
  EXPECT_EQ(vm.current_version(p, 0), 50u);
}

// ---------------------------------------------------------------------------

TEST(LogManager, FlushWritesToDisk) {
  sim::Engine e;
  storage::Disk disk(e, "log", storage::DiskParams{});
  LogManager lm(e, &disk);
  lm.append(4096);
  bool flushed = false;
  sim::spawn([](LogManager& lm, bool& ok) -> sim::Task<void> {
    co_await lm.flush();
    ok = true;
  }(lm, flushed));
  e.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(disk.ops_completed(), 1u);
  EXPECT_EQ(lm.bytes_logged(), 4096);
}

TEST(LogManager, GroupCommitCoalescesConcurrentFlushes) {
  sim::Engine e;
  storage::Disk disk(e, "log", storage::DiskParams{});
  LogManager lm(e, &disk);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    lm.append(512);
    sim::spawn([](LogManager& lm, int& done) -> sim::Task<void> {
      co_await lm.flush();
      ++done;
    }(lm, done));
  }
  e.run();
  EXPECT_EQ(done, 10);
  // Far fewer physical writes than flush() calls.
  EXPECT_LE(disk.ops_completed(), 3u);
  EXPECT_EQ(lm.bytes_logged(), 5120);
}

TEST(LogManager, FlushWithNothingPendingReturnsImmediately) {
  sim::Engine e;
  storage::Disk disk(e, "log", storage::DiskParams{});
  LogManager lm(e, &disk);
  bool done = false;
  sim::spawn([](LogManager& lm, bool& ok) -> sim::Task<void> {
    co_await lm.flush();
    ok = true;
  }(lm, done));
  EXPECT_TRUE(done);  // no events needed
  EXPECT_EQ(disk.ops_completed(), 0u);
}

TEST(LogManager, RemoteFlushDelegates) {
  sim::Engine e;
  LogManager lm(e, nullptr);
  sim::Bytes remote_bytes = 0;
  lm.set_remote_flush([&](sim::Bytes n) -> sim::Task<void> {
    remote_bytes += n;
    co_return;
  });
  lm.append(2048);
  bool done = false;
  sim::spawn([](LogManager& lm, bool& ok) -> sim::Task<void> {
    co_await lm.flush();
    ok = true;
  }(lm, done));
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(remote_bytes, 2048);
}

}  // namespace
}  // namespace dclue::db
