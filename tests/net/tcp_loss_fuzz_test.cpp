/// Seeded loss/reorder/duplication fuzz over a live TCP transfer. A mangler
/// PacketSink is spliced between the receiver's access link and its NIC
/// (Link::connect is the same hook the topology uses), so segments are
/// dropped, duplicated and delayed *on the wire* while the sender's full
/// congestion-control machinery — fast retransmit, RTO with backoff, SACK-ish
/// reassembly — fights back. Properties asserted per seed: the byte stream
/// arrives complete and exactly once, the out-of-order range vector drains
/// to empty (no leaked holes), both recovery mechanisms actually fired, and
/// the whole run reproduces bit-identically.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace dclue::net {
namespace {

constexpr std::uint16_t kPort = 7777;
constexpr sim::Bytes kTotal = 400'000;

CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

/// Interposed between the receiver's downlink and NIC.
struct Mangler : PacketSink {
  sim::Engine* engine = nullptr;
  PacketSink* next = nullptr;
  sim::Rng rng{0};
  bool active = false;
  double drop_p = 0.0;
  double dup_p = 0.0;
  double delay_p = 0.0;
  sim::Duration max_delay = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;

  void deliver(Packet pkt) override {
    if (!active) {
      next->deliver(std::move(pkt));
      return;
    }
    if (drop_p > 0.0 && rng.chance(drop_p)) {
      ++dropped;
      return;
    }
    if (dup_p > 0.0 && rng.chance(dup_p)) {
      ++duplicated;
      next->deliver(pkt);
    }
    if (delay_p > 0.0 && rng.chance(delay_p)) {
      // Hold the segment briefly: later segments overtake it (reordering).
      ++delayed;
      engine->after(rng.uniform(0.0, max_delay),
                    [this, pkt] { next->deliver(pkt); });
      return;
    }
    next->deliver(std::move(pkt));
  }
};

struct FuzzResult {
  sim::Bytes received = 0;
  sim::Bytes delivered_via_handler = 0;
  std::size_t ooo_left = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rto_fires = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;

  bool operator==(const FuzzResult&) const = default;
};

FuzzResult run_fuzz(std::uint64_t seed) {
  sim::Engine engine;
  TopologyParams tp;
  tp.servers_per_lata = 2;
  Topology topo(engine, tp);
  TcpStack a(engine, topo.server_nic(0), TcpParams{}, TcpCostModel{},
             free_cpu());
  TcpStack b(engine, topo.server_nic(1), TcpParams{}, TcpCostModel{},
             free_cpu());

  Mangler mangler;
  mangler.engine = &engine;
  mangler.next = &topo.server_nic(1);
  mangler.rng = sim::RngFactory(seed).stream("fuzz.mangler");
  mangler.drop_p = 0.05;
  mangler.dup_p = 0.05;
  mangler.delay_p = 0.08;
  mangler.max_delay = 0.002;  // several segment times: real reordering
  topo.server_downlink(1).connect(&mangler);

  std::shared_ptr<TcpConnection> server;
  sim::Bytes handler_total = 0;
  auto& listener = b.listen(kPort);
  sim::spawn([](TcpListener& l, std::shared_ptr<TcpConnection>& out,
                sim::Bytes& handler_total) -> sim::Task<void> {
    out = co_await l.accept();
    out->set_rx_handler([&handler_total](sim::Bytes n) { handler_total += n; });
  }(listener, server, handler_total));

  auto conn = a.connect(b.address(), kPort);
  sim::spawn([](sim::Engine& engine, std::shared_ptr<TcpConnection> conn,
                Mangler& mangler) -> sim::Task<void> {
    co_await conn->established().wait();
    // Mangle only the data phase; the handshake went through clean.
    mangler.active = true;
    conn->send(kTotal);
    // Mid-transfer blackout longer than the (scaled) RTO floor: dup-ACK fast
    // retransmit cannot recover a fully dark link, so the RTO path must.
    co_await sim::delay_for(engine, 0.02);
    const double base_drop = mangler.drop_p;
    mangler.drop_p = 1.0;
    co_await sim::delay_for(engine, 0.2);
    mangler.drop_p = base_drop;
  }(engine, conn, mangler));

  engine.run();

  FuzzResult r;
  r.received = server ? server->bytes_received() : -1;
  r.delivered_via_handler = handler_total;
  r.ooo_left = server ? server->ooo_ranges() : 999;
  r.retransmits = a.total_retransmits();
  r.rto_fires = a.rto_fires();
  r.dropped = mangler.dropped;
  r.duplicated = mangler.duplicated;
  r.delayed = mangler.delayed;
  return r;
}

TEST(TcpLossFuzz, SeededStreamsSurviveDropDupReorder) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const FuzzResult r = run_fuzz(seed);
    // Exact reassembly: every byte delivered once, in order, none invented.
    EXPECT_EQ(r.received, kTotal);
    EXPECT_EQ(r.delivered_via_handler, kTotal);
    // The SmallVec hole tracker drained completely.
    EXPECT_EQ(r.ooo_left, 0u);
    // The mangler did real damage and both recovery paths fired: RTO during
    // the blackout, and more retransmits than RTO events means dup-ACK fast
    // retransmits happened too.
    EXPECT_GT(r.dropped, 0u);
    EXPECT_GT(r.duplicated, 0u);
    EXPECT_GT(r.delayed, 0u);
    EXPECT_GT(r.rto_fires, 0u);
    EXPECT_GT(r.retransmits, r.rto_fires);
  }
}

TEST(TcpLossFuzz, SameSeedReproducesExactly) {
  const FuzzResult first = run_fuzz(13);
  const FuzzResult second = run_fuzz(13);
  EXPECT_EQ(first, second);
  const FuzzResult other = run_fuzz(14);
  // Different seed, different damage pattern (sanity that the seed matters).
  EXPECT_FALSE(first.dropped == other.dropped &&
               first.delayed == other.delayed &&
               first.retransmits == other.retransmits);
}

}  // namespace
}  // namespace dclue::net
