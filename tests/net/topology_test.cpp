#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace dclue::net {
namespace {

/// Terminal sink recording arrivals.
struct Recorder : PacketSink {
  int count = 0;
  void deliver(Packet) override { ++count; }
};

TEST(Topology, CountsMatchParams) {
  sim::Engine e;
  TopologyParams tp;
  tp.latas = 2;
  tp.servers_per_lata = 4;
  tp.client_hosts = 3;
  tp.extra_client_hosts = 1;
  tp.extra_servers_per_lata = 1;
  Topology topo(e, tp);
  EXPECT_EQ(topo.num_servers(), 8);
  EXPECT_EQ(topo.num_clients(), 3);
  EXPECT_EQ(topo.num_extra_clients(), 1);
  EXPECT_EQ(topo.num_extra_servers(), 2);
  EXPECT_EQ(topo.lata_of_server(0), 0);
  EXPECT_EQ(topo.lata_of_server(3), 0);
  EXPECT_EQ(topo.lata_of_server(4), 1);
  EXPECT_EQ(topo.lata_of_server(7), 1);
}

TEST(Topology, AddressesAreUnique) {
  sim::Engine e;
  TopologyParams tp;
  tp.latas = 2;
  tp.servers_per_lata = 3;
  tp.client_hosts = 2;
  Topology topo(e, tp);
  std::set<Address> seen;
  for (int i = 0; i < topo.num_servers(); ++i) {
    EXPECT_TRUE(seen.insert(topo.server_nic(i).address()).second);
  }
  for (int i = 0; i < topo.num_clients(); ++i) {
    EXPECT_TRUE(seen.insert(topo.client_nic(i).address()).second);
  }
}

/// A raw packet from any host must reach any other host, across LATAs and
/// through the outer router, with latency reflecting the hop count.
TEST(Topology, RoutesIntraAndInterLata) {
  sim::Engine e;
  TopologyParams tp;
  tp.latas = 2;
  tp.servers_per_lata = 2;
  Topology topo(e, tp);

  auto send_and_time = [&](int from, int to) {
    Recorder sink;
    topo.server_nic(to).set_rx_handler(
        [&sink](Packet pkt) { sink.deliver(std::move(pkt)); });
    Packet pkt;
    pkt.dst = topo.server_nic(to).address();
    pkt.bytes = 1000;
    const sim::Time start = e.now();
    topo.server_nic(from).send(std::move(pkt));
    e.run();
    EXPECT_EQ(sink.count, 1) << from << "->" << to;
    topo.server_nic(to).set_rx_handler({});
    return e.now() - start;
  };

  const sim::Duration intra = send_and_time(0, 1);   // same LATA: 2 links
  const sim::Duration inter = send_and_time(0, 2);   // cross LATA: 4 links
  EXPECT_GT(intra, 0.0);
  EXPECT_GT(inter, intra * 1.5);
}

TEST(Topology, ClientReachesServerThroughOuterRouter) {
  sim::Engine e;
  TopologyParams tp;
  tp.latas = 1;
  tp.servers_per_lata = 2;
  tp.client_hosts = 1;
  Topology topo(e, tp);
  Recorder sink;
  topo.server_nic(1).set_rx_handler([&sink](Packet pkt) { sink.deliver(std::move(pkt)); });
  Packet pkt;
  pkt.dst = topo.server_nic(1).address();
  pkt.bytes = 500;
  topo.client_nic(0).send(std::move(pkt));
  e.run();
  EXPECT_EQ(sink.count, 1);
  EXPECT_EQ(topo.outer_router().forwarded().count(), 1u);
  EXPECT_EQ(topo.inner_router(0).forwarded().count(), 1u);
}

TEST(Topology, ExtraLatencyAppliesToInterLataPathOnly) {
  sim::Engine e1, e2;
  TopologyParams base;
  base.latas = 2;
  base.servers_per_lata = 2;
  TopologyParams slow = base;
  slow.extra_inter_lata_latency = sim::milliseconds(50);

  auto one_way = [](sim::Engine& e, TopologyParams tp, int from, int to) {
    Topology topo(e, tp);
    Recorder sink;
    topo.server_nic(to).set_rx_handler([&sink](Packet p) { sink.deliver(std::move(p)); });
    Packet pkt;
    pkt.dst = topo.server_nic(to).address();
    pkt.bytes = 100;
    topo.server_nic(from).send(std::move(pkt));
    e.run();
    EXPECT_EQ(sink.count, 1);
    return e.now();
  };
  const sim::Duration fast_inter = one_way(e1, base, 0, 2);
  const sim::Duration slow_inter = one_way(e2, slow, 0, 2);
  // One inter-LATA crossing carries half the configured extra latency... on
  // each of the two links of the path (uplink + downlink) = the full extra.
  EXPECT_NEAR(slow_inter - fast_inter, 50e-3, 1e-3);

  sim::Engine e3, e4;
  const sim::Duration fast_intra = one_way(e3, base, 0, 1);
  const sim::Duration slow_intra = one_way(e4, slow, 0, 1);
  EXPECT_NEAR(slow_intra, fast_intra, 1e-9);  // intra-LATA unaffected
}

TEST(Topology, TotalDropsAggregatesQueuesAndRouters) {
  sim::Engine e;
  TopologyParams tp;
  tp.servers_per_lata = 2;
  tp.qos.queue_limit_bytes = {500, 500};
  Topology topo(e, tp);
  // Flood one uplink without draining.
  for (int i = 0; i < 20; ++i) {
    Packet pkt;
    pkt.dst = topo.server_nic(1).address();
    pkt.bytes = 400;
    topo.server_nic(0).send(std::move(pkt));
  }
  EXPECT_GT(topo.total_drops(), 0u);
}

}  // namespace
}  // namespace dclue::net
