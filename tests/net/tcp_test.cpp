#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/task.hpp"

namespace dclue::net {
namespace {

CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

/// Two servers in one LATA with TCP stacks and a free (infinite) CPU.
struct Harness {
  sim::Engine engine;
  TopologyParams tp;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<TcpStack> a;
  std::unique_ptr<TcpStack> b;

  explicit Harness(TopologyParams p = {}, TcpParams tcp = {}) : tp(p) {
    tp.servers_per_lata = std::max(tp.servers_per_lata, 2);
    topo = std::make_unique<Topology>(engine, tp);
    a = std::make_unique<TcpStack>(engine, topo->server_nic(0), tcp,
                                   TcpCostModel{}, free_cpu());
    b = std::make_unique<TcpStack>(engine, topo->server_nic(1), tcp,
                                   TcpCostModel{}, free_cpu());
  }
};

TEST(Tcp, HandshakeEstablishesBothEnds) {
  Harness h;
  auto& listener = h.b->listen(5000);
  bool accepted = false;
  sim::spawn([](TcpListener& l, bool& ok) -> sim::Task<void> {
    auto conn = co_await l.accept();
    ok = conn->state() == TcpConnection::State::kEstablished;
  }(listener, accepted));
  auto conn = h.a->connect(h.b->address(), 5000);
  bool connected = false;
  sim::spawn([](std::shared_ptr<TcpConnection> c, bool& ok) -> sim::Task<void> {
    co_await c->established().wait();
    ok = true;
  }(conn, connected));
  h.engine.run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(accepted);
}

TEST(Tcp, DeliversExactByteCount) {
  Harness h;
  auto& listener = h.b->listen(5000);
  sim::Bytes received = 0;
  sim::spawn([](TcpListener& l, sim::Bytes& got) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([&got](sim::Bytes n) { got += n; });
  }(listener, received));
  auto conn = h.a->connect(h.b->address(), 5000);
  conn->send(100'000);
  h.engine.run();
  EXPECT_EQ(received, 100'000);
}

TEST(Tcp, LargeTransferApproachesLinkRate) {
  Harness h;
  auto& listener = h.b->listen(5000);
  sim::Bytes received = 0;
  sim::Time done = 0.0;
  sim::spawn([](Harness& h, TcpListener& l, sim::Bytes& got,
                sim::Time& done) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([&](sim::Bytes n) {
      got += n;
      if (got >= 10'000'000) done = h.engine.now();
    });
  }(h, listener, received, done));
  auto conn = h.a->connect(h.b->address(), 5000);
  conn->send(10'000'000);
  h.engine.run();
  ASSERT_GT(done, 0.0);
  double rate = 10e6 * 8 / done;
  // Two hops of 1 Gb/s with header overhead: expect > 60% of line rate.
  EXPECT_GT(rate, 0.6e9);
  EXPECT_LT(rate, 1.0e9);
}

TEST(Tcp, ReceiveWindowBoundsThroughputOverLongPath) {
  TopologyParams tp;
  tp.host_link_prop = sim::milliseconds(5);  // RTT ~20ms via 4 links
  Harness h(tp);
  auto& listener = h.b->listen(5000);
  sim::Bytes received = 0;
  sim::Time done = 0.0;
  sim::spawn([](Harness& h, TcpListener& l, sim::Bytes& got,
                sim::Time& done) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([&](sim::Bytes n) {
      got += n;
      if (got >= 2'000'000) done = h.engine.now();
    });
  }(h, listener, received, done));
  auto conn = h.a->connect(h.b->address(), 5000);
  conn->send(2'000'000);
  h.engine.run();
  ASSERT_GT(done, 0.0);
  double rate = 2e6 * 8 / done;
  // 64KB window over ~20ms RTT caps around 26 Mb/s; allow slack.
  EXPECT_LT(rate, 40e6);
}

TEST(Tcp, RecoversFromTailDrops) {
  TopologyParams tp;
  tp.qos.queue_limit_bytes = {sim::kilobytes(8), sim::kilobytes(8)};
  tp.qos.ecn_mark_threshold_bytes = 0;  // force drops, not marks
  Harness h(tp);
  auto& listener = h.b->listen(5000);
  sim::Bytes received = 0;
  sim::spawn([](TcpListener& l, sim::Bytes& got) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([&got](sim::Bytes n) { got += n; });
  }(listener, received));
  auto conn = h.a->connect(h.b->address(), 5000);
  conn->send(2'000'000);
  h.engine.run();
  EXPECT_EQ(received, 2'000'000);
  EXPECT_GT(h.topo->total_drops(), 0u);
  EXPECT_GT(h.a->total_retransmits(), 0u);
}

TEST(Tcp, EcnAvoidsDropsOnCongestion) {
  TopologyParams tp;
  tp.qos.queue_limit_bytes = {sim::kilobytes(64), sim::kilobytes(64)};
  tp.qos.ecn_mark_threshold_bytes = sim::kilobytes(16);
  Harness h(tp);
  auto& listener = h.b->listen(5000);
  sim::Bytes received = 0;
  sim::spawn([](TcpListener& l, sim::Bytes& got) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([&got](sim::Bytes n) { got += n; });
  }(listener, received));
  auto conn = h.a->connect(h.b->address(), 5000);
  conn->send(5'000'000);
  h.engine.run();
  EXPECT_EQ(received, 5'000'000);
}

TEST(Tcp, CloseTearsDownBothStacks) {
  Harness h;
  auto& listener = h.b->listen(5000);
  sim::spawn([](TcpListener& l) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([](sim::Bytes) {});
    conn->close();
  }(listener));
  auto conn = h.a->connect(h.b->address(), 5000);
  conn->send(10'000);
  sim::spawn([](std::shared_ptr<TcpConnection> c) -> sim::Task<void> {
    co_await c->wait_all_acked();
    c->close();
  }(conn));
  h.engine.run();
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(h.a->open_connections(), 0u);
  EXPECT_EQ(h.b->open_connections(), 0u);
}

TEST(Tcp, SequentialConnectionChurnDoesNotLeak) {
  Harness h;
  auto& listener = h.b->listen(21);
  // Echo-less sink server: accept, read, close on FIN.
  sim::spawn([](TcpListener& l) -> sim::Task<void> {
    for (;;) {
      auto conn = co_await l.accept();
      conn->set_rx_handler([](sim::Bytes) {});
      conn->close();
    }
  }(listener));
  int completed = 0;
  sim::spawn([](Harness& h, int& completed) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      auto conn = h.a->connect(h.b->address(), 21);
      co_await conn->established().wait();
      conn->send(50'000);
      co_await conn->wait_all_acked();
      conn->close();
      ++completed;
    }
  }(h, completed));
  h.engine.run();
  EXPECT_EQ(completed, 20);
  EXPECT_LE(h.a->open_connections(), 1u);
  EXPECT_LE(h.b->open_connections(), 1u);
}

TEST(Tcp, WaitAllAckedReleasesAfterDelivery) {
  Harness h;
  auto& listener = h.b->listen(5000);
  sim::spawn([](TcpListener& l) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([](sim::Bytes) {});
  }(listener));
  auto conn = h.a->connect(h.b->address(), 5000);
  bool acked = false;
  conn->send(100'000);
  sim::spawn([](std::shared_ptr<TcpConnection> c, bool& acked) -> sim::Task<void> {
    co_await c->wait_all_acked();
    acked = c->bytes_sent_acked() >= 100'000;
  }(conn, acked));
  h.engine.run();
  EXPECT_TRUE(acked);
}

TEST(Tcp, TwoSimultaneousConnectionsShareFairly) {
  TopologyParams tp;
  tp.servers_per_lata = 3;
  Harness h(tp);
  auto c_stack = std::make_unique<TcpStack>(h.engine, h.topo->server_nic(2),
                                            TcpParams{}, TcpCostModel{}, free_cpu());
  auto& listener = h.b->listen(5000);
  std::array<sim::Bytes, 2> got{};
  sim::spawn([](TcpListener& l, std::array<sim::Bytes, 2>& got) -> sim::Task<void> {
    for (int i = 0; i < 2; ++i) {
      auto conn = co_await l.accept();
      auto* slot = &got[i];
      conn->set_rx_handler([slot](sim::Bytes n) { *slot += n; });
    }
  }(listener, got));
  auto c1 = h.a->connect(h.b->address(), 5000);
  auto c2 = c_stack->connect(h.b->address(), 5000);
  c1->send(3'000'000);
  c2->send(3'000'000);
  h.engine.run();
  EXPECT_EQ(got[0] + got[1], 6'000'000);
}

TEST(Tcp, ResetAfterRetransmissionLimit) {
  // Connect to an address with no listener-side network: drop everything by
  // using a tiny queue on the victim's links is complex; instead connect to a
  // port nobody listens on — SYN is ignored, RTOs accumulate, reset fires.
  TcpParams tcp;
  tcp.max_retransmits = 3;
  Harness h({}, tcp);
  auto conn = h.a->connect(h.b->address(), 4242);  // no listener
  bool reset = false;
  conn->add_reset_handler([&reset] { reset = true; });
  h.engine.run();
  EXPECT_TRUE(reset);
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(h.a->open_connections(), 0u);
}

}  // namespace
}  // namespace dclue::net
