#include "net/qos.hpp"

#include <gtest/gtest.h>

namespace dclue::net {
namespace {

Packet make_packet(sim::Bytes bytes, Dscp dscp, sim::Bytes payload = 0) {
  Packet p;
  p.bytes = bytes;
  p.dscp = dscp;
  p.seg.len = payload;
  return p;
}

TEST(OutputQueue, FifoWithinClass) {
  OutputQueue q;
  for (int i = 1; i <= 3; ++i) {
    q.enqueue(make_packet(i * 100, Dscp::kBestEffort), 0.0);
  }
  EXPECT_EQ(q.dequeue(1.0)->bytes, 100);
  EXPECT_EQ(q.dequeue(1.0)->bytes, 200);
  EXPECT_EQ(q.dequeue(1.0)->bytes, 300);
  EXPECT_FALSE(q.dequeue(1.0).has_value());
}

TEST(OutputQueue, StrictPriorityServesAfFirst) {
  OutputQueue q;
  q.enqueue(make_packet(100, Dscp::kBestEffort), 0.0);
  q.enqueue(make_packet(200, Dscp::kAF21), 0.0);
  q.enqueue(make_packet(300, Dscp::kBestEffort), 0.0);
  EXPECT_EQ(q.dequeue(1.0)->bytes, 200);  // AF21 jumps the line
  EXPECT_EQ(q.dequeue(1.0)->bytes, 100);
  EXPECT_EQ(q.dequeue(1.0)->bytes, 300);
}

TEST(OutputQueue, NonPriorityModeIsGlobalFifo) {
  QosParams p;
  p.scheduler = QueueScheduler::kFifo;
  OutputQueue q(p);
  q.enqueue(make_packet(100, Dscp::kBestEffort), 0.0);
  q.enqueue(make_packet(200, Dscp::kAF21), 1.0);
  q.enqueue(make_packet(300, Dscp::kBestEffort), 2.0);
  EXPECT_EQ(q.dequeue(3.0)->bytes, 100);
  EXPECT_EQ(q.dequeue(3.0)->bytes, 200);
  EXPECT_EQ(q.dequeue(3.0)->bytes, 300);
}

TEST(OutputQueue, TailDropWhenClassFull) {
  QosParams p;
  p.queue_limit_bytes = {1000, 1000};
  p.ecn_mark_threshold_bytes = 0;
  OutputQueue q(p);
  EXPECT_TRUE(q.enqueue(make_packet(600, Dscp::kBestEffort), 0.0));
  EXPECT_TRUE(q.enqueue(make_packet(400, Dscp::kBestEffort), 0.0));
  EXPECT_FALSE(q.enqueue(make_packet(1, Dscp::kBestEffort), 0.0));
  EXPECT_EQ(q.drops().count(), 1u);
  // The other class still has room.
  EXPECT_TRUE(q.enqueue(make_packet(500, Dscp::kAF21), 0.0));
}

TEST(OutputQueue, EcnMarksDataPacketsAboveThreshold) {
  QosParams p;
  p.queue_limit_bytes = {100000, 100000};
  p.ecn_mark_threshold_bytes = 1000;
  OutputQueue q(p);
  // Fill past the mark threshold.
  EXPECT_TRUE(q.enqueue(make_packet(1200, Dscp::kBestEffort, 1142), 0.0));
  EXPECT_TRUE(q.enqueue(make_packet(500, Dscp::kBestEffort, 442), 0.0));
  EXPECT_EQ(q.ecn_marks().count(), 1u);
  q.dequeue(0.0);
  auto marked = q.dequeue(0.0);
  ASSERT_TRUE(marked.has_value());
  EXPECT_TRUE(marked->seg.ce);
}

TEST(OutputQueue, PureAcksAreNotEcnMarked) {
  QosParams p;
  p.ecn_mark_threshold_bytes = 100;
  OutputQueue q(p);
  q.enqueue(make_packet(500, Dscp::kBestEffort, 442), 0.0);
  q.enqueue(make_packet(58, Dscp::kBestEffort, 0), 0.0);  // pure ack
  EXPECT_EQ(q.ecn_marks().count(), 0u);
}

TEST(OutputQueue, QueueDelayMeasured) {
  OutputQueue q;
  q.enqueue(make_packet(100, Dscp::kBestEffort), 1.0);
  q.dequeue(4.0);
  EXPECT_DOUBLE_EQ(q.queue_delay().mean(), 3.0);
}

TEST(OutputQueue, WfqInterleavesByWeight) {
  QosParams p;
  p.scheduler = QueueScheduler::kWfq;
  p.wfq_weight = {3.0, 1.0};  // BE gets 3x the AF bandwidth
  OutputQueue q(p);
  for (int i = 0; i < 8; ++i) {
    q.enqueue(make_packet(1000, Dscp::kBestEffort), 0.0);
    q.enqueue(make_packet(1000, Dscp::kAF21), 0.0);
  }
  // Drain 8 packets: the 3:1 weights should yield ~6 BE and ~2 AF.
  int be = 0;
  for (int i = 0; i < 8; ++i) {
    auto pkt = q.dequeue(0.0);
    ASSERT_TRUE(pkt.has_value());
    if (pkt->dscp == Dscp::kBestEffort) ++be;
  }
  EXPECT_GE(be, 5);
  EXPECT_LE(be, 7);
}

TEST(OutputQueue, WfqStillServesLowWeightClass) {
  QosParams p;
  p.scheduler = QueueScheduler::kWfq;
  p.wfq_weight = {10.0, 1.0};
  OutputQueue q(p);
  q.enqueue(make_packet(1000, Dscp::kAF21), 0.0);
  for (int i = 0; i < 20; ++i) q.enqueue(make_packet(1000, Dscp::kBestEffort), 0.0);
  // The AF packet must drain within its fair share, not starve.
  bool seen_af = false;
  for (int i = 0; i < 12 && !seen_af; ++i) {
    auto pkt = q.dequeue(0.0);
    ASSERT_TRUE(pkt.has_value());
    seen_af = pkt->dscp == Dscp::kAF21;
  }
  EXPECT_TRUE(seen_af);
}

TEST(OutputQueue, WredDropsEarlyUnderSustainedOccupancy) {
  QosParams p;
  p.drop = DropPolicy::kWred;
  p.queue_limit_bytes = {20'000, 20'000};
  p.wred_min_fraction = 0.1;
  p.wred_max_fraction = 0.4;
  p.wred_max_p = 1.0;
  OutputQueue q(p);
  int rejected = 0;
  for (int i = 0; i < 60; ++i) {
    if (!q.enqueue(make_packet(1000, Dscp::kBestEffort, 900), 0.0)) ++rejected;
  }
  // Early drops kick in well before the 20-packet tail limit.
  EXPECT_GT(rejected, 30);
  EXPECT_LT(q.queued_bytes(), 20'000);
}

TEST(OutputQueue, WredMarksInsteadOfDroppingWhenEcnEnabled) {
  QosParams p;
  p.drop = DropPolicy::kWred;
  p.ecn_mark_threshold_bytes = 1;  // enables marking in WRED mode
  p.queue_limit_bytes = {50'000, 50'000};
  p.wred_min_fraction = 0.02;
  p.wred_max_fraction = 0.9;
  p.wred_max_p = 1.0;
  OutputQueue q(p);
  for (int i = 0; i < 30; ++i) {
    q.enqueue(make_packet(1000, Dscp::kBestEffort, 900), 0.0);
  }
  EXPECT_GT(q.ecn_marks().count(), 0u);
}

TEST(OutputQueue, TokenBucketPolicesNonconformingTraffic) {
  QosParams p;
  p.police[static_cast<int>(Dscp::kAF21)] = {8'000.0, 2'000};  // 1 KB/s, 2 KB burst
  OutputQueue q(p);
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (q.enqueue(make_packet(1000, Dscp::kAF21), 0.0)) ++admitted;
  }
  EXPECT_EQ(admitted, 2);  // burst allowance only
  EXPECT_EQ(q.policed_drops().count(), 8u);
  // Tokens refill with time.
  EXPECT_TRUE(q.enqueue(make_packet(1000, Dscp::kAF21), 10.0));
  // Unpoliced class is unaffected.
  EXPECT_TRUE(q.enqueue(make_packet(1000, Dscp::kBestEffort), 0.0));
}

TEST(OutputQueue, QueuedBytesTracksOccupancy) {
  OutputQueue q;
  q.enqueue(make_packet(100, Dscp::kBestEffort), 0.0);
  q.enqueue(make_packet(200, Dscp::kAF21), 0.0);
  EXPECT_EQ(q.queued_bytes(), 300);
  q.dequeue(0.0);
  EXPECT_EQ(q.queued_bytes(), 100);
}

TEST(OutputQueue, WfqServesByVirtualFinishTimeNotArrival) {
  QosParams p;
  p.scheduler = QueueScheduler::kWfq;
  p.wfq_weight = {1.0, 1.0};
  OutputQueue q(p);
  // A large best-effort packet arrives first (finish 3000), then two small
  // AF21 packets (finishes 500 and 1000). WFQ serves by finish time, so the
  // later small packets overtake the earlier large one — neither FIFO order
  // nor strict priority explains this schedule.
  q.enqueue(make_packet(3000, Dscp::kBestEffort), 0.0);
  q.enqueue(make_packet(500, Dscp::kAF21), 0.0);
  q.enqueue(make_packet(500, Dscp::kAF21), 0.0);
  EXPECT_EQ(q.dequeue(1.0)->bytes, 500);
  EXPECT_EQ(q.dequeue(1.0)->bytes, 500);
  EXPECT_EQ(q.dequeue(1.0)->bytes, 3000);
}

TEST(OutputQueue, WfqWeightScalesFinishTimes) {
  QosParams p;
  p.scheduler = QueueScheduler::kWfq;
  p.wfq_weight = {1.0, 4.0};  // AF21 finishes accrue 4x slower
  OutputQueue q(p);
  // Equal sizes: BE finish = 1000, AF finishes = 250, 500, 750. All three
  // AF21 packets clear before the equally-sized best-effort one.
  q.enqueue(make_packet(1000, Dscp::kBestEffort), 0.0);
  for (int i = 0; i < 3; ++i) q.enqueue(make_packet(1000, Dscp::kAF21), 0.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.dequeue(1.0)->dscp, Dscp::kAF21);
  }
  EXPECT_EQ(q.dequeue(1.0)->dscp, Dscp::kBestEffort);
}

TEST(OutputQueue, TokenBucketRefillsAtConfiguredRate) {
  QosParams p;
  p.police[0] = TokenBucket{8000.0, 1000};  // 1000 bytes/sec, 1000 B burst
  OutputQueue q(p);
  // The full burst admits one 1000-byte packet and drains the bucket.
  EXPECT_TRUE(q.enqueue(make_packet(1000, Dscp::kBestEffort), 0.0));
  EXPECT_FALSE(q.enqueue(make_packet(1000, Dscp::kBestEffort), 0.0));
  EXPECT_EQ(q.policed_drops().count(), 1u);
  // Half a second refills only 500 bytes: still non-conforming.
  EXPECT_FALSE(q.enqueue(make_packet(1000, Dscp::kBestEffort), 0.5));
  // By t=1.6 the bucket has refilled past 1000 (capped at the burst size).
  EXPECT_TRUE(q.enqueue(make_packet(1000, Dscp::kBestEffort), 1.6));
  EXPECT_EQ(q.policed_drops().count(), 2u);
  // The unpoliced class is never throttled.
  EXPECT_TRUE(q.enqueue(make_packet(1000, Dscp::kAF21), 1.6));
}

TEST(OutputQueue, RingStorageSurvivesWrapAndGrowth) {
  // Post-deque-swap regression: hold occupancy above the ring's initial
  // capacity while cycling thousands of packets through, so the head index
  // wraps repeatedly and the buffer grows mid-stream. FIFO order and byte
  // accounting must hold throughout.
  OutputQueue q;
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (next_in - next_out < 24) {
      ASSERT_TRUE(
          q.enqueue(make_packet(100 + (next_in % 7), Dscp::kBestEffort), 0.0));
      ++next_in;
    }
    for (int k = 0; k < 8; ++k) {
      auto pkt = q.dequeue(0.0);
      ASSERT_TRUE(pkt.has_value());
      EXPECT_EQ(pkt->bytes, 100 + (next_out % 7));
      ++next_out;
    }
  }
  EXPECT_EQ(q.drops().count(), 0u);
}

}  // namespace
}  // namespace dclue::net
