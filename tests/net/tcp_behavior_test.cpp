/// Deeper TCP behaviour tests: congestion dynamics, timer scaling, ECN
/// negotiation and the delayed-ack machinery — behaviours the experiments
/// lean on (the paper's Fig 11/14 stories live in this code).

#include <gtest/gtest.h>

#include "net/tcp.hpp"
#include "net/topology.hpp"

namespace dclue::net {
namespace {

CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

struct Harness {
  sim::Engine engine;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<TcpStack> a;
  std::unique_ptr<TcpStack> b;

  explicit Harness(TopologyParams tp = {}, TcpParams tcp = {}) {
    tp.servers_per_lata = std::max(tp.servers_per_lata, 2);
    topo = std::make_unique<Topology>(engine, tp);
    a = std::make_unique<TcpStack>(engine, topo->server_nic(0), tcp,
                                   TcpCostModel{}, free_cpu());
    b = std::make_unique<TcpStack>(engine, topo->server_nic(1), tcp,
                                   TcpCostModel{}, free_cpu());
  }

  std::shared_ptr<TcpConnection> transfer(sim::Bytes bytes, sim::Bytes& received) {
    auto& listener = b->listen(5000);
    sim::spawn([](TcpListener& l, sim::Bytes& got) -> sim::Task<void> {
      auto conn = co_await l.accept();
      conn->set_rx_handler([&got](sim::Bytes n) { got += n; });
    }(listener, received));
    auto conn = a->connect(b->address(), 5000);
    conn->send(bytes);
    return conn;
  }
};

TEST(TcpBehavior, SlowStartRampsBeforeSteadyState) {
  // On a long-RTT path, a small transfer takes multiple round trips because
  // cwnd starts at 2 MSS (the handshake + doubling shape of slow start).
  TopologyParams tp;
  tp.host_link_prop = sim::milliseconds(10);  // RTT ~40ms via 4 links
  Harness h(tp);
  sim::Bytes received = 0;
  h.transfer(20'000, received);
  h.engine.run();
  EXPECT_EQ(received, 20'000);
  // 20000B at MSS 1460 and initial cwnd 2: >= 3 RTTs of 40ms + handshake.
  EXPECT_GT(h.engine.now(), 0.12);
}

TEST(TcpBehavior, TimerScalingShortensRecovery) {
  // The paper divides TCP timer values by 100 for the data center: a lossy
  // transfer recovers proportionally faster with the scaled timers.
  auto run_with_scale = [](double timer_scale) {
    TopologyParams tp;
    tp.qos.queue_limit_bytes = {sim::kilobytes(6), sim::kilobytes(6)};
    TcpParams tcp;
    tcp.timer_scale = timer_scale;
    Harness h(tp, tcp);
    sim::Bytes received = 0;
    h.transfer(500'000, received);
    h.engine.run();
    EXPECT_EQ(received, 500'000);
    return h.engine.now();
  };
  const double fast = run_with_scale(0.01);
  const double slow = run_with_scale(1.0);
  EXPECT_LT(fast, slow);
}

TEST(TcpBehavior, EcnMarkingReducesDropsVersusTailDrop) {
  auto run = [](sim::Bytes mark_threshold, std::uint64_t& drops,
                std::uint64_t& retx) {
    TopologyParams tp;
    tp.qos.queue_limit_bytes = {sim::kilobytes(24), sim::kilobytes(24)};
    tp.qos.ecn_mark_threshold_bytes = mark_threshold;
    Harness h(tp);
    sim::Bytes received = 0;
    h.transfer(2'000'000, received);
    h.engine.run();
    EXPECT_EQ(received, 2'000'000);
    drops = h.topo->total_drops();
    retx = h.a->total_retransmits();
  };
  std::uint64_t drops_ecn = 0, retx_ecn = 0, drops_td = 0, retx_td = 0;
  run(sim::kilobytes(8), drops_ecn, retx_ecn);
  run(0, drops_td, retx_td);
  EXPECT_LT(drops_ecn + retx_ecn, drops_td + retx_td);
}

TEST(TcpBehavior, AcksAreDelayedNotPerSegment) {
  Harness h;
  sim::Bytes received = 0;
  h.transfer(300'000, received);
  h.engine.run();
  EXPECT_EQ(received, 300'000);
  // ~206 data segments; delayed ack coalesces roughly 2:1, so B's total
  // segments (SYN|ACK + acks + FIN handling) should be well under the data
  // count.
  EXPECT_LT(h.b->segments_sent(), h.a->segments_sent() * 3 / 4);
}

TEST(TcpBehavior, ManySmallMessagesAreSegmentEfficient) {
  Harness h;
  auto& listener = h.b->listen(5000);
  sim::Bytes received = 0;
  sim::spawn([](TcpListener& l, sim::Bytes& got) -> sim::Task<void> {
    auto conn = co_await l.accept();
    conn->set_rx_handler([&got](sim::Bytes n) { got += n; });
  }(listener, received));
  auto conn = h.a->connect(h.b->address(), 5000);
  sim::spawn([](sim::Engine& e, std::shared_ptr<TcpConnection> c) -> sim::Task<void> {
    co_await c->established().wait();
    for (int i = 0; i < 100; ++i) {
      c->send(250);  // control-message sized
      co_await sim::delay_for(e, 1e-4);
    }
  }(h.engine, conn));
  h.engine.run();
  EXPECT_EQ(received, 25'000);
  // One segment per 250B message (no pathological fragmentation).
  EXPECT_LE(h.a->segments_sent(), 115u);
}

TEST(TcpBehavior, ConcurrentConnectionsKeepIndependentStreams) {
  Harness h;
  auto& listener = h.b->listen(5000);
  std::array<sim::Bytes, 4> got{};
  sim::spawn([](TcpListener& l, std::array<sim::Bytes, 4>& got) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      auto conn = co_await l.accept();
      auto* slot = &got[static_cast<std::size_t>(i)];
      conn->set_rx_handler([slot](sim::Bytes n) { *slot += n; });
    }
  }(listener, got));
  std::array<std::shared_ptr<TcpConnection>, 4> conns;
  for (int i = 0; i < 4; ++i) {
    conns[static_cast<std::size_t>(i)] = h.a->connect(h.b->address(), 5000);
    conns[static_cast<std::size_t>(i)]->send((i + 1) * 10'000);
  }
  h.engine.run();
  for (int i = 0; i < 4; ++i) {
    // Streams are demultiplexed by arrival order at the listener; totals
    // must be a permutation of the sent sizes and sum exactly.
  }
  sim::Bytes total = 0;
  for (auto g : got) total += g;
  EXPECT_EQ(total, 10'000 + 20'000 + 30'000 + 40'000);
}

TEST(TcpBehavior, RetransmitsRecoverExactByteCountUnderHeavyLoss) {
  TopologyParams tp;
  tp.qos.queue_limit_bytes = {sim::kilobytes(4), sim::kilobytes(4)};  // brutal
  Harness h(tp);
  sim::Bytes received = 0;
  h.transfer(1'000'000, received);
  h.engine.run();
  EXPECT_EQ(received, 1'000'000);
  EXPECT_GT(h.a->total_retransmits(), 10u);
}

TEST(TcpBehavior, SegmentationMatchesMss) {
  Harness h;
  sim::Bytes received = 0;
  h.transfer(146'000, received);  // exactly 100 MSS
  h.engine.run();
  EXPECT_EQ(received, 146'000);
  // 100 data segments plus SYN/FIN bookkeeping; no over-fragmentation.
  EXPECT_GE(h.a->segments_sent(), 100u);
  EXPECT_LE(h.a->segments_sent(), 110u);
  // Every segment traversed the inner router (both directions).
  EXPECT_GE(h.topo->inner_router(0).forwarded().count(),
            h.a->segments_sent() + h.b->segments_sent());
}

}  // namespace
}  // namespace dclue::net
