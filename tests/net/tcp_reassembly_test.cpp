/// Receiver-side reassembly tests: segments are injected straight into the
/// server NIC (zero protocol costs make rx processing fully synchronous), so
/// each test controls exact arrival order — holes, adjacent runs, overlapping
/// retransmissions and duplicates. The assertions pin the externally visible
/// contract of the out-of-order range vector: every byte is delivered to the
/// application exactly once, in order, as soon as it becomes contiguous.

#include <gtest/gtest.h>

#include <vector>

#include "net/tcp.hpp"
#include "net/topology.hpp"

namespace dclue::net {
namespace {

CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

constexpr std::uint64_t kConnId = 4242;
constexpr std::uint16_t kPort = 7777;

struct Harness {
  sim::Engine engine;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<TcpStack> a;
  std::unique_ptr<TcpStack> b;
  std::shared_ptr<TcpConnection> server;
  std::vector<sim::Bytes> deliveries;

  Harness() {
    TopologyParams tp;
    tp.servers_per_lata = 2;
    topo = std::make_unique<Topology>(engine, tp);
    a = std::make_unique<TcpStack>(engine, topo->server_nic(0), TcpParams{},
                                   TcpCostModel{}, free_cpu());
    b = std::make_unique<TcpStack>(engine, topo->server_nic(1), TcpParams{},
                                   TcpCostModel{}, free_cpu());
    auto& listener = b->listen(kPort);
    sim::spawn([](TcpListener& l,
                  std::shared_ptr<TcpConnection>& out) -> sim::Task<void> {
      out = co_await l.accept();
    }(listener, server));
    // Handshake by injection: SYN creates the passive connection, the bare
    // ACK completes it (the server's SYN|ACK reaches stack `a`, which has no
    // matching connection and ignores it).
    inject(/*seq=*/0, /*len=*/0, /*is_ack=*/false, /*syn=*/true);
    inject(/*seq=*/0, /*len=*/0, /*is_ack=*/true);
    engine.run();
    EXPECT_NE(server, nullptr);
    server->set_rx_handler([this](sim::Bytes n) { deliveries.push_back(n); });
  }

  /// Hand a crafted segment to the server NIC as if it had arrived on the
  /// wire from host `a`.
  void inject(std::int64_t seq, sim::Bytes len, bool is_ack = false,
              bool syn = false) {
    Packet p;
    p.src = a->address();
    p.dst = b->address();
    p.bytes = len + kHeaderBytes;
    p.seg.conn_id = kConnId;
    p.seg.dst_port = kPort;
    p.seg.seq = seq;
    p.seg.len = len;
    p.seg.syn = syn;
    p.seg.is_ack = is_ack;
    topo->server_nic(1).deliver(std::move(p));
  }

  [[nodiscard]] sim::Bytes total_delivered() const {
    sim::Bytes n = 0;
    for (auto d : deliveries) n += d;
    return n;
  }
};

TEST(TcpReassembly, HoleCreatedThenFilledDeliversOnce) {
  Harness h;
  h.inject(1000, 500);  // beyond rcv_nxt: buffered, nothing delivered
  EXPECT_TRUE(h.deliveries.empty());
  EXPECT_EQ(h.server->bytes_received(), 0);
  h.inject(0, 1000);  // fills the hole: the whole prefix arrives at once
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0], 1500);
  EXPECT_EQ(h.server->bytes_received(), 1500);
  h.engine.run();  // drain the acks this produced
}

TEST(TcpReassembly, AdjacentOutOfOrderRunsCoalesce) {
  Harness h;
  h.inject(2000, 500);
  h.inject(2500, 500);  // touches the previous run: one range [2000, 3000)
  EXPECT_TRUE(h.deliveries.empty());
  h.inject(0, 1460);  // in-order prefix, still short of the buffered run
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0], 1460);
  h.inject(1460, 540);  // closes the gap: the coalesced run arrives whole
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[1], 540 + 1000);
  EXPECT_EQ(h.server->bytes_received(), 3000);
  h.engine.run();
}

TEST(TcpReassembly, RetransmitFillsMiddleHoleOfSeveral) {
  Harness h;
  h.inject(0, 1000);
  h.inject(2000, 1000);
  h.inject(4000, 1000);  // two separate holes: [1000,2000) and [3000,4000)
  EXPECT_EQ(h.total_delivered(), 1000);
  h.inject(1000, 1000);  // fill the first hole only
  EXPECT_EQ(h.total_delivered(), 3000);
  h.inject(3000, 1000);  // fill the second
  EXPECT_EQ(h.total_delivered(), 5000);
  EXPECT_EQ(h.server->bytes_received(), 5000);
  h.engine.run();
}

TEST(TcpReassembly, DuplicatesDeliverNothingTwice) {
  Harness h;
  h.inject(0, 1000);
  h.inject(0, 1000);  // duplicate of delivered data: no effect
  EXPECT_EQ(h.total_delivered(), 1000);
  h.inject(2000, 1000);
  h.inject(2000, 1000);  // duplicate of a buffered out-of-order run
  EXPECT_EQ(h.total_delivered(), 1000);
  h.inject(1000, 1000);  // close the hole
  EXPECT_EQ(h.total_delivered(), 3000);
  EXPECT_EQ(h.server->bytes_received(), 3000);
  h.engine.run();
}

TEST(TcpReassembly, OverlappingRetransmitDeliversEachByteOnce) {
  Harness h;
  h.inject(0, 1460);
  h.inject(2920, 1460);  // hole at [1460, 2920)
  EXPECT_EQ(h.total_delivered(), 1460);
  // An over-wide retransmission spanning the hole and part of the buffered
  // run (sender resent more than was lost).
  h.inject(1460, 2000);
  EXPECT_EQ(h.total_delivered(), 4380);
  EXPECT_EQ(h.server->bytes_received(), 4380);
  h.engine.run();
}

TEST(TcpReassembly, ManyInterleavedHolesResolveInAnyFillOrder) {
  Harness h;
  // Even-indexed segments first: ten disjoint runs, nothing deliverable.
  for (int i = 0; i < 10; ++i) h.inject(i * 2000 + 1000, 1000);
  EXPECT_EQ(h.total_delivered(), 0);
  // Fill the odd gaps back-to-front; only the final fill releases the prefix.
  for (int i = 9; i > 0; --i) h.inject(i * 2000, 1000);
  EXPECT_EQ(h.total_delivered(), 0);
  h.inject(0, 1000);
  EXPECT_EQ(h.total_delivered(), 20'000);
  EXPECT_EQ(h.server->bytes_received(), 20'000);
  h.engine.run();
}

}  // namespace
}  // namespace dclue::net
