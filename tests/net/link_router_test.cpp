#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/router.hpp"
#include "sim/engine.hpp"

namespace dclue::net {
namespace {

/// Records delivered packets and their arrival times.
struct Recorder : PacketSink {
  std::vector<std::pair<sim::Time, Packet>> received;
  sim::Engine* engine = nullptr;
  void deliver(Packet pkt) override {
    received.emplace_back(engine->now(), std::move(pkt));
  }
};

Packet packet_to(Address dst, sim::Bytes bytes) {
  Packet p;
  p.dst = dst;
  p.bytes = bytes;
  return p;
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::Engine e;
  Recorder sink;
  sink.engine = &e;
  Link link(e, "l", sim::mbps(100), sim::milliseconds(1));
  link.connect(&sink);
  link.deliver(packet_to(1, 1250));  // 1250 B at 100 Mb/s = 100 us
  e.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_NEAR(sink.received[0].first, 100e-6 + 1e-3, 1e-12);
}

TEST(Link, SerializesBackToBackPackets) {
  sim::Engine e;
  Recorder sink;
  sink.engine = &e;
  Link link(e, "l", sim::mbps(100), 0.0);
  link.connect(&sink);
  link.deliver(packet_to(1, 1250));
  link.deliver(packet_to(1, 1250));
  e.run();
  ASSERT_EQ(sink.received.size(), 2u);
  EXPECT_NEAR(sink.received[0].first, 100e-6, 1e-12);
  EXPECT_NEAR(sink.received[1].first, 200e-6, 1e-12);
}

TEST(Link, UtilizationReflectsBusyTime) {
  sim::Engine e;
  Recorder sink;
  sink.engine = &e;
  Link link(e, "l", sim::mbps(100), 0.0);
  link.connect(&sink);
  link.deliver(packet_to(1, 1250));  // busy for 100us
  e.after(1e-3, [] {});              // idle until 1ms
  e.run();
  EXPECT_NEAR(link.utilization(e.now()), 0.1, 0.01);
}

TEST(Router, RoutesByDestination) {
  sim::Engine e;
  Recorder sink_a, sink_b;
  sink_a.engine = sink_b.engine = &e;
  Router r(e, "r");
  Link to_a(e, "a", sim::gbps(1), 0.0);
  Link to_b(e, "b", sim::gbps(1), 0.0);
  to_a.connect(&sink_a);
  to_b.connect(&sink_b);
  r.add_route(1, &to_a);
  r.add_route(2, &to_b);
  r.deliver(packet_to(1, 100));
  r.deliver(packet_to(2, 100));
  r.deliver(packet_to(2, 100));
  e.run();
  EXPECT_EQ(sink_a.received.size(), 1u);
  EXPECT_EQ(sink_b.received.size(), 2u);
  EXPECT_EQ(r.forwarded().count(), 3u);
}

TEST(Router, UsesDefaultRouteForUnknownDestination) {
  sim::Engine e;
  Recorder sink;
  sink.engine = &e;
  Router r(e, "r");
  Link out(e, "o", sim::gbps(1), 0.0);
  out.connect(&sink);
  r.set_default_route(&out);
  r.deliver(packet_to(99, 100));
  e.run();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST(Router, ForwardingRateLimitsThroughput) {
  sim::Engine e;
  Recorder sink;
  sink.engine = &e;
  RouterParams p;
  p.forwarding_rate_pps = 1000.0;  // 1 ms per packet
  Router r(e, "r", p);
  Link out(e, "o", sim::gbps(10), 0.0);
  out.connect(&sink);
  r.set_default_route(&out);
  for (int i = 0; i < 5; ++i) r.deliver(packet_to(1, 100));
  e.run();
  ASSERT_EQ(sink.received.size(), 5u);
  // The 5th packet leaves the forwarding engine at 5 ms.
  EXPECT_NEAR(sink.received[4].first, 5e-3, 1e-6);
}

TEST(Router, InputQueueOverflowDrops) {
  sim::Engine e;
  RouterParams p;
  p.forwarding_rate_pps = 1.0;
  p.input_queue_packets = 3;
  Router r(e, "r", p);
  for (int i = 0; i < 10; ++i) r.deliver(packet_to(1, 100));
  EXPECT_EQ(r.input_drops().count(), 7u);
}

TEST(Router, ForwardingDelayGrowsUnderLoad) {
  sim::Engine e;
  Recorder sink;
  sink.engine = &e;
  RouterParams p;
  p.forwarding_rate_pps = 1000.0;
  Router r(e, "r", p);
  Link out(e, "o", sim::gbps(10), 0.0);
  out.connect(&sink);
  r.set_default_route(&out);
  for (int i = 0; i < 10; ++i) r.deliver(packet_to(1, 100));
  e.run();
  // Average wait across a burst of 10 at 1ms service: mean ~5.5ms.
  EXPECT_NEAR(r.forwarding_delay().mean(), 5.5e-3, 1e-4);
}

}  // namespace
}  // namespace dclue::net
