#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "proto/channel.hpp"
#include "proto/ftp.hpp"
#include "proto/iscsi.hpp"

namespace dclue::proto {
namespace {

net::CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

struct Harness {
  sim::Engine engine;
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<net::TcpStack> a;
  std::unique_ptr<net::TcpStack> b;

  explicit Harness(net::TopologyParams tp = {}) {
    tp.servers_per_lata = std::max(tp.servers_per_lata, 2);
    topo = std::make_unique<net::Topology>(engine, tp);
    a = std::make_unique<net::TcpStack>(engine, topo->server_nic(0),
                                        net::TcpParams{}, net::TcpCostModel{},
                                        free_cpu());
    b = std::make_unique<net::TcpStack>(engine, topo->server_nic(1),
                                        net::TcpParams{}, net::TcpCostModel{},
                                        free_cpu());
  }

  /// Establish a connection pair and return both channels.
  std::pair<std::shared_ptr<MsgChannel>, std::shared_ptr<MsgChannel>>
  connect_channels(std::uint16_t port) {
    auto& listener = b->listen(port);
    std::shared_ptr<MsgChannel> server_ch;
    sim::spawn([](net::TcpListener& l,
                  std::shared_ptr<MsgChannel>& out) -> sim::Task<void> {
      auto conn = co_await l.accept();
      out = std::make_shared<MsgChannel>(conn);
    }(listener, server_ch));
    auto conn = a->connect(topo->server_nic(1).address(), port);
    auto client_ch = std::make_shared<MsgChannel>(conn);
    engine.run();
    return {client_ch, server_ch};
  }
};

TEST(MsgChannel, DeliversTypedMessagesInOrder) {
  Harness h;
  auto [client, server] = h.connect_channels(9000);
  ASSERT_NE(server, nullptr);
  std::vector<std::uint32_t> types;
  sim::spawn([](MsgChannel& ch, std::vector<std::uint32_t>& out) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      Message m = co_await ch.inbox().receive();
      out.push_back(m.type);
    }
  }(*server, types));
  client->send(Message{1, 250, nullptr, 0.0});
  client->send(Message{2, 8192, nullptr, 0.0});
  client->send(Message{3, 250, nullptr, 0.0});
  h.engine.run();
  EXPECT_EQ(types, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(server->messages_received(), 3u);
}

TEST(MsgChannel, PayloadSurvivesTransit) {
  Harness h;
  auto [client, server] = h.connect_channels(9001);
  int got = 0;
  sim::spawn([](MsgChannel& ch, int& out) -> sim::Task<void> {
    Message m = co_await ch.inbox().receive();
    out = *std::static_pointer_cast<int>(m.payload);
  }(*server, got));
  client->send(Message{1, 100, std::make_shared<int>(1234), 0.0});
  h.engine.run();
  EXPECT_EQ(got, 1234);
}

TEST(MsgChannel, LargeMessageIsSegmentedAndReassembled) {
  Harness h;
  auto [client, server] = h.connect_channels(9002);
  sim::Bytes got = 0;
  sim::Time sent_at = -1.0, recv_at = -1.0;
  sim::spawn([](sim::Engine& e, MsgChannel& ch, sim::Bytes& bytes, sim::Time& s,
                sim::Time& r) -> sim::Task<void> {
    Message m = co_await ch.inbox().receive();
    bytes = m.bytes;
    s = m.sent_at;
    r = e.now();
  }(h.engine, *server, got, sent_at, recv_at));
  client->send(Message{7, 65'536, nullptr, 0.0});
  h.engine.run();
  EXPECT_EQ(got, 65'536);
  EXPECT_GT(recv_at, sent_at);  // transit took simulated time
}

TEST(MsgChannel, BidirectionalTraffic) {
  Harness h;
  auto [client, server] = h.connect_channels(9003);
  bool round_trip = false;
  sim::spawn([](MsgChannel& ch) -> sim::Task<void> {
    Message m = co_await ch.inbox().receive();
    ch.send(Message{m.type + 1, 250, nullptr, 0.0});
  }(*server));
  sim::spawn([](MsgChannel& ch, bool& ok) -> sim::Task<void> {
    ch.send(Message{10, 250, nullptr, 0.0});
    Message reply = co_await ch.inbox().receive();
    ok = reply.type == 11;
  }(*client, round_trip));
  h.engine.run();
  EXPECT_TRUE(round_trip);
}

// ---------------------------------------------------------------------------

struct IscsiHarness : Harness {
  storage::Disk disk{engine, "remote-disk", storage::DiskParams{}};
  IscsiTarget target{engine, disk, free_cpu(), IscsiCostModel::hardware()};
  IscsiInitiator initiator{engine, free_cpu(), IscsiCostModel::hardware()};

  IscsiHarness() {
    auto [client_ch, server_ch] = connect_channels(3260);
    target.serve(server_ch);
    initiator.attach(client_ch);
  }
};

TEST(Iscsi, RemoteReadCompletes) {
  IscsiHarness h;
  bool done = false;
  sim::spawn([](IscsiInitiator& ini, bool& ok) -> sim::Task<void> {
    co_await ini.read(1000, 8192);
    ok = true;
  }(h.initiator, done));
  h.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.disk.ops_completed(), 1u);
  EXPECT_EQ(h.target.commands_served(), 1u);
}

TEST(Iscsi, RemoteWriteShipsDataBeforeDiskWrite) {
  IscsiHarness h;
  bool done = false;
  sim::spawn([](IscsiInitiator& ini, bool& ok) -> sim::Task<void> {
    co_await ini.write(2000, 32'768);
    ok = true;
  }(h.initiator, done));
  h.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.disk.ops_completed(), 1u);
}

TEST(Iscsi, ConcurrentCommandsAllComplete) {
  IscsiHarness h;
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    sim::spawn([](IscsiInitiator& ini, int& done, int i) -> sim::Task<void> {
      co_await ini.read(i * 100'000, 8192);
      ++done;
    }(h.initiator, done, i));
  }
  h.engine.run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(h.initiator.ops_completed(), 8u);
}

TEST(Iscsi, RemoteReadSlowerThanLocalDisk) {
  IscsiHarness h;
  sim::Time remote_done = 0.0;
  sim::spawn([](sim::Engine& e, IscsiInitiator& ini, sim::Time& t) -> sim::Task<void> {
    co_await ini.read(1000, 8192);
    t = e.now();
  }(h.engine, h.initiator, remote_done));
  h.engine.run();

  sim::Engine e2;
  storage::Disk local(e2, "local", storage::DiskParams{});
  sim::Time local_done = 0.0;
  sim::spawn([](sim::Engine& e, storage::Disk& d, sim::Time& t) -> sim::Task<void> {
    co_await d.read(1000, 8192);
    t = e.now();
  }(e2, local, local_done));
  e2.run();
  EXPECT_GT(remote_done, local_done);
}

// ---------------------------------------------------------------------------

TEST(Ftp, TransfersCompleteAndCarryBytes) {
  net::TopologyParams tp;
  tp.servers_per_lata = 2;
  tp.extra_servers_per_lata = 1;
  tp.extra_client_hosts = 1;
  sim::Engine engine;
  net::Topology topo(engine, tp);
  net::TcpStack server_stack(engine, topo.extra_server_nic(0), net::TcpParams{},
                             net::TcpCostModel{}, free_cpu());
  net::TcpStack client_stack(engine, topo.extra_client_nic(0), net::TcpParams{},
                             net::TcpCostModel{}, free_cpu());
  FtpServer server(engine, server_stack, 21);
  FtpTrafficParams params;
  params.offered_load_bps = sim::mbps(50);
  FtpClient client(engine, client_stack,
                   {topo.extra_server_nic(0).address()}, params, sim::Rng(5));
  client.start();
  engine.run_until(1.0);
  EXPECT_GT(client.transfers_completed(), 20u);
  EXPECT_GT(client.bytes_carried(), 0);
  // Offered 50 Mb/s for 1s ~ 6.25 MB total; carried should be same order.
  EXPECT_GT(client.bytes_carried(), 2'000'000);
  EXPECT_GT(server.transfers_served(), 0u);
}

TEST(Ftp, ZeroLoadGeneratesNothing) {
  net::TopologyParams tp;
  tp.extra_servers_per_lata = 1;
  tp.extra_client_hosts = 1;
  sim::Engine engine;
  net::Topology topo(engine, tp);
  net::TcpStack client_stack(engine, topo.extra_client_nic(0), net::TcpParams{},
                             net::TcpCostModel{}, free_cpu());
  FtpTrafficParams params;
  params.offered_load_bps = 0.0;
  FtpClient client(engine, client_stack,
                   {topo.extra_server_nic(0).address()}, params, sim::Rng(5));
  client.start();
  engine.run_until(1.0);
  EXPECT_EQ(client.transfers_completed(), 0u);
}

}  // namespace
}  // namespace dclue::proto
