/// Message framing edge cases: partial delivery timing, interleaved sizes,
/// and pairing across the accept race.

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "proto/channel.hpp"

namespace dclue::proto {
namespace {

net::CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

struct Harness {
  sim::Engine engine;
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<net::TcpStack> a;
  std::unique_ptr<net::TcpStack> b;

  explicit Harness(net::TopologyParams tp = {}) {
    tp.servers_per_lata = 2;
    topo = std::make_unique<net::Topology>(engine, tp);
    a = std::make_unique<net::TcpStack>(engine, topo->server_nic(0),
                                        net::TcpParams{}, net::TcpCostModel{},
                                        free_cpu());
    b = std::make_unique<net::TcpStack>(engine, topo->server_nic(1),
                                        net::TcpParams{}, net::TcpCostModel{},
                                        free_cpu());
  }
};

TEST(ChannelFraming, LargeMessageDeliveredOnlyWhenComplete) {
  // On a slow link, a multi-segment message must not surface until its last
  // byte arrives: receive time tracks the full serialization time.
  net::TopologyParams tp;
  tp.host_link_rate = sim::mbps(10);
  Harness h(tp);
  auto& listener = h.b->listen(9100);
  std::shared_ptr<MsgChannel> server;
  sim::spawn([](net::TcpListener& l, std::shared_ptr<MsgChannel>& out) -> sim::Task<void> {
    auto conn = co_await l.accept();
    out = std::make_shared<MsgChannel>(conn);
  }(listener, server));
  auto conn = h.a->connect(h.b->address(), 9100);
  auto client = std::make_shared<MsgChannel>(conn);

  sim::Time small_at = 0.0, big_at = 0.0;
  sim::spawn([](Harness& h, std::shared_ptr<net::TcpConnection> conn,
                std::shared_ptr<MsgChannel> client) -> sim::Task<void> {
    co_await conn->established().wait();
    client->send(Message{1, 250, nullptr, 0.0});
    client->send(Message{2, 500'000, nullptr, 0.0});  // ~0.4s at 10 Mb/s
  }(h, conn, client));
  sim::spawn([](Harness& h, std::shared_ptr<MsgChannel>* server, sim::Time& s,
                sim::Time& b) -> sim::Task<void> {
    while (!*server) co_await sim::delay_for(h.engine, 1e-3);
    Message m1 = co_await (*server)->inbox().receive();
    s = h.engine.now();
    Message m2 = co_await (*server)->inbox().receive();
    b = h.engine.now();
    EXPECT_EQ(m1.type, 1u);
    EXPECT_EQ(m2.type, 2u);
  }(h, &server, small_at, big_at));
  h.engine.run();
  ASSERT_GT(small_at, 0.0);
  ASSERT_GT(big_at, 0.0);
  // The 500KB message needs >= 0.4s of wire time; the 250B one is immediate.
  EXPECT_GT(big_at - small_at, 0.35);
}

TEST(ChannelFraming, InterleavedSizesKeepBoundaries) {
  Harness h;
  auto& listener = h.b->listen(9101);
  std::vector<sim::Bytes> sizes_got;
  sim::spawn([](net::TcpListener& l, std::vector<sim::Bytes>& out) -> sim::Task<void> {
    auto conn = co_await l.accept();
    auto ch = std::make_shared<MsgChannel>(conn);
    for (int i = 0; i < 6; ++i) {
      Message m = co_await ch->inbox().receive();
      out.push_back(m.bytes);
    }
  }(listener, sizes_got));
  auto conn = h.a->connect(h.b->address(), 9101);
  auto client = std::make_shared<MsgChannel>(conn);
  const std::vector<sim::Bytes> sizes = {250, 8192, 64, 100'000, 1, 1460};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    client->send(Message{static_cast<std::uint32_t>(i), sizes[i], nullptr, 0.0});
  }
  h.engine.run();
  EXPECT_EQ(sizes_got, sizes);
}

TEST(ChannelFraming, SendBeforeAcceptIsNotLost) {
  // The client fires immediately after its side of the handshake; the
  // server-side channel is constructed later by the accept handler.
  Harness h;
  auto& listener = h.b->listen(9102);
  std::uint32_t got = 0;
  sim::spawn([](sim::Engine& e, net::TcpListener& l, std::uint32_t& out) -> sim::Task<void> {
    auto conn = co_await l.accept();
    co_await sim::delay_for(e, 0.05);  // construct the channel even later
    auto ch = std::make_shared<MsgChannel>(conn);
    Message m = co_await ch->inbox().receive();
    out = m.type;
  }(h.engine, listener, got));
  auto conn = h.a->connect(h.b->address(), 9102);
  auto client = std::make_shared<MsgChannel>(conn);
  sim::spawn([](std::shared_ptr<net::TcpConnection> conn,
                std::shared_ptr<MsgChannel> client) -> sim::Task<void> {
    co_await conn->established().wait();
    client->send(Message{77, 300, nullptr, 0.0});
  }(conn, client));
  h.engine.run();
  EXPECT_EQ(got, 77u);
}

TEST(ChannelFraming, MessageCountsTrackSendsAndReceives) {
  Harness h;
  auto& listener = h.b->listen(9103);
  std::shared_ptr<MsgChannel> server;
  sim::spawn([](net::TcpListener& l, std::shared_ptr<MsgChannel>& out) -> sim::Task<void> {
    auto conn = co_await l.accept();
    out = std::make_shared<MsgChannel>(conn);
  }(listener, server));
  auto conn = h.a->connect(h.b->address(), 9103);
  auto client = std::make_shared<MsgChannel>(conn);
  for (int i = 0; i < 5; ++i) client->send(Message{1, 100, nullptr, 0.0});
  h.engine.run();
  EXPECT_EQ(client->messages_sent(), 5u);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->messages_received(), 5u);
}

}  // namespace
}  // namespace dclue::proto
