/// iSCSI edge cases: multi-PDU write assembly, interleaved commands on one
/// session, and the software-mode CRC cost visible as simulated time.

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "proto/iscsi.hpp"

namespace dclue::proto {
namespace {

net::CpuCharge free_cpu() {
  return [](sim::PathLength, cpu::JobClass) -> sim::Task<void> { co_return; };
}

/// Minimal initiator/target pair with a configurable CPU-charge hook.
struct Harness {
  sim::Engine engine;
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<net::TcpStack> a;
  std::unique_ptr<net::TcpStack> b;
  storage::Disk disk;
  std::unique_ptr<IscsiTarget> target;
  std::unique_ptr<IscsiInitiator> initiator;

  explicit Harness(IscsiCostModel costs = IscsiCostModel::hardware(),
                   bool timed_cpu = false)
      : disk(engine, "remote", storage::DiskParams{}) {
    net::TopologyParams tp;
    tp.servers_per_lata = 2;
    topo = std::make_unique<net::Topology>(engine, tp);
    a = std::make_unique<net::TcpStack>(engine, topo->server_nic(0),
                                        net::TcpParams{}, net::TcpCostModel{},
                                        free_cpu());
    b = std::make_unique<net::TcpStack>(engine, topo->server_nic(1),
                                        net::TcpParams{}, net::TcpCostModel{},
                                        free_cpu());
    // Optionally charge protocol path lengths as real simulated time
    // (1 instruction per 3.2 GHz cycle).
    net::CpuCharge charge =
        timed_cpu ? net::CpuCharge([this](sim::PathLength pl,
                                          cpu::JobClass) -> sim::Task<void> {
          co_await sim::delay_for(engine, pl / 3.2e9);
        })
                  : free_cpu();
    target = std::make_unique<IscsiTarget>(engine, disk, charge, costs);
    initiator = std::make_unique<IscsiInitiator>(engine, charge, costs);
    auto& listener = b->listen(3260);
    sim::spawn([](Harness& h, net::TcpListener& l) -> sim::Task<void> {
      auto conn = co_await l.accept();
      h.target->serve(std::make_shared<MsgChannel>(conn));
    }(*this, listener));
    auto conn = a->connect(topo->server_nic(1).address(), 3260);
    initiator->attach(std::make_shared<MsgChannel>(conn));
  }
};

TEST(IscsiEdge, MultiPduWriteAssemblesBeforeDiskWrite) {
  Harness h;
  bool done = false;
  sim::spawn([](Harness& h, bool& ok) -> sim::Task<void> {
    co_await h.initiator->write(100, 200'000);  // 25 data-out PDUs
    ok = true;
  }(h, done));
  h.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.disk.ops_completed(), 1u);  // one assembled write, not 25
  EXPECT_EQ(h.target->commands_served(), 1u);
}

TEST(IscsiEdge, InterleavedReadAndWriteCompleteIndependently) {
  Harness h;
  int done = 0;
  sim::spawn([](Harness& h, int& done) -> sim::Task<void> {
    co_await h.initiator->write(500, 65'536);
    ++done;
  }(h, done));
  sim::spawn([](Harness& h, int& done) -> sim::Task<void> {
    co_await h.initiator->read(900, 8'192);
    ++done;
  }(h, done));
  sim::spawn([](Harness& h, int& done) -> sim::Task<void> {
    co_await h.initiator->read(901, 16'384);
    ++done;
  }(h, done));
  h.engine.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(h.initiator->ops_completed(), 3u);
  EXPECT_EQ(h.initiator->ops_pending(), 0u);
}

TEST(IscsiEdge, SoftwareCrcCostsSimulatedCpuTime) {
  // Against a CPU that takes real simulated time, software iSCSI's
  // per-byte digest must make the same read measurably slower ("the rather
  // large overhead of CRC calculations").
  auto run_mode = [](IscsiCostModel costs) {
    Harness h(costs, /*timed_cpu=*/true);
    double finish = 0.0;
    sim::spawn([](Harness& h, double& out) -> sim::Task<void> {
      co_await h.initiator->read(1000, 65'536);
      out = h.engine.now();
    }(h, finish));
    h.engine.run();
    return finish;
  };
  const double hw = run_mode(IscsiCostModel::hardware());
  const double sw = run_mode(IscsiCostModel::software());
  // The per-PDU digest cost pipelines with transmission, so only the
  // non-overlapped part is visible end to end — but it must be visible.
  EXPECT_GT(sw, hw + 2e-6);
}

TEST(IscsiEdge, UnknownTagsAreIgnored) {
  Harness h;
  // A stray data-out for a tag the target never saw must not crash or stall
  // subsequent commands.
  bool done = false;
  sim::spawn([](Harness& h, bool& ok) -> sim::Task<void> {
    co_await h.initiator->read(50, 8'192);
    ok = true;
  }(h, done));
  h.engine.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace dclue::proto
