/// Unit tests for the zero-allocation datapath primitives: the growable ring
/// buffer behind packet queues, the inline small-vector behind TCP reassembly
/// state, the inline-storage callable replacing std::function on per-segment
/// paths, and the size-class frame pool recycling coroutine frames.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/frame_pool.hpp"
#include "sim/inline_fn.hpp"
#include "sim/ring.hpp"
#include "sim/small_vec.hpp"
#include "sim/task.hpp"

namespace dclue::sim {
namespace {

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

TEST(Ring, FifoAcrossWrapAndGrowth) {
  Ring<int> r;
  int next_in = 0;
  int next_out = 0;
  // Rolling occupancy of 20 (above the initial capacity of 16) cycled many
  // times: the head index wraps repeatedly and the buffer grows mid-stream.
  for (int round = 0; round < 500; ++round) {
    while (next_in - next_out < 20) r.push_back(next_in++);
    for (int k = 0; k < 6; ++k) {
      ASSERT_FALSE(r.empty());
      EXPECT_EQ(r.front(), next_out);
      r.pop_front();
      ++next_out;
    }
  }
  while (!r.empty()) {
    EXPECT_EQ(r.front(), next_out++);
    r.pop_front();
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(Ring, SteadyStateNeverReallocates) {
  Ring<int> r;
  for (int i = 0; i < 10; ++i) r.push_back(i);
  const std::size_t cap = r.capacity();
  for (int i = 0; i < 100'000; ++i) {
    r.push_back(i);
    r.pop_front();
  }
  EXPECT_EQ(r.capacity(), cap);  // working-set depth reached: no more growth
}

TEST(Ring, IndexingIsFifoOrderAndGrowthPreservesIt) {
  Ring<std::string> r;  // non-trivial element type
  for (int i = 0; i < 5; ++i) r.push_back(std::to_string(i));
  r.pop_front();
  r.pop_front();
  for (int i = 5; i < 40; ++i) r.push_back(std::to_string(i));  // forces growth
  ASSERT_EQ(r.size(), 38u);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], std::to_string(i + 2));
  }
}

TEST(Ring, EmplaceBackConstructsInPlace) {
  struct Pair {
    int a;
    double b;
  };
  Ring<Pair> r;
  Pair& p = r.emplace_back(7, 2.5);
  EXPECT_EQ(p.a, 7);
  EXPECT_EQ(r.front().a, 7);
  EXPECT_EQ(r.front().b, 2.5);
}

TEST(Ring, ClearDestroysElements) {
  auto token = std::make_shared<int>(1);
  Ring<std::shared_ptr<int>> r;
  for (int i = 0; i < 8; ++i) r.push_back(token);
  EXPECT_EQ(token.use_count(), 9);
  r.clear();
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// SmallVec
// ---------------------------------------------------------------------------

TEST(SmallVec, InsertEraseSemantics) {
  SmallVec<int, 4> v;
  v.push_back(10);
  v.push_back(30);
  v.insert_at(1, 20);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v[2], 30);
  v.erase_at(1);
  EXPECT_EQ(v[1], 30);
  v.erase_range(0, 2);
  EXPECT_TRUE(v.empty());
}

TEST(SmallVec, SpillsToHeapPastInlineCapacityAndKeepsOrder) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  v.insert_at(50, -1);
  EXPECT_EQ(v[50], -1);
  EXPECT_EQ(v[51], 50);
  v.truncate(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.back(), 9);
}

TEST(SmallVec, CopyAssignAcrossSpillBoundary) {
  SmallVec<int, 4> big;
  for (int i = 0; i < 32; ++i) big.push_back(i);
  SmallVec<int, 4> small;
  small.push_back(-7);
  small = big;  // inline -> heap
  ASSERT_EQ(small.size(), 32u);
  EXPECT_EQ(small[31], 31);
  SmallVec<int, 4> tiny;
  tiny.push_back(5);
  big = tiny;  // heap -> small payload
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0], 5);
}

// ---------------------------------------------------------------------------
// InlineFn
// ---------------------------------------------------------------------------

TEST(InlineFn, InvokesCaptures) {
  int hits = 0;
  InlineFn<int(int)> fn = [&hits](int x) {
    ++hits;
    return x * 2;
  };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(21), 42);
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, DefaultIsEmptyAndResetClears) {
  InlineFn<void()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = [] {};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, CopyAndMovePreserveCaptureState) {
  auto counter = std::make_shared<int>(0);
  InlineFn<void()> fn = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  InlineFn<void()> copy = fn;
  EXPECT_EQ(counter.use_count(), 3);
  copy();
  InlineFn<void()> moved = std::move(copy);
  EXPECT_EQ(counter.use_count(), 3);  // move transfers, does not add
  moved();
  fn();
  EXPECT_EQ(*counter, 3);
  fn.reset();
  moved.reset();
  EXPECT_EQ(counter.use_count(), 1);  // destructors ran
}

TEST(InlineFn, AllocatesNothingOnAssignmentOrCall) {
  // The whole point versus std::function: captures live inline. A capture
  // near the capacity limit must not touch the heap.
  struct Big {
    void* p[10];
  };
  Big big{};
  InlineFn<void(), 96> fn = [big]() { (void)big; };
  fn();  // nothing to assert beyond "this compiled and runs without heap use";
         // allocation accounting is asserted end-to-end by bench/micro_datapath
}

// ---------------------------------------------------------------------------
// FramePool
// ---------------------------------------------------------------------------

TEST(FramePool, RecyclesSameSizeClass) {
  FramePool& pool = FramePool::local();
  pool.reset_stats();
  void* a = pool.allocate(100);  // class 2 (65..128 bytes)
  pool.deallocate(a, 100);
  void* b = pool.allocate(128);  // same class: must reuse the freed block
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.hits(), 1u);
  pool.deallocate(b, 128);
}

TEST(FramePool, DistinctClassesDoNotShareBlocks) {
  FramePool& pool = FramePool::local();
  void* small = pool.allocate(64);
  pool.deallocate(small, 64);
  void* large = pool.allocate(65);  // next class up: freelist of class 1 unused
  EXPECT_NE(small, large);
  pool.deallocate(large, 65);
  void* again = pool.allocate(40);  // class 1 again: reuses the first block
  EXPECT_EQ(again, small);
  pool.deallocate(again, 40);
}

TEST(FramePool, OversizeFallsThroughToHeap) {
  FramePool& pool = FramePool::local();
  pool.reset_stats();
  void* p = pool.allocate(FramePool::kMaxPooledBytes + 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(pool.oversize(), 1u);
  pool.deallocate(p, FramePool::kMaxPooledBytes + 1);
}

TEST(FramePool, CoroutineFramesComeFromThePool) {
  FramePool& pool = FramePool::local();
  auto make = []() -> Task<int> { co_return 7; };
  auto run_once = [&make](int& out) {
    // Everything completes synchronously: lazy task, immediate co_return.
    spawn([](auto mk, int& o) -> Task<void> { o = co_await mk(); }(make, out));
  };
  int out = 0;
  run_once(out);  // warm up: first frames of these sizes may miss
  ASSERT_EQ(out, 7);
  pool.reset_stats();
  for (int i = 0; i < 10; ++i) {
    out = 0;
    run_once(out);
    EXPECT_EQ(out, 7);
  }
  // Two pooled frames per repetition (wrapper + inner), zero pool misses: the
  // steady state recycles every frame.
  EXPECT_GE(pool.hits(), 20u);
  EXPECT_EQ(pool.misses(), 0u);
}

}  // namespace
}  // namespace dclue::sim
