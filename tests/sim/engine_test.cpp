#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dclue::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.after(2.0, [&] { order.push_back(2); });
  e.after(1.0, [&] { order.push_back(1); });
  e.after(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, SameTimeEventsFireInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.after(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int fired = 0;
  e.after(1.0, [&] { ++fired; });
  e.after(5.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 2.0);
  e.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.after(1.0, recurse);
  };
  e.after(1.0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 5.0);
}

TEST(Engine, CancelledEventDoesNotFire) {
  Engine e;
  int fired = 0;
  auto h = e.after(1.0, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterFire) {
  Engine e;
  int fired = 0;
  auto h = e.after(1.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  h.cancel();  // no effect, no crash
  h.cancel();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, DefaultConstructedHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.after(i, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 7u);
}

TEST(Engine, ZeroDelayEventRunsAtCurrentTime) {
  Engine e;
  e.after(1.0, [&] {
    e.after(0.0, [&] { EXPECT_EQ(e.now(), 1.0); });
  });
  e.run();
}

}  // namespace
}  // namespace dclue::sim
