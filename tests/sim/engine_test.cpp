#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

namespace dclue::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.after(2.0, [&] { order.push_back(2); });
  e.after(1.0, [&] { order.push_back(1); });
  e.after(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, SameTimeEventsFireInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.after(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int fired = 0;
  e.after(1.0, [&] { ++fired; });
  e.after(5.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 2.0);
  e.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.after(1.0, recurse);
  };
  e.after(1.0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 5.0);
}

TEST(Engine, CancelledEventDoesNotFire) {
  Engine e;
  int fired = 0;
  auto h = e.after(1.0, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterFire) {
  Engine e;
  int fired = 0;
  auto h = e.after(1.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  h.cancel();  // no effect, no crash
  h.cancel();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, DefaultConstructedHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.after(i, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 7u);
}

TEST(Engine, ZeroDelayEventRunsAtCurrentTime) {
  Engine e;
  e.after(1.0, [&] {
    e.after(0.0, [&] { EXPECT_EQ(e.now(), 1.0); });
  });
  e.run();
}

TEST(Engine, CancelOneOfManySameTimeEventsPreservesOrder) {
  Engine e;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(e.after(1.0, [&order, i] { order.push_back(i); }));
  }
  handles[3].cancel();
  handles[6].cancel();
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 5, 7}));
}

// A stale handle whose arena slot has been recycled by a newer event must
// read "not pending" and must not be able to cancel the new tenant.
TEST(Engine, StaleHandleCannotTouchRecycledSlot) {
  Engine e;
  int first = 0, second = 0;
  EventHandle a = e.after(1.0, [&] { ++first; });
  a.cancel();  // frees the slot; `a` keeps the old generation
  EventHandle b = e.after(2.0, [&] { ++second; });  // reuses the slot
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  a.cancel();  // generation mismatch: must not cancel `b`
  EXPECT_TRUE(b.pending());
  e.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(Engine, StaleHandleAfterFireCannotTouchRecycledSlot) {
  Engine e;
  int fired = 0;
  EventHandle a = e.after(1.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EventHandle b = e.after(1.0, [&] { fired += 10; });  // reuses a's slot
  a.cancel();
  EXPECT_TRUE(b.pending());
  e.run();
  EXPECT_EQ(fired, 11);
}

// Cancelling your own handle from inside the callback must be a harmless
// no-op (the event is already "fired"), not a use-after-free of the running
// callback.
TEST(Engine, CancelOwnHandleWhileFiringIsSafe) {
  Engine e;
  int fired = 0;
  auto h = std::make_shared<EventHandle>();
  *h = e.after(1.0, [&fired, h] {
    EXPECT_FALSE(h->pending());
    h->cancel();
    ++fired;
  });
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, LargeCaptureFallsBackToHeapAndFires) {
  Engine e;
  std::array<unsigned char, 512> blob{};
  blob[0] = 42;
  blob[511] = 7;
  int seen = 0;
  e.after(1.0, [blob, &seen] { seen = blob[0] + blob[511]; });
  e.run();
  EXPECT_EQ(seen, 49);
}

TEST(Engine, CancelledCallbackIsDestroyedImmediately) {
  Engine e;
  auto token = std::make_shared<int>(1);
  EXPECT_EQ(token.use_count(), 1);
  auto h = e.after(1.0, [token] {});
  EXPECT_EQ(token.use_count(), 2);
  h.cancel();
  EXPECT_EQ(token.use_count(), 1);  // destroyed at cancel, not at fire time
  e.run();
}

TEST(Engine, LargeCancelledCallbackIsDestroyed) {
  Engine e;
  auto token = std::make_shared<int>(1);
  std::array<unsigned char, 512> pad{};
  auto h = e.after(1.0, [token, pad] { (void)pad; });
  EXPECT_EQ(token.use_count(), 2);
  h.cancel();
  EXPECT_EQ(token.use_count(), 1);
  e.run();
}

TEST(Engine, UnfiredCallbacksDestroyedWithEngine) {
  auto token = std::make_shared<int>(1);
  {
    Engine e;
    e.after(1.0, [token] {});
    e.after(2.0, [token] {});
    EXPECT_EQ(token.use_count(), 3);
    // Engine destroyed with both events still scheduled.
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Engine, PendingCountTracksScheduleFireCancel) {
  Engine e;
  EXPECT_EQ(e.events_pending(), 0u);
  auto a = e.after(1.0, [] {});
  auto b = e.after(2.0, [] {});
  EXPECT_EQ(e.events_pending(), 2u);
  a.cancel();
  EXPECT_EQ(e.events_pending(), 1u);
  e.run();
  EXPECT_EQ(e.events_pending(), 0u);
  (void)b;
}

// Timer-rearm churn: many cancels per fire drives the lazy-deletion
// compaction path; ordering and counts must survive it.
TEST(Engine, RearmChurnKeepsOrderThroughCompaction) {
  Engine e;
  int fired = 0;
  Time last_time = -1.0;
  EventHandle timer;
  std::function<void(int)> step = [&](int hop) {
    EXPECT_GE(e.now(), last_time);
    last_time = e.now();
    ++fired;
    timer.cancel();
    timer = e.after(1e9, [] { FAIL() << "cancelled timer fired"; });
    if (hop < 5000) e.after(0.25, [&step, hop] { step(hop + 1); });
  };
  e.after(0.0, [&step] { step(1); });
  e.run_until(2000.0);
  EXPECT_EQ(fired, 5000);
  timer.cancel();
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, PerEngineIdsAreDeterministic) {
  Engine a;
  Engine b;
  EXPECT_EQ(a.allocate_id(), 1u);
  EXPECT_EQ(a.allocate_id(), 2u);
  // A second engine's ids are independent of the first's history.
  EXPECT_EQ(b.allocate_id(), 1u);
}

}  // namespace
}  // namespace dclue::sim
