#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace dclue::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.raw(), b.raw());
}

TEST(Rng, StreamsAreIndependentByName) {
  RngFactory f(42);
  Rng a = f.stream("tcp");
  Rng b = f.stream("disk");
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (a.raw() != b.raw()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Rng, StreamsAreIndependentByIndex) {
  RngFactory f(42);
  Rng a = f.stream("node", 0);
  Rng b = f.stream("node", 1);
  EXPECT_NE(a.raw(), b.raw());
}

TEST(Rng, SameStreamReproducible) {
  RngFactory f(42);
  Rng a = f.stream("node", 3);
  Rng b = f.stream("node", 3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.raw(), b.raw());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(7);
  std::array<int, 5> seen{};
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Rng, ExponentialMeanIsApproximatelyRight) {
  Rng r(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, PickRespectsWeights) {
  Rng r(13);
  const std::array<double, 3> w{0.1, 0.0, 0.9};
  std::array<int, 3> seen{};
  for (int i = 0; i < 10000; ++i) ++seen[r.pick(w)];
  EXPECT_EQ(seen[1], 0);
  EXPECT_GT(seen[2], seen[0]);
  EXPECT_NEAR(seen[0] / 10000.0, 0.1, 0.02);
}

TEST(Rng, NurandStaysInRange) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.nurand(255, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(Rng, ChanceProbabilityApproximatelyRight) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace dclue::sim
