/// Coroutine lifetime corner cases: tasks that are created but never
/// awaited, stacked awaits deep enough to need symmetric transfer, and
/// determinism of interleaved activities.

#include <gtest/gtest.h>

#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dclue::sim {
namespace {

TEST(TaskLifetime, UnawaitedTaskIsDestroyedCleanly) {
  Engine e;
  bool body_ran = false;
  {
    auto t = [](bool& ran) -> Task<void> {
      ran = true;
      co_return;
    }(body_ran);
    // Dropped without co_await: the lazy body must never run, and the frame
    // must be released without leaking (ASan-checked in CI).
  }
  EXPECT_FALSE(body_ran);
  e.run();
}

TEST(TaskLifetime, MoveAssignReleasesPreviousFrame) {
  Engine e;
  auto make = [](Engine& eng) -> Task<void> { co_await delay_for(eng, 1.0); };
  Task<void> t = make(e);
  t = make(e);  // first frame destroyed here
  bool done = false;
  spawn([](Task<void> t, bool& done) -> Task<void> {
    co_await std::move(t);
    done = true;
  }(std::move(t), done));
  e.run();
  EXPECT_TRUE(done);
}

TEST(TaskLifetime, DeepAwaitChainDoesNotOverflowStack) {
  Engine e;
  // 100k-deep recursive await chain: symmetric transfer keeps the machine
  // stack flat.
  struct Recurse {
    static Task<int> down(Engine& eng, int n) {
      if (n == 0) {
        co_await delay_for(eng, 1e-9);
        co_return 0;
      }
      int below = co_await down(eng, n - 1);
      co_return below + 1;
    }
  };
  int result = -1;
  spawn([](Engine& eng, int& out) -> Task<void> {
    out = co_await Recurse::down(eng, 100'000);
  }(e, result));
  e.run();
  EXPECT_EQ(result, 100'000);
}

TEST(TaskLifetime, ThousandsOfConcurrentActivitiesComplete) {
  Engine e;
  int completed = 0;
  for (int i = 0; i < 5'000; ++i) {
    spawn([](Engine& eng, int i, int& done) -> Task<void> {
      co_await delay_for(eng, 1e-6 * (i % 97));
      co_await delay_for(eng, 1e-6 * (i % 13));
      ++done;
    }(e, i, completed));
  }
  e.run();
  EXPECT_EQ(completed, 5'000);
}

TEST(TaskLifetime, InterleavingIsDeterministic) {
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      spawn([](Engine& eng, int i, std::vector<int>& order) -> Task<void> {
        co_await delay_for(eng, 1e-6 * ((i * 7919) % 23));
        order.push_back(i);
      }(e, i, order));
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TaskLifetime, GateDestroyedAfterOpenIsSafe) {
  Engine e;
  bool resumed = false;
  {
    auto gate = std::make_unique<Gate>(e);
    spawn([](Gate& g, bool& r) -> Task<void> {
      co_await g.wait();
      r = true;
    }(*gate, resumed));
    gate->open();
    // Resumption is deferred through the engine; destroying the gate now
    // must not break the pending wakeup (the handle was captured by value).
  }
  e.run();
  EXPECT_TRUE(resumed);
}

}  // namespace
}  // namespace dclue::sim
