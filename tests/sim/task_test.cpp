#include "sim/task.hpp"

#include <gtest/gtest.h>

#include "sim/sync.hpp"

namespace dclue::sim {
namespace {

TEST(Task, DelayAdvancesSimulatedTime) {
  Engine e;
  Time finished = -1.0;
  spawn([](Engine& eng, Time& out) -> Task<void> {
    co_await delay_for(eng, 1.5);
    co_await delay_for(eng, 2.5);
    out = eng.now();
  }(e, finished));
  e.run();
  EXPECT_DOUBLE_EQ(finished, 4.0);
}

TEST(Task, ValueTaskPropagatesResult) {
  Engine e;
  int result = 0;
  auto inner = [](Engine& eng) -> Task<int> {
    co_await delay_for(eng, 1.0);
    co_return 42;
  };
  spawn([](Engine& eng, auto inner, int& out) -> Task<void> {
    out = co_await inner(eng);
  }(e, inner, result));
  e.run();
  EXPECT_EQ(result, 42);
}

TEST(Task, NestedAwaitsCompleteInOrder) {
  Engine e;
  std::vector<int> order;
  auto leaf = [](Engine& eng, std::vector<int>& o, int id) -> Task<void> {
    co_await delay_for(eng, static_cast<double>(id));
    o.push_back(id);
  };
  spawn([](Engine& eng, auto leaf, std::vector<int>& o) -> Task<void> {
    co_await leaf(eng, o, 1);
    co_await leaf(eng, o, 2);
    o.push_back(99);
  }(e, leaf, order));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

TEST(Task, ExceptionPropagatesThroughAwait) {
  Engine e;
  bool caught = false;
  auto thrower = [](Engine& eng) -> Task<void> {
    co_await delay_for(eng, 1.0);
    throw std::runtime_error("boom");
  };
  spawn([](Engine& eng, auto thrower, bool& caught) -> Task<void> {
    try {
      co_await thrower(eng);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(e, thrower, caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Gate, WaitersReleaseOnOpen) {
  Engine e;
  Gate gate(e);
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](Gate& g, int& r) -> Task<void> {
      co_await g.wait();
      ++r;
    }(gate, released));
  }
  e.after(1.0, [&] { gate.open(); });
  e.run();
  EXPECT_EQ(released, 3);
  EXPECT_TRUE(gate.is_open());
}

TEST(Gate, WaitOnOpenGateDoesNotSuspend) {
  Engine e;
  Gate gate(e);
  gate.open();
  bool done = false;
  spawn([](Gate& g, bool& d) -> Task<void> {
    co_await g.wait();
    d = true;
  }(gate, done));
  // Completed synchronously at spawn; no events needed.
  EXPECT_TRUE(done);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine e;
  Semaphore sem(e, 2);
  int peak = 0;
  int current = 0;
  for (int i = 0; i < 5; ++i) {
    spawn([](Engine& eng, Semaphore& s, int& cur, int& pk) -> Task<void> {
      co_await s.acquire();
      ++cur;
      pk = std::max(pk, cur);
      co_await delay_for(eng, 1.0);
      --cur;
      s.release();
    }(e, sem, current, peak));
  }
  e.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(current, 0);
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Mailbox, DeliversInFifoOrder) {
  Engine e;
  Mailbox<int> box(e);
  std::vector<int> got;
  spawn([](Mailbox<int>& b, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 3; ++i) out.push_back(co_await b.receive());
  }(box, got));
  e.after(1.0, [&] {
    box.push(10);
    box.push(20);
    box.push(30);
  });
  e.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, TryReceiveDoesNotStealFromWokenWaiter) {
  Engine e;
  Mailbox<int> box(e);
  int received = -1;
  spawn([](Mailbox<int>& b, int& out) -> Task<void> {
    out = co_await b.receive();
  }(box, received));
  e.after(1.0, [&] {
    box.push(7);
    // The waiter's wakeup is deferred through the engine; a try_receive in
    // between must not observe (or steal) the handed-off item.
    EXPECT_FALSE(box.try_receive().has_value());
  });
  e.run();
  EXPECT_EQ(received, 7);
}

TEST(Mailbox, MultipleWaitersServedFifo) {
  Engine e;
  Mailbox<int> box(e);
  std::vector<int> got;
  for (int i = 0; i < 2; ++i) {
    spawn([](Mailbox<int>& b, std::vector<int>& out) -> Task<void> {
      out.push_back(co_await b.receive());
    }(box, got));
  }
  e.after(1.0, [&] { box.push(1); });
  e.after(2.0, [&] { box.push(2); });
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(WaitGroup, WaitsForAllActivities) {
  Engine e;
  WaitGroup wg(e);
  bool finished = false;
  for (int i = 1; i <= 3; ++i) {
    wg.add();
    spawn([](Engine& eng, WaitGroup& w, int d) -> Task<void> {
      co_await delay_for(eng, static_cast<double>(d));
      w.done();
    }(e, wg, i));
  }
  spawn([](Engine& eng, WaitGroup& w, bool& f) -> Task<void> {
    co_await w.wait();
    f = eng.now() >= 3.0;
  }(e, wg, finished));
  e.run();
  EXPECT_TRUE(finished);
}

}  // namespace
}  // namespace dclue::sim
