#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace dclue::sim {
namespace {

TEST(Tally, BasicMoments) {
  Tally t;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.add(x);
  EXPECT_EQ(t.count(), 8u);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
  EXPECT_NEAR(t.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.min(), 2.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
  EXPECT_DOUBLE_EQ(t.sum(), 40.0);
}

TEST(Tally, EmptyIsZero) {
  Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.variance(), 0.0);
}

TEST(Tally, ResetClears) {
  Tally t;
  t.add(5.0);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.set(0.0, 2.0);   // value 2 on [0, 4)
  tw.set(4.0, 6.0);   // value 6 on [4, 8)
  EXPECT_DOUBLE_EQ(tw.average(8.0), 4.0);
  EXPECT_DOUBLE_EQ(tw.current(), 6.0);
}

TEST(TimeWeighted, AdjustAddsDelta) {
  TimeWeighted tw;
  tw.adjust(0.0, 3.0);
  tw.adjust(1.0, -1.0);
  EXPECT_DOUBLE_EQ(tw.current(), 2.0);
  EXPECT_DOUBLE_EQ(tw.average(2.0), 2.5);
}

TEST(TimeWeighted, ResetStartsNewWindow) {
  TimeWeighted tw;
  tw.set(0.0, 10.0);
  tw.reset(5.0);
  EXPECT_DOUBLE_EQ(tw.average(10.0), 10.0);
  tw.set(7.0, 0.0);
  EXPECT_DOUBLE_EQ(tw.average(9.0), 5.0);  // 10 for 2s, 0 for 2s
}

TEST(Counter, AddAndReset) {
  Counter c;
  c.add();
  c.add(4);
  EXPECT_EQ(c.count(), 5u);
  c.reset();
  EXPECT_EQ(c.count(), 0u);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[9], 2u);
  EXPECT_EQ(h.tally().count(), 4u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
}

}  // namespace
}  // namespace dclue::sim
