#include "sim/obs/stats.hpp"

#include <gtest/gtest.h>

namespace dclue::obs {
namespace {

TEST(Tally, BasicMoments) {
  Tally t;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.record(x);
  EXPECT_EQ(t.count(), 8u);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
  EXPECT_NEAR(t.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.min(), 2.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
  EXPECT_DOUBLE_EQ(t.sum(), 40.0);
}

TEST(Tally, EmptyIsZero) {
  Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.variance(), 0.0);
}

TEST(Tally, ResetClears) {
  Tally t;
  t.record(5.0);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
}

TEST(Tally, MergeMatchesCombinedStream) {
  Tally a, b, all;
  for (double x : {1.0, 2.0, 3.0}) {
    a.record(x);
    all.record(x);
  }
  for (double x : {10.0, 20.0}) {
    b.record(x);
    all.record(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(TimeWeightedAvg, PiecewiseConstantAverage) {
  TimeWeightedAvg tw;
  tw.record(0.0, 2.0);  // value 2 on [0, 4)
  tw.record(4.0, 6.0);  // value 6 on [4, 8)
  EXPECT_DOUBLE_EQ(tw.average(8.0), 4.0);
  EXPECT_DOUBLE_EQ(tw.current(), 6.0);
}

TEST(TimeWeightedAvg, RecordDeltaAddsToLevel) {
  TimeWeightedAvg tw;
  tw.record_delta(0.0, 3.0);
  tw.record_delta(1.0, -1.0);
  EXPECT_DOUBLE_EQ(tw.current(), 2.0);
  EXPECT_DOUBLE_EQ(tw.average(2.0), 2.5);
}

TEST(TimeWeightedAvg, ResetStartsNewWindowKeepingLevel) {
  TimeWeightedAvg tw;
  tw.record(0.0, 10.0);
  tw.reset(5.0);
  EXPECT_DOUBLE_EQ(tw.average(10.0), 10.0);
  tw.record(7.0, 0.0);
  EXPECT_DOUBLE_EQ(tw.average(9.0), 5.0);  // 10 for 2s, 0 for 2s
}

TEST(Counter, RecordAndReset) {
  Counter c;
  c.record();
  c.record(4);
  EXPECT_EQ(c.count(), 5u);
  c.reset();
  EXPECT_EQ(c.count(), 0u);
}

TEST(Accum, RecordSumsAndResets) {
  Accum a;
  a.record(1.5);
  a.record(2.5);
  EXPECT_DOUBLE_EQ(a.value(), 4.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.value(), 0.0);
}

TEST(Gauge, LevelAndDelta) {
  Gauge g;
  g.record(3.0);
  g.record_delta(2.0);
  g.record_delta(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.record(0.5);
  h.record(9.5);
  h.record(-5.0);   // clamps to first bin
  h.record(100.0);  // clamps to last bin
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[9], 2u);
  EXPECT_EQ(h.tally().count(), 4u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.record(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileSingleSample) {
  Histogram h(0.0, 10.0, 10);
  h.record(3.0);
  // Every quantile lands in the one occupied bin [3, 4).
  const double q50 = h.quantile(0.5);
  EXPECT_GE(q50, 3.0);
  EXPECT_LE(q50, 4.0);
  const double q99 = h.quantile(0.99);
  EXPECT_GE(q99, 3.0);
  EXPECT_LE(q99, 4.0);
}

TEST(Histogram, QuantileOutOfRangeArguments) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.record(i + 0.5);
  // q <= 0 pins to the lower edge of the first occupied bin's mass; q >= 1
  // returns the upper bound.
  EXPECT_LE(h.quantile(0.0), h.quantile(0.5));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 10.0);
}

TEST(Histogram, ResetClearsBinsAndTally) {
  Histogram h(0.0, 10.0, 4);
  h.record(1.0);
  h.record(9.0);
  h.reset();
  EXPECT_EQ(h.tally().count(), 0u);
  for (std::uint64_t b : h.bins()) EXPECT_EQ(b, 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace dclue::obs
