#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace dclue::sim {
namespace {

TEST(Sweep, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 257;  // not a multiple of the worker count
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_n(kN, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Sweep, SerialPathRunsInIndexOrder) {
  std::vector<std::size_t> order;
  parallel_for_n(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Sweep, MapKeepsInputOrderRegardlessOfJobs) {
  auto square = [](std::size_t i) { return static_cast<int>(i * i); };
  const std::vector<int> serial = sweep_map<int>(64, 1, square);
  const std::vector<int> parallel = sweep_map<int>(64, 8, square);
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], static_cast<int>(i * i));
  }
}

TEST(Sweep, MoreJobsThanItemsIsFine) {
  const std::vector<int> out =
      sweep_map<int>(3, 16, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Sweep, EmptyRangeIsANoOp) {
  int calls = 0;
  parallel_for_n(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(sweep_map<int>(0, 4, [](std::size_t) { return 1; }).empty());
}

TEST(Sweep, JobsFromEnvironment) {
  unsetenv("REPRO_JOBS");
  EXPECT_EQ(sweep_jobs(), 1);
  setenv("REPRO_JOBS", "6", 1);
  EXPECT_EQ(sweep_jobs(), 6);
  setenv("REPRO_JOBS", "1", 1);
  EXPECT_EQ(sweep_jobs(), 1);
  setenv("REPRO_JOBS", "0", 1);  // 0 = one worker per hardware thread
  EXPECT_GE(sweep_jobs(), 1);
  setenv("REPRO_JOBS", "-3", 1);  // nonsense falls back to serial
  EXPECT_EQ(sweep_jobs(), 1);
  unsetenv("REPRO_JOBS");
}

}  // namespace
}  // namespace dclue::sim
