#include "sim/obs/registry.hpp"

#include <gtest/gtest.h>

namespace dclue::obs {
namespace {

TEST(MetricsRegistry, OwnedMetricsAppearInSnapshotInRegistrationOrder) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  Gauge& g = reg.gauge("b.level");
  Tally& t = reg.tally("c.latency");
  c.record(3);
  g.record(7.0);
  t.record(2.0);
  t.record(4.0);

  const Snapshot snap = reg.snapshot(1.5);
  EXPECT_DOUBLE_EQ(snap.taken_at, 1.5);
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.count");
  EXPECT_EQ(snap.metrics[1].name, "b.level");
  EXPECT_EQ(snap.metrics[2].name, "c.latency");
  EXPECT_EQ(snap.metrics[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap.metrics[0].value, 3.0);
  EXPECT_DOUBLE_EQ(snap.metrics[1].value, 7.0);
  EXPECT_EQ(snap.metrics[2].count, 2u);
  EXPECT_DOUBLE_EQ(snap.metrics[2].mean, 3.0);
}

TEST(MetricsRegistry, SnapshotIsDetachedFromLiveCollectors) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  c.record(1);
  const Snapshot before = reg.snapshot(0.0);
  c.record(10);
  EXPECT_DOUBLE_EQ(before.find("x")->value, 1.0);
  EXPECT_DOUBLE_EQ(reg.snapshot(0.0).find("x")->value, 11.0);
}

TEST(MetricsRegistry, FindReturnsNullForUnknownName) {
  MetricsRegistry reg;
  reg.counter("known");
  const Snapshot snap = reg.snapshot(0.0);
  EXPECT_NE(snap.find("known"), nullptr);
  EXPECT_EQ(snap.find("unknown"), nullptr);
}

TEST(MetricsRegistry, BoundMetricsReadTheSubsystemCollector) {
  MetricsRegistry reg;
  Counter owned_by_subsystem;
  reg.bind("sub.counter", &owned_by_subsystem);
  owned_by_subsystem.record(5);
  EXPECT_DOUBLE_EQ(reg.snapshot(0.0).find("sub.counter")->value, 5.0);
}

TEST(MetricsRegistry, ResetWindowClearsResettableKinds) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Accum& a = reg.accum("a");
  Tally& t = reg.tally("t");
  Histogram& h = reg.histogram("h", 0.0, 10.0, 10);
  c.record(4);
  a.record(2.5);
  t.record(1.0);
  h.record(5.0);

  reg.reset_window(10.0);

  const Snapshot snap = reg.snapshot(10.0);
  EXPECT_DOUBLE_EQ(snap.find("c")->value, 0.0);
  EXPECT_DOUBLE_EQ(snap.find("a")->value, 0.0);
  EXPECT_EQ(snap.find("t")->count, 0u);
  EXPECT_EQ(snap.find("h")->count, 0u);
}

TEST(MetricsRegistry, ResetWindowKeepsGaugeLevels) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("g");
  double sampled = 42.0;
  reg.gauge_fn("g_fn", [&sampled] { return sampled; });
  g.record(9.0);

  reg.reset_window(10.0);

  const Snapshot snap = reg.snapshot(10.0);
  EXPECT_DOUBLE_EQ(snap.find("g")->value, 9.0);
  EXPECT_DOUBLE_EQ(snap.find("g_fn")->value, 42.0);
}

TEST(MetricsRegistry, ResetWindowRestartsTimeWeightedKeepingLevel) {
  MetricsRegistry reg;
  TimeWeightedAvg& tw = reg.time_weighted("tw");
  tw.record(0.0, 4.0);  // level 4 from t=0

  reg.reset_window(10.0);  // warmup ends; level stays 4

  // Over [10, 20] the level is constant 4, so the window average is 4 even
  // though the pre-reset history had the same level from t=0.
  EXPECT_DOUBLE_EQ(reg.snapshot(20.0).find("tw")->value, 4.0);
  tw.record(15.0, 0.0);
  EXPECT_DOUBLE_EQ(reg.snapshot(20.0).find("tw")->value, 2.0);
}

TEST(MetricsRegistry, GaugeFnSamplesAtSnapshotTime) {
  MetricsRegistry reg;
  double live = 1.0;
  reg.gauge_fn("live", [&live] { return live; });
  EXPECT_DOUBLE_EQ(reg.snapshot(0.0).find("live")->value, 1.0);
  live = 2.0;
  EXPECT_DOUBLE_EQ(reg.snapshot(0.0).find("live")->value, 2.0);
}

TEST(MetricsRegistry, OnResetHooksRunBeforeEntryResets) {
  MetricsRegistry reg;
  Counter internal;  // subsystem-internal collector, not registered
  reg.on_reset([&internal](sim::Time) { internal.reset(); });
  internal.record(3);
  reg.reset_window(0.0);
  EXPECT_EQ(internal.count(), 0u);
}

TEST(MetricsRegistry, OwnedHandlesStayStableAcrossGrowth) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  // Force pool growth; a vector-backed pool would invalidate `first`.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  first.record(1);
  EXPECT_DOUBLE_EQ(reg.snapshot(0.0).find("first")->value, 1.0);
}

TEST(MetricsRegistry, HistogramSnapshotCarriesQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", 0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.record(i + 0.5);
  const MetricValue* mv = reg.snapshot(0.0).find("lat");
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->kind, MetricKind::kHistogram);
  EXPECT_NEAR(mv->p50, 50.0, 1.5);
  EXPECT_NEAR(mv->p95, 95.0, 1.5);
  EXPECT_NEAR(mv->p99, 99.0, 1.5);
}

TEST(MetricsRegistry, SnapshotJsonIsWellFormedPerMetric) {
  MetricsRegistry reg;
  Counter& c = reg.counter("json.count");
  c.record(2);
  std::string out;
  reg.snapshot(0.0).append_json(out, 0);
  EXPECT_NE(out.find("\"json.count\""), std::string::npos);
  EXPECT_NE(out.find("\"counter\""), std::string::npos);
}

}  // namespace
}  // namespace dclue::obs
