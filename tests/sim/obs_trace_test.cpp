#include "sim/obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace dclue::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — just enough to round-trip the
// tracer's output and check it against the Chrome trace-event schema. Kept
// local to the test so the production tree carries no JSON-reading code.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // trailing garbage is a failure
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        return parse_string_value(out);
      case 't':
        return parse_literal("true", out, JsonValue{true});
      case 'f':
        return parse_literal("false", out, JsonValue{false});
      case 'n':
        return parse_literal("null", out, JsonValue{nullptr});
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(const char* lit, JsonValue& out, JsonValue value) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    out = std::move(value);
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out.v = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;  // the tracer only ever emits \" and \\ escapes
      }
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_string_value(JsonValue& out) {
    std::string str;
    if (!parse_string(str)) return false;
    out.v = std::move(str);
    return true;
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      out.v = arr;
      return true;
    }
    while (true) {
      JsonValue elem;
      if (!parse_value(elem)) return false;
      arr->push_back(std::move(elem));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        out.v = arr;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      out.v = obj;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue val;
      if (!parse_value(val)) return false;
      (*obj)[key] = std::move(val);
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        out.v = obj;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Chrome trace-event schema checks shared by the tests: every event needs
/// ph/name/ts/pid/tid; spans carry dur, counters carry args.value, instants
/// carry a scope.
void expect_valid_chrome_event(const JsonValue& ev) {
  ASSERT_TRUE(ev.is_object());
  const JsonObject& o = ev.object();
  ASSERT_TRUE(o.count("ph"));
  ASSERT_TRUE(o.count("name"));
  ASSERT_TRUE(o.count("ts"));
  ASSERT_TRUE(o.count("pid"));
  ASSERT_TRUE(o.count("tid"));
  const std::string& ph = o.at("ph").str();
  if (ph == "X") {
    EXPECT_TRUE(o.count("dur")) << "complete event without dur";
    EXPECT_GE(o.at("dur").number(), 0.0);
  } else if (ph == "C") {
    ASSERT_TRUE(o.count("args")) << "counter event without args";
    EXPECT_TRUE(o.at("args").object().count("value"));
  } else if (ph == "i") {
    ASSERT_TRUE(o.count("s")) << "instant event without scope";
    const std::string& scope = o.at("s").str();
    EXPECT_TRUE(scope == "t" || scope == "p" || scope == "g");
  } else {
    FAIL() << "unexpected phase " << ph;
  }
}

TEST(Tracer, EmptyTraceIsValidJson) {
  Tracer t;
  JsonValue root;
  ASSERT_TRUE(JsonParser(t.to_json()).parse(root));
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.object().count("traceEvents"));
  EXPECT_TRUE(root.object().at("traceEvents").array().empty());
}

TEST(Tracer, RoundTripPreservesEveryField) {
  Tracer t(/*pid=*/3);
  t.record_span("txn", "neworder", 1.0, 1.5, /*tid=*/7);
  t.record_instant("tcp", "rto", 2.0, /*tid=*/9);
  t.record_counter("tcp", "cwnd", 2.5, 8192.0, /*tid=*/9);

  JsonValue root;
  ASSERT_TRUE(JsonParser(t.to_json()).parse(root));
  const JsonArray& evs = root.object().at("traceEvents").array();
  ASSERT_EQ(evs.size(), 3u);
  for (const JsonValue& ev : evs) expect_valid_chrome_event(ev);

  const JsonObject& span = evs[0].object();
  EXPECT_EQ(span.at("ph").str(), "X");
  EXPECT_EQ(span.at("cat").str(), "txn");
  EXPECT_EQ(span.at("name").str(), "neworder");
  EXPECT_DOUBLE_EQ(span.at("ts").number(), 1.0e6);  // seconds -> microseconds
  EXPECT_DOUBLE_EQ(span.at("dur").number(), 0.5e6);
  EXPECT_DOUBLE_EQ(span.at("pid").number(), 3.0);
  EXPECT_DOUBLE_EQ(span.at("tid").number(), 7.0);

  const JsonObject& inst = evs[1].object();
  EXPECT_EQ(inst.at("ph").str(), "i");
  EXPECT_EQ(inst.at("name").str(), "rto");
  EXPECT_DOUBLE_EQ(inst.at("ts").number(), 2.0e6);

  const JsonObject& ctr = evs[2].object();
  EXPECT_EQ(ctr.at("ph").str(), "C");
  EXPECT_DOUBLE_EQ(ctr.at("args").object().at("value").number(), 8192.0);
}

TEST(Tracer, AppendKeepsSourcePid) {
  Tracer merged(/*pid=*/0);
  merged.record_instant("a", "own", 0.0);
  Tracer other(/*pid=*/5);
  other.record_instant("b", "foreign", 1.0);
  merged.append(other);
  EXPECT_EQ(merged.size(), 1u);  // size() counts own events only

  JsonValue root;
  ASSERT_TRUE(JsonParser(merged.to_json()).parse(root));
  const JsonArray& evs = root.object().at("traceEvents").array();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_DOUBLE_EQ(evs[0].object().at("pid").number(), 0.0);
  EXPECT_DOUBLE_EQ(evs[1].object().at("pid").number(), 5.0);
}

#if DCLUE_TRACING_ENABLED
TEST(Tracer, MacrosAreNoOpsWithoutInstalledTracer) {
  ASSERT_EQ(tracer(), nullptr);
  int evaluations = 0;
  auto now = [&evaluations] {
    ++evaluations;
    return 1.0;
  };
  // The runtime kill switch must skip recording; argument evaluation is
  // allowed (only the compile-time switch elides it).
  DCLUE_TRACE_INSTANT("cat", "name", now(), 0);
  Tracer probe;
  {
    TracerScope scope(&probe);
    DCLUE_TRACE_INSTANT("cat", "name", now(), 0);
  }
  EXPECT_EQ(probe.size(), 1u);
  DCLUE_TRACE_INSTANT("cat", "name", now(), 0);
  EXPECT_EQ(probe.size(), 1u);
}
#else
TEST(Tracer, CompiledOutMacrosNeverEvaluateArguments) {
  int evaluations = 0;
  auto now = [&evaluations] {
    ++evaluations;
    return 1.0;
  };
  Tracer probe;
  TracerScope scope(&probe);
  DCLUE_TRACE_INSTANT("cat", "name", now(), 0);
  DCLUE_TRACE_SPAN("cat", "name", now(), now(), 0);
  DCLUE_TRACE_COUNTER("cat", "name", now(), 1.0, 0);
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(probe.size(), 0u);
}
#endif

TEST(Tracer, TracerScopeRestoresPreviousTracer) {
  Tracer outer, inner;
  TracerScope outer_scope(&outer);
  EXPECT_EQ(tracer(), &outer);
  {
    TracerScope inner_scope(&inner);
    EXPECT_EQ(tracer(), &inner);
  }
  EXPECT_EQ(tracer(), &outer);
  set_tracer(nullptr);
}

}  // namespace
}  // namespace dclue::obs
