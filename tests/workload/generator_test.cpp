#include "workload/tpcc_txn.hpp"

#include <gtest/gtest.h>

#include <map>

namespace dclue::workload {
namespace {

db::TpccScale scale() {
  db::TpccScale s;
  s.warehouses = 40;
  s.customers_per_district = 300;
  s.items = 1000;
  return s;
}

TEST(Generator, NewOrderInputsRespectSpecRanges) {
  TpccInputGenerator gen(scale(), sim::Rng(1));
  for (int i = 0; i < 500; ++i) {
    TxnInput in = gen.generate(TxnType::kNewOrder, 7);
    EXPECT_EQ(in.w, 7);
    EXPECT_GE(in.d, 1);
    EXPECT_LE(in.d, 10);
    EXPECT_GE(in.c, 1);
    EXPECT_LE(in.c, 300);
    EXPECT_GE(in.lines.size(), 5u);
    EXPECT_LE(in.lines.size(), 15u);
    for (const auto& line : in.lines) {
      EXPECT_GE(line.item, 1);
      EXPECT_LE(line.item, 1000);
      EXPECT_GE(line.supply_w, 1);
      EXPECT_LE(line.supply_w, 40);
      EXPECT_GE(line.quantity, 1);
      EXPECT_LE(line.quantity, 10);
    }
  }
}

TEST(Generator, AboutOnePercentOfNewOrdersRollBack) {
  TpccInputGenerator gen(scale(), sim::Rng(2));
  int rollbacks = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (gen.generate(TxnType::kNewOrder, 1).rollback) ++rollbacks;
  }
  EXPECT_NEAR(rollbacks / static_cast<double>(n), 0.01, 0.004);
}

TEST(Generator, AboutOnePercentOfLinesAreRemote) {
  TpccInputGenerator gen(scale(), sim::Rng(3));
  int remote = 0, total = 0;
  for (int i = 0; i < 5'000; ++i) {
    TxnInput in = gen.generate(TxnType::kNewOrder, 5);
    for (const auto& line : in.lines) {
      ++total;
      if (line.supply_w != 5) ++remote;
    }
  }
  EXPECT_NEAR(remote / static_cast<double>(total), 0.01, 0.005);
}

TEST(Generator, FifteenPercentOfPaymentsAreRemote) {
  TpccInputGenerator gen(scale(), sim::Rng(4));
  int remote = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    TxnInput in = gen.generate(TxnType::kPayment, 5);
    if (in.c_w != 5) ++remote;
  }
  EXPECT_NEAR(remote / static_cast<double>(n), 0.15, 0.02);
}

TEST(Generator, CustomerIdsAreNurandSkewed) {
  TpccInputGenerator gen(scale(), sim::Rng(5));
  std::map<std::int64_t, int> freq;
  for (int i = 0; i < 30'000; ++i) {
    ++freq[gen.generate(TxnType::kOrderStatus, 1).c];
  }
  // NURand produces a hot subset: the most popular id should be visited far
  // more than the uniform expectation (30000/300 = 100).
  int max_count = 0;
  for (const auto& [c, n] : freq) max_count = std::max(max_count, n);
  EXPECT_GT(max_count, 200);
}

TEST(Generator, BusinessTransactionStartsWithNewOrderAndMatchesMix) {
  TpccInputGenerator gen(scale(), sim::Rng(6));
  std::array<int, kNumTxnTypes> counts{};
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    auto seq = gen.business_transaction(3);
    ASSERT_GE(seq.size(), 2u);
    EXPECT_EQ(seq[0].type, TxnType::kNewOrder);
    EXPECT_EQ(seq[1].type, TxnType::kPayment);
    for (const auto& t : seq) ++counts[static_cast<int>(t.type)];
  }
  const double total = counts[0] + counts[1] + counts[2] + counts[3] + counts[4];
  EXPECT_NEAR(counts[0] / total, 0.43, 0.02);  // new-order
  EXPECT_NEAR(counts[1] / total, 0.43, 0.02);  // payment
  EXPECT_NEAR(counts[2] / total, 0.05, 0.01);  // order-status
  EXPECT_NEAR(counts[3] / total, 0.05, 0.01);  // delivery
  EXPECT_NEAR(counts[4] / total, 0.04, 0.01);  // stock-level
}

TEST(Generator, StockLevelThresholdInRange) {
  TpccInputGenerator gen(scale(), sim::Rng(7));
  for (int i = 0; i < 200; ++i) {
    TxnInput in = gen.generate(TxnType::kStockLevel, 1);
    EXPECT_GE(in.threshold, 10);
    EXPECT_LE(in.threshold, 20);
  }
}

}  // namespace
}  // namespace dclue::workload
