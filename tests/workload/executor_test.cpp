/// Focused transaction-executor tests on a single assembled node: commit
/// and rollback semantics, per-type effects, and the two-phase locking
/// discipline — without the full cluster/client machinery around them.

#include <gtest/gtest.h>

#include "core/node.hpp"

namespace dclue::workload {
namespace {

struct MiniNode {
  core::ClusterConfig cfg;
  sim::Engine engine;
  sim::RngFactory rngs{123};
  std::unique_ptr<db::TpccDatabase> db;
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<core::Node> node;
  std::unique_ptr<TpccExecutor> exec;
  std::uint64_t clock = 1;
  sim::Rng rng{7};
  core::NodeStats* stats = nullptr;

  MiniNode() {
    cfg.nodes = 1;
    cfg.warehouses_override = 4;
    cfg.customers_per_district = 60;
    cfg.items = 200;
    db::TpccScale scale;
    scale.warehouses = cfg.warehouses();
    scale.customers_per_district = cfg.customers_per_district;
    scale.items = cfg.items;
    db = std::make_unique<db::TpccDatabase>(scale);
    sim::Rng pop(1);
    db->populate(pop);

    net::TopologyParams tp;
    tp.latas = 1;
    tp.servers_per_lata = 1;
    topo = std::make_unique<net::Topology>(engine, tp);
    node = std::make_unique<core::Node>(engine, cfg, 0, topo->server_nic(0), *db,
                                        &clock, rngs);
    stats = &node->stats();

    NodeEnv env;
    env.engine = &engine;
    env.node_id = 0;
    env.num_nodes = 1;
    env.db = db.get();
    env.fusion = &node->fusion();
    env.versions = &node->versions();
    env.log = &node->log_manager();
    env.proc = &node->processor();
    env.stats = stats;
    env.pl = cfg.path_lengths;
    env.global_clock = &clock;
    env.storage_home_of_warehouse = [](std::int64_t) { return 0; };
    env.rng = &rng;
    env.lock_retry_delay = sim::milliseconds(0.3) * cfg.scale;
    exec = std::make_unique<TpccExecutor>(std::move(env));
  }

  bool execute(const TxnInput& input) {
    bool result = false;
    node->processor().thread_activated();
    sim::spawn([](MiniNode& m, TxnInput input, bool& out) -> sim::Task<void> {
      out = co_await m.exec->execute(input, 1);
      m.node->processor().thread_deactivated();
    }(*this, input, result));
    engine.run();
    return result;
  }

  TxnInput new_order_input(std::int64_t w = 1, std::int64_t d = 1) {
    TxnInput in;
    in.type = TxnType::kNewOrder;
    in.w = w;
    in.d = d;
    in.c = 3;
    for (int i = 0; i < 5; ++i) in.lines.push_back({10 + i, w, 2});
    return in;
  }
};

TEST(Executor, NewOrderCommitAdvancesDistrictAndInsertsRows) {
  MiniNode m;
  const auto before = m.db->district.find(db::key_wd(1, 1))->next_o_id;
  ASSERT_TRUE(m.execute(m.new_order_input()));
  const auto after = m.db->district.find(db::key_wd(1, 1))->next_o_id;
  EXPECT_EQ(after, before + 1);
  EXPECT_NE(m.db->order.find(db::key_wdo(1, 1, before)), nullptr);
  EXPECT_NE(m.db->new_order.find(db::key_wdo(1, 1, before)), nullptr);
  for (int ol = 1; ol <= 5; ++ol) {
    EXPECT_NE(m.db->order_line.find(db::key_wdool(1, 1, before, ol)), nullptr);
  }
  EXPECT_EQ(m.stats->txns_committed.count(), 1u);
  EXPECT_EQ(m.stats->new_orders_committed.count(), 1u);
}

TEST(Executor, SpecRollbackLeavesNoTrace) {
  MiniNode m;
  const auto before = m.db->district.find(db::key_wd(1, 1))->next_o_id;
  TxnInput in = m.new_order_input();
  in.rollback = true;
  EXPECT_FALSE(m.execute(in));
  EXPECT_EQ(m.db->district.find(db::key_wd(1, 1))->next_o_id, before);
  EXPECT_EQ(m.db->order.find(db::key_wdo(1, 1, before)), nullptr);
  EXPECT_EQ(m.stats->txns_aborted.count(), 1u);
  EXPECT_EQ(m.stats->txns_committed.count(), 0u);
}

TEST(Executor, PaymentMovesMoney) {
  MiniNode m;
  TxnInput in;
  in.type = TxnType::kPayment;
  in.w = 2;
  in.d = 3;
  in.c = 7;
  in.c_w = 2;
  in.c_d = 3;
  in.amount = 123.0;
  const double wh_before = m.db->warehouse.find(db::key_w(2))->ytd;
  const double bal_before = m.db->customer.find(db::key_wdc(2, 3, 7))->balance;
  ASSERT_TRUE(m.execute(in));
  EXPECT_DOUBLE_EQ(m.db->warehouse.find(db::key_w(2))->ytd, wh_before + 123.0);
  EXPECT_DOUBLE_EQ(m.db->customer.find(db::key_wdc(2, 3, 7))->balance,
                   bal_before - 123.0);
  EXPECT_EQ(m.db->history.size(), 1u);
}

TEST(Executor, OrderStatusTakesNoLocks) {
  MiniNode m;
  TxnInput in;
  in.type = TxnType::kOrderStatus;
  in.w = 1;
  in.d = 1;
  in.c = 5;
  ASSERT_TRUE(m.execute(in));
  // MVCC: reads acquire no global locks at all.
  EXPECT_EQ(m.stats->lock_acquisitions.count(), 0u);
}

TEST(Executor, DeliveryClearsNewOrders) {
  MiniNode m;
  TxnInput in;
  in.type = TxnType::kDelivery;
  in.w = 1;
  const auto pending_before = m.db->new_order.size();
  ASSERT_TRUE(m.execute(in));
  // One oldest order per district (10 districts) delivered.
  EXPECT_LT(m.db->new_order.size(), pending_before);
  EXPECT_GE(m.db->new_order.size(), pending_before - 10);
}

TEST(Executor, StockLevelCommitsReadOnly) {
  MiniNode m;
  TxnInput in;
  in.type = TxnType::kStockLevel;
  in.w = 1;
  in.d = 2;
  in.threshold = 15;
  ASSERT_TRUE(m.execute(in));
  EXPECT_EQ(m.stats->lock_acquisitions.count(), 0u);
  EXPECT_GT(m.stats->buffer_hits.count() + m.stats->buffer_misses.count(), 50u);
}

TEST(Executor, ConflictingWriterWaitsForLockRelease) {
  MiniNode m;
  // Foreign transaction holds the district-1 row lock.
  const db::PageId dpage = m.db->district.data_page_of_key(db::key_wd(1, 1));
  const int sub = m.db->district.subpage_of_key(db::key_wd(1, 1));
  const db::LockName name = db::lock_name(dpage, sub);
  bool granted = false;
  sim::spawn([](MiniNode& m, db::LockName name, bool& g) -> sim::Task<void> {
    g = co_await m.node->fusion().lock_try(name, 0, /*txn=*/9999);
  }(m, name, granted));
  m.engine.run();
  ASSERT_TRUE(granted);

  // The new-order must block in phase 2 until the foreign lock releases.
  bool committed = false;
  m.node->processor().thread_activated();
  sim::spawn([](MiniNode& m, TxnInput in, bool& out) -> sim::Task<void> {
    out = co_await m.exec->execute(in, 1);
    m.node->processor().thread_deactivated();
  }(m, m.new_order_input(), committed));
  m.engine.run_until(m.engine.now() + 5.0);
  EXPECT_FALSE(committed);
  EXPECT_GE(m.stats->lock_waits.count() + m.stats->lock_failures.count(), 1u);

  sim::spawn([](MiniNode& m, db::LockName name) -> sim::Task<void> {
    co_await m.node->fusion().lock_release(name, 0, 9999);
  }(m, name));
  m.engine.run();
  EXPECT_TRUE(committed);
  EXPECT_GT(m.stats->lock_wait_time.mean(), 0.0);
}

}  // namespace
}  // namespace dclue::workload
